// Committee partitioning: the stable-hash placement is part of the consensus
// surface (every node must derive the same partition), so the hash itself and
// the assignment semantics are pinned here.
#include <gtest/gtest.h>

#include <vector>

#include "common/errors.hpp"
#include "protocol/shard_router.hpp"
#include "reputation/reputation_table.hpp"

namespace repchain::protocol {
namespace {

TEST(ShardRouter, StableHashIsPinned) {
  // FNV-1a 64 over (tag, value LE). These values are the wire contract: a
  // change silently re-partitions every deployed population.
  const auto fnv = [](std::uint8_t tag, std::uint32_t v) {
    std::uint64_t h = 14695981039346656037ULL;
    const auto mix = [&h](std::uint8_t byte) {
      h ^= byte;
      h *= 1099511628211ULL;
    };
    mix(tag);
    for (int i = 0; i < 4; ++i) mix(static_cast<std::uint8_t>(v >> (8 * i)));
    return h;
  };
  for (const std::uint8_t tag : {std::uint8_t{0x50}, std::uint8_t{0x43}}) {
    for (const std::uint32_t v : {0u, 1u, 7u, 1000u, 0xFFFFFFFFu}) {
      EXPECT_EQ(ShardRouter::stable_hash(tag, v), fnv(tag, v));
    }
  }
  // Tag bytes keep provider/collector id spaces in distinct hash families.
  EXPECT_NE(ShardRouter::stable_hash(0x50, 3), ShardRouter::stable_hash(0x43, 3));
}

TEST(ShardRouter, SingleShardPutsEveryoneInShardZero) {
  const ShardRouter router(1, 8, 4, 3);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(router.shard_of(ProviderId(i)), ShardId(0));
  }
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(router.shard_of(CollectorId(i)), ShardId(0));
  }
  for (std::uint32_t i = 0; i < 3; ++i) {
    EXPECT_EQ(router.shard_of(GovernorId(i)), ShardId(0));
  }
  // Membership lists preserve ascending global-id order.
  ASSERT_EQ(router.providers_of(ShardId(0)).size(), 8u);
  for (std::uint32_t i = 0; i < 8; ++i) {
    EXPECT_EQ(router.providers_of(ShardId(0))[i], ProviderId(i));
  }
  EXPECT_FALSE(router.cross_shard(ProviderId(5), CollectorId(2)));
}

TEST(ShardRouter, DefaultConstructedRoutesEverythingToShardZero) {
  const ShardRouter router;
  EXPECT_EQ(router.shard_count(), 1u);
  EXPECT_EQ(router.shard_of(ProviderId(123)), ShardId(0));
  EXPECT_EQ(router.shard_of(CollectorId(9)), ShardId(0));
  EXPECT_FALSE(router.cross_shard(ProviderId(1), CollectorId(2)));
}

TEST(ShardRouter, PartitionIsDeterministicAndComplete) {
  const ShardRouter a(4, 24, 12, 12);
  const ShardRouter b(4, 24, 12, 12);
  std::size_t providers = 0, collectors = 0, governors = 0;
  for (std::uint32_t s = 0; s < 4; ++s) {
    const ShardId shard(s);
    providers += a.providers_of(shard).size();
    collectors += a.collectors_of(shard).size();
    governors += a.governors_of(shard).size();
    EXPECT_EQ(a.providers_of(shard), b.providers_of(shard));
    EXPECT_EQ(a.collectors_of(shard), b.collectors_of(shard));
    EXPECT_EQ(a.governors_of(shard), b.governors_of(shard));
    // Membership and reverse lookup agree.
    for (const ProviderId p : a.providers_of(shard)) {
      EXPECT_EQ(a.shard_of(p), shard);
    }
    for (const CollectorId c : a.collectors_of(shard)) {
      EXPECT_EQ(a.shard_of(c), shard);
    }
    for (const GovernorId g : a.governors_of(shard)) {
      EXPECT_EQ(a.shard_of(g), shard);
    }
  }
  EXPECT_EQ(providers, 24u);
  EXPECT_EQ(collectors, 12u);
  EXPECT_EQ(governors, 12u);
}

TEST(ShardRouter, GovernorsAreDealtRoundRobin) {
  const ShardRouter router(3, 9, 6, 7);
  // i % shard_count keeps committees within one member of each other.
  EXPECT_EQ(router.shard_of(GovernorId(0)), ShardId(0));
  EXPECT_EQ(router.shard_of(GovernorId(1)), ShardId(1));
  EXPECT_EQ(router.shard_of(GovernorId(2)), ShardId(2));
  EXPECT_EQ(router.shard_of(GovernorId(3)), ShardId(0));
  EXPECT_EQ(router.governors_of(ShardId(0)).size(), 3u);
  EXPECT_EQ(router.governors_of(ShardId(1)).size(), 2u);
  EXPECT_EQ(router.governors_of(ShardId(2)).size(), 2u);
}

TEST(ShardRouter, CrossShardDetectsCommitteeSpanningPairs) {
  const ShardRouter router(2, 16, 8, 4);
  std::size_t cross = 0, local = 0;
  for (std::uint32_t p = 0; p < 16; ++p) {
    for (std::uint32_t c = 0; c < 8; ++c) {
      const bool x = router.cross_shard(ProviderId(p), CollectorId(c));
      EXPECT_EQ(x, router.shard_of(ProviderId(p)) != router.shard_of(CollectorId(c)));
      (x ? cross : local) += 1;
    }
  }
  EXPECT_GT(cross, 0u);
  EXPECT_GT(local, 0u);
}

TEST(ShardRouter, RejectsUnrealizablePartitions) {
  EXPECT_THROW(ShardRouter(0, 8, 4, 3), ConfigError);
  // More committees than governors: some committee could never elect.
  EXPECT_THROW(ShardRouter(4, 8, 4, 3), ConfigError);
  // Tiny populations strand a shard without a provider or collector.
  EXPECT_THROW(ShardRouter(2, 1, 1, 2), ConfigError);
}

TEST(ShardRouter, ShardScopedReputationLookup) {
  // S=2: each committee's governors keep a reputation table over their own
  // committee's links only. The composite-key indexed lookups must stay
  // scoped — a committee-local table answers linked() for local pairs
  // exactly as a linear scan of its membership lists, and knows nothing
  // about the other committee's pairs.
  const std::size_t kShards = 2, kProviders = 8, kCollectors = 4;
  const ShardRouter router(kShards, kProviders, kCollectors, 4);

  reputation::ReputationParams params;
  params.beta = 0.9;
  params.f = 0.5;
  std::vector<reputation::ReputationTable> tables(kShards,
                                                  reputation::ReputationTable(params));
  for (std::size_t shard = 0; shard < kShards; ++shard) {
    for (const CollectorId c : router.collectors_of(ShardId(shard))) {
      for (const ProviderId p : router.providers_of(ShardId(shard))) {
        tables[shard].link(c, p);
      }
    }
  }

  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    for (std::uint32_t p = 0; p < kProviders; ++p) {
      const CollectorId cid(c);
      const ProviderId pid(p);
      const bool local = !router.cross_shard(pid, cid);
      const std::size_t home = router.shard_of(cid).value();
      // Indexed lookup in the pair's home committee matches the scan of the
      // committee's own membership list.
      bool scan = false;
      for (const CollectorId member : tables[home].collectors_for(pid)) {
        if (member == cid) scan = true;
      }
      EXPECT_EQ(tables[home].linked(cid, pid), scan);
      EXPECT_EQ(tables[home].linked(cid, pid), local);
      // The other committee's table never knows the pair.
      EXPECT_FALSE(tables[1 - home].linked(cid, pid));
    }
  }
}

}  // namespace
}  // namespace repchain::protocol
