#include "protocol/messages.hpp"

#include "protocol/leader_election.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::protocol {
namespace {

struct Fixture {
  Fixture() : rng(88), key(crypto::random_seed(rng)) {}

  ledger::Transaction tx() {
    return ledger::make_transaction(ProviderId(1), 7, 1234, to_bytes("p"), key);
  }

  Rng rng;
  crypto::SigningKey key;
};

TEST(ArgueMsg, RoundTripAndSignature) {
  Fixture f;
  const ArgueMsg m = make_argue(ProviderId(1), f.tx(), 5, f.key);
  const ArgueMsg d = ArgueMsg::decode(m.encode());
  EXPECT_EQ(d.provider, ProviderId(1));
  EXPECT_EQ(d.serial, 5u);
  EXPECT_EQ(d.tx, m.tx);
  EXPECT_TRUE(crypto::verify(f.key.public_key(), d.signed_preimage(), d.provider_sig));
}

TEST(ArgueMsg, SignatureCoversSerial) {
  Fixture f;
  ArgueMsg m = make_argue(ProviderId(1), f.tx(), 5, f.key);
  m.serial = 6;
  EXPECT_FALSE(crypto::verify(f.key.public_key(), m.signed_preimage(), m.provider_sig));
}

TEST(VrfAlpha, DistinctPerRoundGovernorUnit) {
  EXPECT_NE(vrf_alpha(1, GovernorId(0), 0), vrf_alpha(2, GovernorId(0), 0));
  EXPECT_NE(vrf_alpha(1, GovernorId(0), 0), vrf_alpha(1, GovernorId(1), 0));
  EXPECT_NE(vrf_alpha(1, GovernorId(0), 0), vrf_alpha(1, GovernorId(0), 1));
}

TEST(VrfAnnounceMsg, RoundTrip) {
  Fixture f;
  const VrfAnnounceMsg m = make_announcement(3, GovernorId(2), 4, f.key);
  EXPECT_EQ(m.tickets.size(), 4u);
  const VrfAnnounceMsg d = VrfAnnounceMsg::decode(m.encode());
  EXPECT_EQ(d.round, 3u);
  EXPECT_EQ(d.governor, GovernorId(2));
  ASSERT_EQ(d.tickets.size(), 4u);
  for (std::uint32_t u = 0; u < 4; ++u) {
    EXPECT_EQ(d.tickets[u].unit, u);
    EXPECT_TRUE(crypto::vrf_verify(f.key.public_key(),
                                   vrf_alpha(3, GovernorId(2), u), d.tickets[u].proof)
                    .has_value());
  }
}

TEST(StakeTxMsg, RoundTripAndSignature) {
  Fixture f;
  const StakeTxMsg m = make_stake_tx(GovernorId(0), GovernorId(1), 42, 7, f.key);
  const StakeTxMsg d = StakeTxMsg::decode(m.encode());
  EXPECT_EQ(d.from, GovernorId(0));
  EXPECT_EQ(d.to, GovernorId(1));
  EXPECT_EQ(d.amount, 42u);
  EXPECT_EQ(d.seq, 7u);
  EXPECT_TRUE(crypto::verify(f.key.public_key(), d.signed_preimage(), d.sig));
}

TEST(StakeTxMsg, SignatureCoversAmount) {
  Fixture f;
  StakeTxMsg m = make_stake_tx(GovernorId(0), GovernorId(1), 42, 7, f.key);
  m.amount = 43;
  EXPECT_FALSE(crypto::verify(f.key.public_key(), m.signed_preimage(), m.sig));
}

TEST(StateMessages, ProposalSignatureCommitRoundTrip) {
  Fixture f;
  StateProposalMsg p;
  p.round = 9;
  p.leader = GovernorId(1);
  p.state = to_bytes("canonical-state");
  p.leader_sig = f.key.sign(p.signed_preimage());
  const StateProposalMsg dp = StateProposalMsg::decode(p.encode());
  EXPECT_EQ(dp.state, p.state);
  EXPECT_TRUE(crypto::verify(f.key.public_key(), dp.signed_preimage(), dp.leader_sig));

  StateSignatureMsg s;
  s.round = 9;
  s.signer = GovernorId(2);
  s.sig = f.key.sign(p.signed_preimage());
  const StateSignatureMsg ds = StateSignatureMsg::decode(s.encode());
  EXPECT_EQ(ds.signer, GovernorId(2));

  StateCommitMsg c;
  c.round = 9;
  c.leader = GovernorId(1);
  c.state = p.state;
  c.signatures = {s, s};
  const StateCommitMsg dc = StateCommitMsg::decode(c.encode());
  EXPECT_EQ(dc.signatures.size(), 2u);
  EXPECT_EQ(dc.signatures[0].sig, s.sig);
}

TEST(ExpelMsg, RoundTripAndSignature) {
  Fixture f;
  const ExpelMsg m =
      make_expel(4, GovernorId(0), GovernorId(1), to_bytes("evidence"), f.key);
  const ExpelMsg d = ExpelMsg::decode(m.encode());
  EXPECT_EQ(d.accuser, GovernorId(0));
  EXPECT_EQ(d.accused, GovernorId(1));
  EXPECT_EQ(d.evidence, to_bytes("evidence"));
  EXPECT_TRUE(crypto::verify(f.key.public_key(), d.signed_preimage(), d.accuser_sig));
}

TEST(Messages, DecodeRejectsTruncation) {
  Fixture f;
  std::vector<Bytes> encodings = {
      make_argue(ProviderId(1), f.tx(), 5, f.key).encode(),
      make_announcement(3, GovernorId(2), 2, f.key).encode(),
      make_stake_tx(GovernorId(0), GovernorId(1), 1, 1, f.key).encode()};
  for (Bytes enc : encodings) {
    enc.pop_back();
    bool threw = false;
    try {
      (void)ArgueMsg::decode(enc);
    } catch (const DecodeError&) {
      threw = true;
    }
    EXPECT_TRUE(threw);
  }
}

}  // namespace
}  // namespace repchain::protocol
