// Unit tests for the protocol's standalone components: stake ledger, argue
// buffer, screening engine, directory.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "protocol/argue_buffer.hpp"
#include "protocol/directory.hpp"
#include "protocol/screening.hpp"
#include "protocol/stake.hpp"

namespace repchain::protocol {
namespace {

using ledger::Label;

// --- StakeLedger -------------------------------------------------------------

TEST(StakeLedger, SetAndTotals) {
  StakeLedger s;
  s.set(GovernorId(0), 5);
  s.set(GovernorId(1), 3);
  EXPECT_EQ(s.total(), 8u);
  EXPECT_EQ(s.of(GovernorId(0)), 5u);
  s.set(GovernorId(0), 2);  // overwrite adjusts total
  EXPECT_EQ(s.total(), 5u);
}

TEST(StakeLedger, TransferMovesStake) {
  StakeLedger s;
  s.set(GovernorId(0), 5);
  s.set(GovernorId(1), 1);
  s.transfer(GovernorId(0), GovernorId(1), 3);
  EXPECT_EQ(s.of(GovernorId(0)), 2u);
  EXPECT_EQ(s.of(GovernorId(1)), 4u);
  EXPECT_EQ(s.total(), 6u);
}

TEST(StakeLedger, TransferInsufficientThrows) {
  StakeLedger s;
  s.set(GovernorId(0), 2);
  s.set(GovernorId(1), 0);
  EXPECT_THROW(s.transfer(GovernorId(0), GovernorId(1), 3), ProtocolError);
  EXPECT_THROW(s.transfer(GovernorId(9), GovernorId(1), 1), ProtocolError);
}

TEST(StakeLedger, UnknownGovernorThrows) {
  StakeLedger s;
  EXPECT_THROW((void)s.of(GovernorId(0)), ProtocolError);
}

TEST(StakeLedger, CanonicalEncodingRoundTrip) {
  StakeLedger s;
  s.set(GovernorId(2), 7);
  s.set(GovernorId(0), 1);
  s.set(GovernorId(1), 0);
  const StakeLedger d = StakeLedger::decode(s.encode());
  EXPECT_EQ(d, s);
  EXPECT_EQ(d.total(), 8u);
  EXPECT_EQ(d.state_hash(), s.state_hash());
}

TEST(StakeLedger, EncodingIsInsertionOrderIndependent) {
  StakeLedger a, b;
  a.set(GovernorId(0), 1);
  a.set(GovernorId(1), 2);
  b.set(GovernorId(1), 2);
  b.set(GovernorId(0), 1);
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(StakeLedger, DecodeRejectsDuplicates) {
  StakeLedger s;
  s.set(GovernorId(0), 1);
  Bytes enc = s.encode();
  // Duplicate the single entry and bump the count.
  Bytes dup = enc;
  dup[0] = 2;  // count u32 little-endian low byte
  for (std::size_t i = 4; i < enc.size(); ++i) dup.push_back(enc[i]);
  EXPECT_THROW(StakeLedger::decode(dup), DecodeError);
}

// --- ArgueBuffer --------------------------------------------------------------

ledger::TxId tx_id(std::uint8_t tag) {
  ledger::TxId id{};
  id[0] = tag;
  return id;
}

TEST(ArgueBuffer, ZeroUThrows) {
  EXPECT_THROW(ArgueBuffer(0), ConfigError);
}

TEST(ArgueBuffer, FreshTxIsArguable) {
  ArgueBuffer buf(3);
  buf.record(ProviderId(0), tx_id(1));
  EXPECT_TRUE(buf.arguable(ProviderId(0), tx_id(1)));
  EXPECT_FALSE(buf.arguable(ProviderId(0), tx_id(2)));
  EXPECT_FALSE(buf.arguable(ProviderId(1), tx_id(1)));
}

TEST(ArgueBuffer, ExpiresAfterUBurials) {
  ArgueBuffer buf(3);
  buf.record(ProviderId(0), tx_id(1));
  // Bury with exactly U = 3 newer: still arguable.
  buf.record(ProviderId(0), tx_id(2));
  buf.record(ProviderId(0), tx_id(3));
  buf.record(ProviderId(0), tx_id(4));
  EXPECT_TRUE(buf.arguable(ProviderId(0), tx_id(1)));
  // One more burial: expired permanently.
  buf.record(ProviderId(0), tx_id(5));
  EXPECT_FALSE(buf.arguable(ProviderId(0), tx_id(1)));
  EXPECT_EQ(buf.expired(), 1u);
}

TEST(ArgueBuffer, BurialsAreScopedPerProvider) {
  ArgueBuffer buf(1);
  buf.record(ProviderId(0), tx_id(1));
  for (std::uint8_t i = 10; i < 15; ++i) buf.record(ProviderId(1), tx_id(i));
  EXPECT_TRUE(buf.arguable(ProviderId(0), tx_id(1)));
}

TEST(ArgueBuffer, ConsumeRemovesEntry) {
  ArgueBuffer buf(3);
  buf.record(ProviderId(0), tx_id(1));
  EXPECT_TRUE(buf.consume(ProviderId(0), tx_id(1)));
  EXPECT_FALSE(buf.arguable(ProviderId(0), tx_id(1)));
  EXPECT_FALSE(buf.consume(ProviderId(0), tx_id(1)));  // second consume fails
}

TEST(ArgueBuffer, PendingCounts) {
  ArgueBuffer buf(10);
  EXPECT_EQ(buf.pending(ProviderId(0)), 0u);
  buf.record(ProviderId(0), tx_id(1));
  buf.record(ProviderId(0), tx_id(2));
  EXPECT_EQ(buf.pending(ProviderId(0)), 2u);
}

// --- Directory -----------------------------------------------------------------

TEST(Directory, RegistrationAndLookup) {
  Directory d;
  d.add_provider(ProviderId(0), NodeId(10));
  d.add_collector(CollectorId(0), NodeId(20));
  d.add_governor(GovernorId(0), NodeId(30));

  EXPECT_EQ(d.node_of(ProviderId(0)), NodeId(10));
  EXPECT_EQ(d.node_of(CollectorId(0)), NodeId(20));
  EXPECT_EQ(d.node_of(GovernorId(0)), NodeId(30));
  EXPECT_EQ(d.provider_at(NodeId(10)), ProviderId(0));
  EXPECT_EQ(d.collector_at(NodeId(20)), CollectorId(0));
  EXPECT_EQ(d.governor_at(NodeId(30)), GovernorId(0));
  EXPECT_EQ(d.provider_at(NodeId(99)), std::nullopt);
}

TEST(Directory, DuplicateRegistrationThrows) {
  Directory d;
  d.add_provider(ProviderId(0), NodeId(10));
  EXPECT_THROW(d.add_provider(ProviderId(0), NodeId(11)), ConfigError);
}

TEST(Directory, UnknownLookupThrows) {
  Directory d;
  EXPECT_THROW((void)d.node_of(ProviderId(3)), ConfigError);
}

TEST(Directory, LinksAreBidirectionalAndDeduped) {
  Directory d;
  d.add_provider(ProviderId(0), NodeId(10));
  d.add_collector(CollectorId(0), NodeId(20));
  d.add_collector(CollectorId(1), NodeId(21));
  d.link(ProviderId(0), CollectorId(0));
  d.link(ProviderId(0), CollectorId(0));  // duplicate ignored
  d.link(ProviderId(0), CollectorId(1));

  EXPECT_EQ(d.collectors_of(ProviderId(0)).size(), 2u);
  EXPECT_EQ(d.providers_of(CollectorId(0)).size(), 1u);
  EXPECT_TRUE(d.linked(ProviderId(0), CollectorId(0)));
  EXPECT_FALSE(d.linked(ProviderId(0), CollectorId(2)));
}

TEST(Directory, LinkUnregisteredThrows) {
  Directory d;
  d.add_provider(ProviderId(0), NodeId(10));
  EXPECT_THROW(d.link(ProviderId(0), CollectorId(0)), ConfigError);
}

TEST(Directory, GovernorNodesList) {
  Directory d;
  d.add_governor(GovernorId(0), NodeId(5));
  d.add_governor(GovernorId(1), NodeId(6));
  const auto nodes = d.governor_nodes();
  EXPECT_EQ(nodes, (std::vector<NodeId>{NodeId(5), NodeId(6)}));
}

// --- ScreeningEngine ------------------------------------------------------------

struct ScreeningFixture {
  ScreeningFixture() : table(params()), rng(404), engine(table, oracle, rng) {
    for (std::uint32_t c = 0; c < 3; ++c) table.link(CollectorId(c), ProviderId(0));
    key.emplace(crypto::PrivateSeed{});
  }

  static reputation::ReputationParams params() {
    reputation::ReputationParams p;
    p.f = 0.5;
    return p;
  }

  ledger::Transaction make_tx(std::uint64_t seq, bool valid) {
    auto tx = ledger::make_transaction(ProviderId(0), seq, seq, to_bytes("x"), *key);
    oracle.register_tx(tx.id(), valid);
    return tx;
  }

  reputation::ReputationTable table;
  ledger::ValidationOracle oracle;
  Rng rng;
  ScreeningEngine engine;
  std::optional<crypto::SigningKey> key;
};

TEST(ScreeningEngine, PlusOnePickAlwaysChecked) {
  ScreeningFixture f;
  for (std::uint64_t i = 0; i < 50; ++i) {
    const auto tx = f.make_tx(i, true);
    const std::vector<reputation::Report> reports = {
        {CollectorId(0), Label::kValid}, {CollectorId(1), Label::kValid}};
    const auto out = f.engine.screen(tx, reports);
    EXPECT_TRUE(out.checked);
    EXPECT_EQ(out.kind, ScreeningKind::kAppendedValid);
  }
  EXPECT_EQ(f.engine.stats().checked, 50u);
  EXPECT_EQ(f.engine.stats().unchecked, 0u);
}

TEST(ScreeningEngine, CheckedInvalidDiscarded) {
  ScreeningFixture f;
  const auto tx = f.make_tx(1, false);
  const std::vector<reputation::Report> reports = {{CollectorId(0), Label::kValid}};
  const auto out = f.engine.screen(tx, reports);
  EXPECT_EQ(out.kind, ScreeningKind::kDiscardedInvalid);
  // Misreport counter moved for the wrong labeler (case 2).
  EXPECT_EQ(f.table.misreport(CollectorId(0)), -1);
}

TEST(ScreeningEngine, MinusOneSometimesUnchecked) {
  // Single -1 reporter: Pr[chosen] = 1, so unchecked with probability f = 0.5.
  ScreeningFixture f;
  int unchecked = 0;
  const int n = 2000;
  for (int i = 0; i < n; ++i) {
    const auto tx = f.make_tx(100 + i, false);
    const std::vector<reputation::Report> reports = {{CollectorId(0), Label::kInvalid}};
    const auto out = f.engine.screen(tx, reports);
    if (out.kind == ScreeningKind::kRecordedUnchecked) ++unchecked;
  }
  EXPECT_NEAR(static_cast<double>(unchecked) / n, 0.5, 0.04);
}

TEST(ScreeningEngine, UncheckedFractionBoundedByF) {
  // Lemma 2: for any report pattern, P[unchecked] <= f.
  ScreeningFixture f;
  int unchecked = 0;
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    const auto tx = f.make_tx(10'000 + i, i % 2 == 0);
    const std::vector<reputation::Report> reports = {
        {CollectorId(0), Label::kInvalid},
        {CollectorId(1), Label::kInvalid},
        {CollectorId(2), Label::kValid}};
    const auto out = f.engine.screen(tx, reports);
    if (!out.checked) ++unchecked;
  }
  EXPECT_LE(static_cast<double>(unchecked) / n, 0.5 + 0.03);
}

TEST(ScreeningEngine, SelectionRespectsReputation) {
  ScreeningFixture f;
  // Crush collector 1's weight on provider 0 so selection favours 0.
  const std::vector<reputation::Report> wrong1 = {{CollectorId(0), Label::kValid},
                                                  {CollectorId(1), Label::kInvalid}};
  for (int i = 0; i < 40; ++i) (void)f.table.update_revealed(ProviderId(0), wrong1, true);

  int chose_bad = 0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    const auto tx = f.make_tx(50'000 + i, true);
    const auto out = f.engine.screen(
        tx, std::vector<reputation::Report>{{CollectorId(0), Label::kValid},
                                            {CollectorId(1), Label::kInvalid}});
    if (out.selection.chosen == CollectorId(1)) ++chose_bad;
  }
  EXPECT_LT(chose_bad, n / 50);
}

}  // namespace
}  // namespace repchain::protocol
