// Tests for partial governor visibility (§3.1: "in real cases, a governor
// may only perceive partial information ... the structure of the network can
// be adjusted").
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

ScenarioConfig base_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 4;  // every provider reaches all collectors
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.seed = 31;
  return cfg;
}

TEST(PartialVisibility, FullVisibilityByDefault) {
  Scenario s(base_config());
  for (auto& g : s.governors()) {
    for (std::uint32_t c = 0; c < 4; ++c) {
      EXPECT_TRUE(g->sees(CollectorId(c)));
    }
  }
}

TEST(PartialVisibility, HalfViewStillSafeAndLive) {
  auto cfg = base_config();
  cfg.governor_visibility = 0.5;  // each governor sees 2 of 4 collectors
  Scenario s(cfg);
  s.run();

  const auto sum = s.summary();
  EXPECT_EQ(sum.blocks, 4u);
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);

  // Each governor saw only its window and ignored the rest.
  for (auto& g : s.governors()) {
    std::size_t seen = 0;
    for (std::uint32_t c = 0; c < 4; ++c) {
      if (g->sees(CollectorId(c))) ++seen;
    }
    EXPECT_EQ(seen, 2u);
    EXPECT_GT(g->metrics().uploads_invisible, 0u);
    EXPECT_EQ(g->reputation().collector_count(), 2u);
  }
}

TEST(PartialVisibility, ViewsAreStaggeredAcrossGovernors) {
  auto cfg = base_config();
  cfg.governor_visibility = 0.5;
  Scenario s(cfg);
  // Governor j sees {(j+k) mod n}: neighbours overlap in exactly one
  // collector here (n=4, window 2).
  EXPECT_TRUE(s.governor(0).sees(CollectorId(0)));
  EXPECT_TRUE(s.governor(0).sees(CollectorId(1)));
  EXPECT_FALSE(s.governor(0).sees(CollectorId(2)));
  EXPECT_TRUE(s.governor(1).sees(CollectorId(1)));
  EXPECT_TRUE(s.governor(1).sees(CollectorId(2)));
}

TEST(PartialVisibility, InvisibleAdversaryCannotHurtThisGovernorsReputation) {
  auto cfg = base_config();
  cfg.governor_visibility = 0.5;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::adversarial(),
                   protocol::CollectorBehavior::honest()};
  Scenario s(cfg);
  s.run();
  // Governor 0 sees collectors {0, 1} only; the adversarial collector 2 is
  // outside its world entirely (no reputation entry, no screening input).
  auto& g0 = s.governor(0);
  EXPECT_FALSE(g0.sees(CollectorId(2)));
  EXPECT_THROW((void)g0.reputation().misreport(CollectorId(2)), ProtocolError);
}

TEST(PartialVisibility, InvalidFractionRejected) {
  auto cfg = base_config();
  cfg.governor_visibility = 0.0;
  EXPECT_THROW(Scenario s(cfg), ConfigError);
  cfg.governor_visibility = 1.5;
  EXPECT_THROW(Scenario s2(cfg), ConfigError);
}

}  // namespace
}  // namespace repchain::sim
