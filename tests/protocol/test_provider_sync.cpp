// Tests for the retrieve(s) light-client sync: providers fetch blocks from
// governors over the network and verify them locally.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

ScenarioConfig sync_config(std::uint64_t seed = 91) {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 3;
  cfg.topology.r = 1;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.seed = seed;
  return cfg;
}

TEST(ProviderSync, ProvidersReplicateTheFullChain) {
  Scenario s(sync_config());
  s.run();
  const auto& gov_chain = s.governor(0).chain();
  ASSERT_EQ(gov_chain.height(), 5u);
  for (auto& p : s.providers()) {
    EXPECT_EQ(p.chain().height(), gov_chain.height());
    EXPECT_EQ(p.chain().head_hash(), gov_chain.head_hash());
    EXPECT_TRUE(p.chain().audit());
    EXPECT_EQ(p.rejected_blocks(), 0u);
  }
}

TEST(ProviderSync, RepeatedSyncIsIdempotent) {
  Scenario s(sync_config(92));
  s.run_round();
  auto& p = s.providers().front();
  const auto h = p.chain().height();
  p.sync();
  p.sync();  // second call while first is in flight: no duplicate requests
  s.queue().run();
  EXPECT_EQ(p.chain().height(), h);  // nothing new to fetch
}

TEST(ProviderSync, SyncDrivesArgues) {
  // Same adversarial setup as the Validity integration test, but liveness
  // now flows entirely through the networked retrieve(s) path.
  auto cfg = sync_config(93);
  cfg.topology.providers = 4;
  cfg.topology.collectors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 6;
  cfg.p_valid = 1.0;
  cfg.behaviors = {protocol::CollectorBehavior::adversarial()};
  cfg.governor.rep.f = 0.9;
  cfg.audit_probability = 0.0;
  Scenario s(cfg);
  s.run();

  std::uint64_t argued = 0;
  for (auto& p : s.providers()) argued += p.argued();
  EXPECT_GT(argued, 0u);
  EXPECT_GT(s.summary().chain_argued_txs, 0u);
}

TEST(ProviderSync, RequestsAreLoadBalancedAcrossGovernors) {
  Scenario s(sync_config(94));
  s.network().reset_stats();
  s.run();
  const auto& stats = s.network().stats();
  const auto it = stats.by_kind.find(net::MsgKind::kBlockRequest);
  ASSERT_NE(it, stats.by_kind.end());
  // 6 providers x (5 found + 1 not-found terminator per catch-up sequence).
  EXPECT_GE(it->second, 6u * 5u);
  EXPECT_EQ(stats.by_kind.at(net::MsgKind::kBlockResponse), it->second);
}

TEST(ProviderSync, PassiveProvidersStillReplicateButDoNotArgue) {
  auto cfg = sync_config(95);
  cfg.providers_active = false;
  cfg.p_valid = 1.0;
  cfg.behaviors = {protocol::CollectorBehavior::adversarial()};
  cfg.governor.rep.f = 0.9;
  cfg.audit_probability = 0.0;
  Scenario s(cfg);
  s.run();
  for (auto& p : s.providers()) {
    EXPECT_EQ(p.argued(), 0u);
    EXPECT_EQ(p.chain().height(), s.governor(0).chain().height());
  }
}

}  // namespace
}  // namespace repchain::sim
