#include "protocol/leader_election.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::protocol {
namespace {

struct Fixture {
  Fixture() : rng(606), im(crypto::random_seed(rng)) {
    for (std::uint32_t g = 0; g < 4; ++g) {
      keys.emplace_back(crypto::random_seed(rng));
      nodes.push_back(NodeId(100 + g));
      im.enroll(nodes.back(), identity::Role::kGovernor, keys.back().public_key());
      stake.set(GovernorId(g), 2);
    }
  }

  ElectionState make_state(Round r = 1) { return ElectionState(r, stake, expelled); }

  VrfAnnounceMsg announce(std::uint32_t g, Round r = 1) {
    return make_announcement(r, GovernorId(g), stake.of(GovernorId(g)), keys[g]);
  }

  Rng rng;
  identity::IdentityManager im;
  std::vector<crypto::SigningKey> keys;
  std::vector<NodeId> nodes;
  StakeLedger stake;
  std::set<GovernorId> expelled;
};

TEST(LeaderElection, CompletesWithAllAnnouncements) {
  Fixture f;
  ElectionState st = f.make_state();
  EXPECT_FALSE(st.complete());
  EXPECT_EQ(st.winner(), std::nullopt);
  for (std::uint32_t g = 0; g < 4; ++g) {
    EXPECT_TRUE(st.add_announcement(f.announce(g), f.im, f.nodes[g]));
  }
  EXPECT_TRUE(st.complete());
  ASSERT_TRUE(st.winner().has_value());
}

TEST(LeaderElection, DeterministicAcrossObservers) {
  Fixture f;
  ElectionState a = f.make_state();
  ElectionState b = f.make_state();
  // Feed the same announcements in different orders.
  for (std::uint32_t g : {0u, 1u, 2u, 3u}) {
    EXPECT_TRUE(a.add_announcement(f.announce(g), f.im, f.nodes[g]));
  }
  for (std::uint32_t g : {3u, 1u, 0u, 2u}) {
    EXPECT_TRUE(b.add_announcement(f.announce(g), f.im, f.nodes[g]));
  }
  EXPECT_EQ(a.winner(), b.winner());
  EXPECT_EQ(a.best().hash, b.best().hash);
}

TEST(LeaderElection, DifferentRoundsDifferentWinnersEventually) {
  Fixture f;
  std::set<GovernorId> winners;
  for (Round r = 1; r <= 30 && winners.size() < 2; ++r) {
    ElectionState st(r, f.stake, f.expelled);
    for (std::uint32_t g = 0; g < 4; ++g) {
      (void)st.add_announcement(f.announce(g, r), f.im, f.nodes[g]);
    }
    ASSERT_TRUE(st.winner().has_value());
    winners.insert(*st.winner());
  }
  // VRF pseudorandomness: 30 rounds with 4 equal governors must not always
  // elect the same one.
  EXPECT_GE(winners.size(), 2u);
}

TEST(LeaderElection, RejectsWrongRound) {
  Fixture f;
  ElectionState st = f.make_state(1);
  EXPECT_FALSE(st.add_announcement(f.announce(0, 2), f.im, f.nodes[0]));
}

TEST(LeaderElection, RejectsDuplicateAnnouncement) {
  Fixture f;
  ElectionState st = f.make_state();
  EXPECT_TRUE(st.add_announcement(f.announce(0), f.im, f.nodes[0]));
  EXPECT_FALSE(st.add_announcement(f.announce(0), f.im, f.nodes[0]));
}

TEST(LeaderElection, RejectsWrongTicketCount) {
  Fixture f;
  ElectionState st = f.make_state();
  // Claim 3 tickets while owning stake 2.
  const VrfAnnounceMsg msg = make_announcement(1, GovernorId(0), 3, f.keys[0]);
  EXPECT_FALSE(st.add_announcement(msg, f.im, f.nodes[0]));
}

TEST(LeaderElection, RejectsForgedProof) {
  Fixture f;
  ElectionState st = f.make_state();
  // Governor 0's announcement signed with governor 1's key.
  const VrfAnnounceMsg forged = make_announcement(1, GovernorId(0), 2, f.keys[1]);
  EXPECT_FALSE(st.add_announcement(forged, f.im, f.nodes[0]));
}

TEST(LeaderElection, RejectsExpelledGovernor) {
  Fixture f;
  f.expelled.insert(GovernorId(2));
  ElectionState st = f.make_state();
  EXPECT_FALSE(st.add_announcement(f.announce(2), f.im, f.nodes[2]));
  // Completes without the expelled member.
  for (std::uint32_t g : {0u, 1u, 3u}) {
    EXPECT_TRUE(st.add_announcement(f.announce(g), f.im, f.nodes[g]));
  }
  EXPECT_TRUE(st.complete());
  EXPECT_NE(st.winner(), GovernorId(2));
}

TEST(LeaderElection, ZeroStakeGovernorCannotWin) {
  Fixture f;
  f.stake.set(GovernorId(3), 0);
  ElectionState st = f.make_state();
  for (std::uint32_t g : {0u, 1u, 2u}) {
    EXPECT_TRUE(st.add_announcement(f.announce(g), f.im, f.nodes[g]));
  }
  EXPECT_TRUE(st.complete());
  EXPECT_NE(st.winner(), GovernorId(3));
}

TEST(LeaderElection, StakeProportionalityOverManyRounds) {
  // Governor 0 holds 3/6 of stake; its win frequency over 300 rounds should
  // be near 1/2 (the §3.4.3 proportionality claim; E9 sweeps this further).
  Fixture f;
  f.stake.set(GovernorId(0), 3);
  f.stake.set(GovernorId(1), 1);
  f.stake.set(GovernorId(2), 1);
  f.stake.set(GovernorId(3), 1);

  int wins0 = 0;
  const Round rounds = 300;
  for (Round r = 1; r <= rounds; ++r) {
    ElectionState st(r, f.stake, f.expelled);
    for (std::uint32_t g = 0; g < 4; ++g) {
      (void)st.add_announcement(
          make_announcement(r, GovernorId(g), f.stake.of(GovernorId(g)), f.keys[g]),
          f.im, f.nodes[g]);
    }
    if (st.winner() == GovernorId(0)) ++wins0;
  }
  EXPECT_NEAR(wins0 / static_cast<double>(rounds), 0.5, 0.09);
}

}  // namespace
}  // namespace repchain::protocol
