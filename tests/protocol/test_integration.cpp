// End-to-end protocol runs through the Scenario harness: the five §3.1
// properties, misbehaviour handling, argue liveness and stake consensus.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

using protocol::CollectorBehavior;

ScenarioConfig small_config(std::uint64_t seed = 1) {
  ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.governor.rep.f = 0.5;
  cfg.governor.block_limit = 500;
  cfg.seed = seed;
  return cfg;
}

TEST(Integration, HonestRunSafetyProperties) {
  Scenario s(small_config());
  s.run();
  const auto sum = s.summary();

  // One block per round (No Skipping: serials 1..rounds on every replica).
  EXPECT_EQ(sum.blocks, 5u);
  // Agreement: all governors hold identical chains.
  EXPECT_TRUE(sum.agreement);
  // Chain Integrity + serial contiguity audited per replica.
  EXPECT_TRUE(sum.chains_audit_ok);
  EXPECT_EQ(sum.txs_submitted, 8u * 2u * 5u);
}

TEST(Integration, AllValidTxsWithHonestCollectorsEndUpInChain) {
  auto cfg = small_config(7);
  cfg.p_valid = 1.0;  // every transaction valid
  Scenario s(cfg);
  s.run();
  const auto sum = s.summary();
  // Honest collectors label +1, +1 picks are always checked -> everything in
  // the chain as checked-valid.
  EXPECT_EQ(sum.chain_valid_txs, sum.txs_submitted);
  EXPECT_EQ(sum.chain_unchecked_txs, 0u);
}

TEST(Integration, AlmostNoCreation) {
  // Every transaction in the chain was broadcast by an enrolled provider:
  // it must be registered in the oracle (workload registers on submit) and
  // its provider signature must verify.
  auto cfg = small_config(11);
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::forging(0.5)};
  Scenario s(cfg);
  s.run();

  const auto& chain = s.governor(0).chain();
  for (const auto& block : chain.blocks()) {
    for (const auto& rec : block.txs) {
      EXPECT_TRUE(s.oracle().is_registered(rec.tx.id()));
      const auto node = s.directory().node_of(rec.tx.provider);
      EXPECT_TRUE(s.identity_manager().authenticate(node, rec.tx.signed_preimage(),
                                                    rec.tx.provider_sig));
    }
  }
  // The forging collector was detected and punished on every fabrication.
  std::uint64_t forged = 0;
  for (auto& c : s.collectors()) forged += c.stats().forged;
  EXPECT_GT(forged, 0u);
  std::uint64_t detected = 0;
  for (auto& g : s.governors()) detected += g->metrics().forgeries_detected;
  EXPECT_EQ(detected, forged * s.governors().size());
  for (auto& g : s.governors()) {
    EXPECT_LT(g->reputation().forge(CollectorId(1)), 0);
    EXPECT_EQ(g->reputation().forge(CollectorId(0)), 0);
  }
}

TEST(Integration, ValidityActiveProvidersRecoverBuriedTxs) {
  // An always-inverting collector gets valid transactions recorded
  // invalid-unchecked; active providers argue and the transaction must
  // appear in a later block as argued-valid.
  auto cfg = small_config(13);
  cfg.topology.providers = 4;
  cfg.topology.collectors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 8;
  cfg.p_valid = 1.0;
  cfg.behaviors = {CollectorBehavior::adversarial()};  // all collectors invert
  cfg.governor.rep.f = 0.9;  // high f => many unchecked
  cfg.audit_probability = 0.0;  // only argue reveals
  Scenario s(cfg);
  s.run();

  const auto sum = s.summary();
  EXPECT_GT(sum.chain_unchecked_txs, 0u);
  EXPECT_GT(sum.chain_argued_txs, 0u);

  std::uint64_t argued = 0, confirmed = 0, submitted = 0;
  for (auto& p : s.providers()) {
    argued += p.argued();
    confirmed += p.confirmed_valid();
    submitted += p.submitted();
  }
  EXPECT_GT(argued, 0u);
  // Every submitted valid tx was eventually confirmed except those from the
  // final rounds still in flight.
  EXPECT_GE(confirmed + 2 * s.config().topology.providers, submitted);
}

TEST(Integration, EquivocatorDetectedByDivergence) {
  // An equivocating collector sends different labels to different governors;
  // runs stay safe (agreement on chain) because content comes from the
  // leader.
  auto cfg = small_config(17);
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::equivocating()};
  Scenario s(cfg);
  s.run();
  const auto sum = s.summary();
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
}

TEST(Integration, ReputationIsolatesAdversarialCollector) {
  auto cfg = small_config(19);
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.r = 2;  // s = 4 providers per collector
  cfg.rounds = 12;
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::honest(),
                   CollectorBehavior::misreporting(0.8)};
  Scenario s(cfg);
  s.run();

  // The misreporter's revenue share collapses under every governor.
  for (auto& g : s.governors()) {
    const auto shares = g->revenue_shares();
    double bad = 0.0, best_honest = 0.0;
    for (const auto& [c, share] : shares) {
      if (c == CollectorId(2)) {
        bad = share;
      } else {
        best_honest = std::max(best_honest, share);
      }
    }
    EXPECT_LT(bad, best_honest / 2.0);
  }
  // Cumulative paid rewards reflect it too.
  const auto& rewards = s.collector_rewards();
  EXPECT_LT(rewards[2], rewards[0]);
  EXPECT_LT(rewards[2], rewards[1]);
}

TEST(Integration, StakeConsensusTransfersStake) {
  auto cfg = small_config(23);
  cfg.rounds = 1;
  cfg.governor_stakes = {5, 5, 5};
  Scenario s(cfg);

  s.governor(0).submit_stake_transfer(GovernorId(1), 2);
  s.queue().run();
  s.run_round();

  for (auto& g : s.governors()) {
    EXPECT_EQ(g->stake().of(GovernorId(0)), 3u);
    EXPECT_EQ(g->stake().of(GovernorId(1)), 7u);
    EXPECT_EQ(g->stake().of(GovernorId(2)), 5u);
  }
}

TEST(Integration, CheatingStakeLeaderIsExpelled) {
  auto cfg = small_config(29);
  cfg.rounds = 1;
  cfg.governor_stakes = {5, 5, 5};
  Scenario s(cfg);

  // Make every governor a cheater-if-leader; whoever leads will cheat.
  for (auto& g : s.governors()) g->set_cheat_stake_consensus(true);
  s.governor(2).submit_stake_transfer(GovernorId(0), 1);
  s.queue().run();
  s.run_round();

  const auto leader = s.governor(0).round_leader();
  ASSERT_TRUE(leader.has_value());
  // All other governors expelled the cheating leader.
  for (auto& g : s.governors()) {
    if (g->id() != *leader) {
      EXPECT_TRUE(g->expelled().contains(*leader))
          << "governor " << g->id() << " did not expel";
      // And the corrupt state was not applied.
      EXPECT_EQ(g->stake().of(*leader), 5u);
    }
  }
}

TEST(Integration, DeterministicAcrossIdenticalSeeds) {
  Scenario a(small_config(31));
  Scenario b(small_config(31));
  a.run();
  b.run();
  EXPECT_EQ(a.governor(0).chain().head_hash(),
            b.governor(0).chain().head_hash());
  EXPECT_EQ(a.summary().validations_total, b.summary().validations_total);
}

TEST(Integration, DifferentSeedsDiverge) {
  Scenario a(small_config(37));
  Scenario b(small_config(38));
  a.run();
  b.run();
  EXPECT_NE(a.governor(0).chain().head_hash(),
            b.governor(0).chain().head_hash());
}

TEST(Integration, BlockLimitRespected) {
  auto cfg = small_config(41);
  cfg.governor.block_limit = 3;
  cfg.rounds = 6;
  Scenario s(cfg);
  s.run();
  for (const auto& block : s.governor(0).chain().blocks()) {
    EXPECT_LE(block.txs.size(), 3u);
  }
  // Overflow carries over; with 16 tx/round and limit 3 the chain lags but
  // still grows one block per round.
  EXPECT_EQ(s.governor(0).chain().height(), 6u);
}

TEST(Integration, LeaderRotationRoughlyProportionalToStake) {
  auto cfg = small_config(43);
  cfg.rounds = 60;
  cfg.txs_per_provider_per_round = 0;  // election-only rounds, fast
  cfg.governor_stakes = {8, 1, 1};
  Scenario s(cfg);
  s.run();
  const auto& counts = s.leader_counts();
  EXPECT_GT(counts[0], counts[1] + counts[2]);
}

TEST(Integration, UncheckedFractionTracksF) {
  // With all transactions invalid and honest collectors, every pick is a -1
  // report; the unchecked fraction approaches f * E[Pr_chosen] <= f.
  auto cfg = small_config(47);
  cfg.p_valid = 0.0;
  cfg.rounds = 10;
  cfg.governor.rep.f = 0.8;
  Scenario s(cfg);
  s.run();
  const auto& stats = s.governor(0).screening_stats();
  ASSERT_GT(stats.screened, 0u);
  const double frac =
      static_cast<double>(stats.unchecked) / static_cast<double>(stats.screened);
  EXPECT_LE(frac, 0.8 + 0.05);  // Lemma 2
  EXPECT_GT(frac, 0.1);         // screening does skip a real fraction
}

}  // namespace
}  // namespace repchain::sim
