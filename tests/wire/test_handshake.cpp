// Handshake admission: version negotiation over explicit ranges and the
// genesis-hash comparison, each failing with its documented ProtocolError.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "wire/codec.hpp"

namespace repchain::wire {
namespace {

TEST(Handshake, NegotiatesHighestCommonVersion) {
  EXPECT_EQ(negotiate_version(1, 3, 2, 5), 3u);
  EXPECT_EQ(negotiate_version(2, 5, 1, 3), 3u);
  EXPECT_EQ(negotiate_version(1, 1, 1, 1), 1u);
  EXPECT_EQ(negotiate_version(1, 4, 4, 4), 4u);
}

TEST(Handshake, PeerOnlyNewerIsHighVersion) {
  try {
    (void)negotiate_version(1, 1, 2, 4);
    FAIL() << "disjoint (newer) ranges negotiated";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kHighVersion);
  }
}

TEST(Handshake, PeerOnlyOlderIsLowVersion) {
  try {
    (void)negotiate_version(3, 5, 1, 2);
    FAIL() << "disjoint (older) ranges negotiated";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kLowVersion);
  }
}

TEST(Handshake, CheckWelcomeAcceptsMatchingGenesis) {
  const crypto::Hash256 genesis = crypto::Sha256::hash(Bytes{1, 2, 3});
  Welcome w;
  w.genesis = genesis;
  EXPECT_EQ(check_welcome(w, genesis), kVersionMax);
}

TEST(Handshake, CheckWelcomeRejectsWrongGenesis) {
  Welcome w;
  w.genesis = crypto::Sha256::hash(Bytes{1, 2, 3});
  const crypto::Hash256 ours = crypto::Sha256::hash(Bytes{4, 5, 6});
  try {
    (void)check_welcome(w, ours);
    FAIL() << "wrong genesis admitted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kWrongGenesis);
  }
}

TEST(Handshake, CheckWelcomeRejectsDisjointVersions) {
  const crypto::Hash256 genesis{};
  Welcome w;
  w.genesis = genesis;
  w.version_min = kVersionMax + 1;
  w.version_max = kVersionMax + 2;
  try {
    (void)check_welcome(w, genesis);
    FAIL() << "future-only peer admitted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kHighVersion);
  }
}

}  // namespace
}  // namespace repchain::wire
