// Frame layer: length-framed packets with magic + version header, decoded
// incrementally by FrameReader under arbitrary stream chunking. Structural
// header violations map to distinct ProtocolErrors and poison the reader.
#include <gtest/gtest.h>

#include "wire/frame.hpp"

namespace repchain::wire {
namespace {

Bytes payload_of(std::size_t n, std::uint8_t salt = 7) {
  Bytes p(n);
  for (std::size_t i = 0; i < n; ++i) p[i] = static_cast<std::uint8_t>(i ^ salt);
  return p;
}

TEST(Frame, RoundTripSingleFrame) {
  const Bytes payload = payload_of(100);
  const Bytes encoded = encode_frame(3, payload);
  ASSERT_EQ(encoded.size(), kHeaderSize + payload.size());

  FrameReader reader;
  std::vector<Frame> frames;
  reader.feed(encoded, frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(frames[0].type, 3u);
  EXPECT_EQ(frames[0].version, kVersionMax);
  EXPECT_EQ(frames[0].payload, payload);
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(Frame, ByteAtATimeChunkingYieldsIdenticalFrames) {
  Bytes stream;
  for (int i = 0; i < 3; ++i) {
    const Bytes f = encode_frame(static_cast<std::uint16_t>(10 + i),
                                 payload_of(17 * (i + 1), static_cast<std::uint8_t>(i)));
    stream.insert(stream.end(), f.begin(), f.end());
  }
  FrameReader reader;
  std::vector<Frame> frames;
  for (const std::uint8_t b : stream) reader.feed(BytesView(&b, 1), frames);
  ASSERT_EQ(frames.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(frames[i].type, 10u + i);
    EXPECT_EQ(frames[i].payload,
              payload_of(17 * (i + 1), static_cast<std::uint8_t>(i)));
  }
  EXPECT_EQ(reader.pending(), 0u);
}

TEST(Frame, EmptyPayloadFrame) {
  FrameReader reader;
  std::vector<Frame> frames;
  reader.feed(encode_frame(1, BytesView{}), frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_TRUE(frames[0].payload.empty());
}

TEST(Frame, BadMagicPoisonsReader) {
  Bytes bad = encode_frame(1, payload_of(4));
  bad[0] ^= 0xFF;
  FrameReader reader;
  std::vector<Frame> frames;
  try {
    reader.feed(bad, frames);
    FAIL() << "bad magic accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kBadMagic);
  }
  EXPECT_TRUE(reader.poisoned());
  // Every further feed rethrows; a desynced stream never half-recovers.
  EXPECT_THROW(reader.feed(encode_frame(1, BytesView{}), frames), WireError);
  EXPECT_TRUE(frames.empty());
}

TEST(Frame, HigherVersionThanWeSpeakIsRejected) {
  const Bytes f = encode_frame(1, payload_of(4), kVersionMax + 1);
  FrameReader reader;
  std::vector<Frame> frames;
  try {
    reader.feed(f, frames);
    FAIL() << "future version accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kHighVersion);
  }
}

TEST(Frame, LowerVersionThanWeSpeakIsRejected) {
  ASSERT_GE(kVersionMin, 1);
  const Bytes f = encode_frame(1, payload_of(4), kVersionMin - 1);
  FrameReader reader;
  std::vector<Frame> frames;
  try {
    reader.feed(f, frames);
    FAIL() << "ancient version accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kLowVersion);
  }
}

TEST(Frame, OversizedLengthFieldIsRejectedBeforeBuffering) {
  FrameReader reader(/*max_payload=*/64);
  // Hand-build a header announcing 65 bytes: beyond this reader's bound.
  Bytes header;
  auto u32 = [&](std::uint32_t v) {
    for (int i = 0; i < 4; ++i) header.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  };
  auto u16 = [&](std::uint16_t v) {
    header.push_back(static_cast<std::uint8_t>(v));
    header.push_back(static_cast<std::uint8_t>(v >> 8));
  };
  u32(kMagic);
  u16(kVersionMax);
  u16(1);
  u32(65);
  std::vector<Frame> frames;
  try {
    reader.feed(header, frames);
    FAIL() << "oversized frame accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kOversizedFrame);
  }
}

TEST(Frame, PendingTracksIncompleteFrame) {
  const Bytes f = encode_frame(1, payload_of(32));
  FrameReader reader;
  std::vector<Frame> frames;
  reader.feed(BytesView(f.data(), 20), frames);
  EXPECT_TRUE(frames.empty());
  EXPECT_EQ(reader.pending(), 20u);
  reader.feed(BytesView(f.data() + 20, f.size() - 20), frames);
  ASSERT_EQ(frames.size(), 1u);
  EXPECT_EQ(reader.pending(), 0u);
}

}  // namespace
}  // namespace repchain::wire
