// Canonical codecs shared between the simulator and the socket paths:
// message envelope, trace events, welcome and error packets. Decode
// failures carry distinct ProtocolError codes.
#include <gtest/gtest.h>

#include "wire/codec.hpp"

namespace repchain::wire {
namespace {

runtime::Message sample_message() {
  runtime::Message m;
  m.from = NodeId(3);
  m.to = NodeId(11);
  m.kind = runtime::MsgKind::kBlockProposal;
  m.payload = {1, 2, 3, 250, 251};
  m.sent_at = 1'000'000;
  m.delivered_at = 1'004'321;
  m.seq = 42;
  return m;
}

TEST(Codec, MessageRoundTripPreservesEveryField) {
  const runtime::Message m = sample_message();
  const runtime::Message d = decode_message(encode_message(m));
  EXPECT_EQ(d.from, m.from);
  EXPECT_EQ(d.to, m.to);
  EXPECT_EQ(d.kind, m.kind);
  EXPECT_EQ(d.payload, m.payload);
  EXPECT_EQ(d.sent_at, m.sent_at);
  EXPECT_EQ(d.delivered_at, m.delivered_at);
  EXPECT_EQ(d.seq, m.seq);
}

TEST(Codec, TruncatedMessageReportsTruncatedPayload) {
  Bytes enc = encode_message(sample_message());
  enc.resize(enc.size() - 3);
  try {
    (void)decode_message(enc);
    FAIL() << "truncated message accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kTruncatedPayload);
  }
}

TEST(Codec, TrailingBytesAreRejected) {
  Bytes enc = encode_message(sample_message());
  enc.push_back(0);
  try {
    (void)decode_message(enc);
    FAIL() << "trailing byte accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kTrailingBytes);
  }
}

TEST(Codec, TraceRoundTrip) {
  runtime::TraceEvent ev;
  ev.kind = runtime::TraceKind::kProtocolError;
  ev.node = NodeId(5);
  ev.round = 3;
  ev.arg0 = 4;
  ev.arg1 = 99;
  ev.at = 123'456;
  const runtime::TraceEvent d = decode_trace(encode_trace(ev));
  EXPECT_EQ(d.kind, ev.kind);
  EXPECT_EQ(d.node, ev.node);
  EXPECT_EQ(d.round, ev.round);
  EXPECT_EQ(d.arg0, ev.arg0);
  EXPECT_EQ(d.arg1, ev.arg1);
  EXPECT_EQ(d.at, ev.at);
}

TEST(Codec, TraceKindOutOfDomainIsBadPayload) {
  runtime::TraceEvent ev;
  Bytes enc = encode_trace(ev);
  enc[0] = 200;
  try {
    (void)decode_trace(enc);
    FAIL() << "bogus trace kind accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kBadPayload);
  }
}

TEST(Codec, WelcomeRoundTrip) {
  Welcome w;
  w.version_min = kVersionMin;
  w.version_max = kVersionMax;
  w.genesis[0] = 0xAB;
  w.genesis[31] = 0xCD;
  w.role = Role::kNode;
  w.node_index = 2;
  w.hosted = {NodeId(7), NodeId(9)};
  w.nonce = 0xDEADBEEF;
  const Welcome d = decode_welcome(encode_welcome(w));
  EXPECT_EQ(d.version_min, w.version_min);
  EXPECT_EQ(d.version_max, w.version_max);
  EXPECT_EQ(d.genesis, w.genesis);
  EXPECT_EQ(d.role, w.role);
  EXPECT_EQ(d.node_index, w.node_index);
  EXPECT_EQ(d.hosted, w.hosted);
  EXPECT_EQ(d.nonce, w.nonce);
}

TEST(Codec, WelcomeResumeFieldsRoundTrip) {
  Welcome w;
  w.role = Role::kNode;
  w.node_index = 1;
  w.hosted = {NodeId(3)};
  w.resume = true;
  w.incarnation = 4;
  w.head_serial = 17;
  const Welcome d = decode_welcome(encode_welcome(w));
  EXPECT_TRUE(d.resume);
  EXPECT_EQ(d.incarnation, 4u);
  EXPECT_EQ(d.head_serial, 17u);

  // A cold peer's welcome carries the v2 fields at their defaults.
  const Welcome cold = decode_welcome(encode_welcome(Welcome{}));
  EXPECT_FALSE(cold.resume);
  EXPECT_EQ(cold.incarnation, 0u);
  EXPECT_EQ(cold.head_serial, 0u);
}

TEST(Codec, HeartbeatRoundTrip) {
  Heartbeat h;
  h.nonce = 0xFEEDFACECAFEBEEFULL;
  h.sent_at = 9'876'543;
  const Heartbeat d = decode_heartbeat(encode_heartbeat(h));
  EXPECT_EQ(d.nonce, h.nonce);
  EXPECT_EQ(d.sent_at, h.sent_at);
}

TEST(Codec, HeartbeatTruncationIsTruncatedPayload) {
  Bytes enc = encode_heartbeat(Heartbeat{1, 2});
  enc.resize(enc.size() - 1);
  try {
    (void)decode_heartbeat(enc);
    FAIL() << "truncated heartbeat accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kTruncatedPayload);
  }
}

TEST(Codec, VersionRangeSpansSessionResume) {
  // v2 introduced the resume extension and the heartbeat packet; the
  // advertised range must cover it while still admitting v1 peers.
  EXPECT_EQ(kVersionMax, 2);
  EXPECT_EQ(negotiate_version(kVersionMin, kVersionMax, 1, 1), 1);
  EXPECT_EQ(negotiate_version(kVersionMin, kVersionMax, 2, 2), 2);
}

TEST(Codec, WelcomeWithUnknownRoleIsBadRole) {
  Welcome w;
  Bytes enc = encode_welcome(w);
  enc[2 + 2 + 32] = 77;  // the role byte follows the version range + genesis
  try {
    (void)decode_welcome(enc);
    FAIL() << "unknown role accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kBadRole);
  }
}

TEST(Codec, WelcomeWithInvertedVersionRangeIsBadPayload) {
  Welcome w;
  w.version_min = 5;
  w.version_max = 2;
  try {
    (void)decode_welcome(encode_welcome(w));
    FAIL() << "inverted version range accepted";
  } catch (const WireError& e) {
    EXPECT_EQ(e.code(), ProtocolError::kBadPayload);
  }
}

TEST(Codec, ErrorPacketRoundTrip) {
  const ErrorPacket e{ProtocolError::kWrongGenesis, "different universe"};
  const ErrorPacket d = decode_error(encode_error(e));
  EXPECT_EQ(d.code, e.code);
  EXPECT_EQ(d.detail, e.detail);
}

}  // namespace
}  // namespace repchain::wire
