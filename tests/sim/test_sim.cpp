#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "sim/scenario.hpp"
#include "sim/topology.hpp"

namespace repchain::sim {
namespace {

TEST(Topology, ValidatesStructure) {
  TopologyConfig t;
  t.providers = 8;
  t.collectors = 4;
  t.governors = 3;
  t.r = 2;
  t.validate();
  EXPECT_EQ(t.s(), 4u);  // r*l/n = 16/4
}

TEST(Topology, RejectsEmptyTiers) {
  TopologyConfig t;
  t.providers = 0;
  EXPECT_THROW(t.validate(), ConfigError);
}

TEST(Topology, RejectsROutOfRange) {
  TopologyConfig t;
  t.collectors = 4;
  t.r = 5;
  EXPECT_THROW(t.validate(), ConfigError);
  t.r = 0;
  EXPECT_THROW(t.validate(), ConfigError);
}

TEST(Topology, RejectsIndivisibleOverlap) {
  TopologyConfig t;
  t.providers = 5;
  t.collectors = 4;
  t.r = 2;  // 10 links over 4 collectors: uneven
  EXPECT_THROW(t.validate(), ConfigError);
}

TEST(Topology, BuildLinksBalanced) {
  // Figure 1's structure: every provider gets exactly r collectors and every
  // collector exactly s providers (r*l = s*n).
  TopologyConfig t;
  t.providers = 12;
  t.collectors = 6;
  t.governors = 2;
  t.r = 3;

  protocol::Directory d;
  for (std::uint32_t i = 0; i < t.providers; ++i) d.add_provider(ProviderId(i), NodeId(i));
  for (std::uint32_t i = 0; i < t.collectors; ++i) {
    d.add_collector(CollectorId(i), NodeId(100 + i));
  }
  build_links(t, d);

  for (std::uint32_t i = 0; i < t.providers; ++i) {
    EXPECT_EQ(d.collectors_of(ProviderId(i)).size(), t.r);
  }
  for (std::uint32_t i = 0; i < t.collectors; ++i) {
    EXPECT_EQ(d.providers_of(CollectorId(i)).size(), t.s());
  }
}

TEST(Scenario, SummaryCountsAreConsistent) {
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 2;
  cfg.topology.r = 2;
  cfg.rounds = 3;
  cfg.txs_per_provider_per_round = 2;
  cfg.seed = 3;
  Scenario s(cfg);
  s.run();
  const auto sum = s.summary();
  EXPECT_EQ(sum.txs_submitted, 4u * 2u * 3u);
  EXPECT_EQ(sum.blocks, 3u);
  // Chain content never exceeds submissions.
  EXPECT_LE(sum.chain_valid_txs + sum.chain_unchecked_txs + sum.chain_argued_txs,
            sum.txs_submitted);
  EXPECT_GT(sum.validations_total, 0u);
  EXPECT_GT(sum.network.messages_sent, 0u);
}

TEST(Scenario, RunRoundAdvancesRoundCounter) {
  ScenarioConfig cfg;
  cfg.topology.providers = 2;
  cfg.topology.collectors = 2;
  cfg.topology.governors = 2;
  cfg.topology.r = 1;
  cfg.txs_per_provider_per_round = 1;
  Scenario s(cfg);
  EXPECT_EQ(s.current_round(), 0u);
  s.run_round();
  EXPECT_EQ(s.current_round(), 1u);
  s.run_round();
  EXPECT_EQ(s.current_round(), 2u);
  EXPECT_EQ(s.governor(0).chain().height(), 2u);
}

TEST(Scenario, RewardsArePaidToCollectors) {
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 2;
  cfg.topology.governors = 2;
  cfg.topology.r = 1;
  cfg.rounds = 3;
  cfg.p_valid = 1.0;
  cfg.reward_per_valid_tx = 2.0;
  Scenario s(cfg);
  s.run();
  double total = 0.0;
  for (double r : s.collector_rewards()) total += r;
  // Every valid tx in every block pays out 2.0 across collectors.
  const auto sum = s.summary();
  EXPECT_NEAR(total, 2.0 * static_cast<double>(sum.chain_valid_txs), 1e-6);
}

TEST(Scenario, HistoryRecordsEachRound) {
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 2;
  cfg.topology.governors = 2;
  cfg.topology.r = 1;
  cfg.rounds = 3;
  cfg.txs_per_provider_per_round = 2;
  cfg.seed = 17;
  Scenario s(cfg);
  s.run();

  ASSERT_EQ(s.history().size(), 3u);
  std::size_t chain_txs = 0;
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& rec = s.history()[i];
    EXPECT_EQ(rec.round, i + 1);
    ASSERT_TRUE(rec.leader.has_value());
    EXPECT_GT(rec.messages_delta, 0u);
    chain_txs += rec.block_txs;
  }
  // Per-round block sizes sum to the chain's total record count.
  std::size_t total = 0;
  for (const auto& b : s.governor(0).chain().blocks()) total += b.txs.size();
  EXPECT_EQ(chain_txs, total);
}

TEST(Scenario, CrashedGovernorHaltsLivenessNotSafety) {
  // The paper's model has no governor crashes (synchronous, known members);
  // this documents the failure mode: a silent governor stalls elections
  // (announcements are awaited from every non-expelled member), so no new
  // blocks form — but nothing unsafe happens and existing chains agree.
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 2;
  cfg.topology.governors = 3;
  cfg.topology.r = 1;
  cfg.rounds = 2;
  cfg.txs_per_provider_per_round = 1;
  cfg.seed = 19;
  Scenario s(cfg);
  s.run_round();
  ASSERT_EQ(s.governor(0).chain().height(), 1u);

  s.network().set_node_down(s.governor(2).node(), true);
  s.run_round();

  EXPECT_EQ(s.governor(0).chain().height(), 1u);  // no new block
  const auto sum = s.summary();
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
}

TEST(Scenario, InvalidTopologyThrowsAtConstruction) {
  ScenarioConfig cfg;
  cfg.topology.providers = 0;
  EXPECT_THROW(Scenario s(cfg), ConfigError);
}

}  // namespace
}  // namespace repchain::sim
