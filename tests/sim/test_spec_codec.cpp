// Canonical config codec behind the cluster handshake: byte-stable encode /
// decode round trips, the genesis identity derived from them, and the
// cluster-runnability gate for features only an in-process run can host.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "sim/harness/spec_codec.hpp"

namespace repchain::sim {
namespace {

ScenarioConfig rich_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.75;
  cfg.audit_probability = 0.4;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.9),
                   protocol::CollectorBehavior::misreporting(0.25)};
  cfg.enable_label_gossip = true;
  cfg.seed = 1234;
  return cfg;
}

TEST(SpecCodec, EncodeDecodeRoundTripIsByteStable) {
  ScenarioConfig cfg = rich_config();
  normalize_config(cfg);
  const Bytes blob = encode_config(cfg);
  const ScenarioConfig back = decode_config(blob);
  // Byte equality of re-encoding is the strongest equality the spec needs:
  // the encoding is canonical, so equal bytes mean equal configs.
  EXPECT_EQ(encode_config(back), blob);
}

TEST(SpecCodec, NormalizeIsIdempotentOnTheEncoding) {
  ScenarioConfig cfg = rich_config();
  normalize_config(cfg);
  const Bytes once = encode_config(cfg);
  normalize_config(cfg);
  EXPECT_EQ(encode_config(cfg), once);
}

TEST(SpecCodec, GenesisIsStableAndSeedSensitive) {
  ScenarioConfig a = rich_config();
  ScenarioConfig b = rich_config();
  EXPECT_EQ(config_genesis(a), config_genesis(b));

  b.seed = 1235;
  EXPECT_NE(config_genesis(a), config_genesis(b));

  ScenarioConfig c = rich_config();
  c.rounds += 1;
  EXPECT_NE(config_genesis(a), config_genesis(c));
}

TEST(SpecCodec, TruncatedBlobIsRejected) {
  ScenarioConfig cfg = rich_config();
  normalize_config(cfg);
  Bytes blob = encode_config(cfg);
  blob.resize(blob.size() / 2);
  EXPECT_THROW((void)decode_config(blob), DecodeError);
}

TEST(SpecCodec, ClusterGateRejectsCrashPlans) {
  ScenarioConfig cfg = rich_config();
  CrashPlan plan;
  plan.governor = 1;
  plan.crash_round = 2;
  plan.restart_round = 3;
  cfg.crashes.push_back(plan);
  EXPECT_THROW(require_cluster_runnable(cfg), ConfigError);
  EXPECT_THROW((void)encode_config(cfg), ConfigError);
}

TEST(SpecCodec, ClusterGateRejectsDurableGovernors) {
  ScenarioConfig cfg = rich_config();
  cfg.durable_governors = true;
  EXPECT_THROW(require_cluster_runnable(cfg), ConfigError);
}

TEST(SpecCodec, ClusterGateRejectsStorageDir) {
  ScenarioConfig cfg = rich_config();
  cfg.storage_dir = "/tmp/somewhere";
  EXPECT_THROW(require_cluster_runnable(cfg), ConfigError);
}

TEST(SpecCodec, ClusterGateAcceptsPlainConfig) {
  ScenarioConfig cfg = rich_config();
  normalize_config(cfg);
  EXPECT_NO_THROW(require_cluster_runnable(cfg));
}

ScenarioConfig sharded_config() {
  ScenarioConfig cfg = rich_config();
  cfg.topology.providers = 16;
  cfg.topology.collectors = 8;
  cfg.topology.governors = 4;
  cfg.behaviors.clear();
  cfg.shard_count = 2;
  cfg.anchor_interval = 3;
  cfg.cross_shard_probability = 0.25;
  cfg.bounded_history = 64;
  return cfg;
}

TEST(SpecCodec, ShardFieldsRoundTrip) {
  ScenarioConfig cfg = sharded_config();
  normalize_config(cfg);
  const Bytes blob = encode_config(cfg);
  const ScenarioConfig back = decode_config(blob);
  EXPECT_EQ(back.shard_count, 2u);
  EXPECT_EQ(back.anchor_interval, 3u);
  EXPECT_EQ(back.cross_shard_probability, 0.25);
  EXPECT_EQ(back.bounded_history, 64u);
  EXPECT_EQ(encode_config(back), blob);
}

TEST(SpecCodec, GenesisIsShardSensitive) {
  // Two configs differing only in the committee partition must not admit
  // each other: they describe different ledgers (per-shard chains), so the
  // genesis identity exchanged in the handshake has to split.
  ScenarioConfig one = sharded_config();
  ScenarioConfig two = sharded_config();
  one.shard_count = 1;
  one.cross_shard_probability = 0.0;  // needs shards; drop for the S=1 twin
  two.cross_shard_probability = 0.0;
  EXPECT_NE(config_genesis(one), config_genesis(two));

  ScenarioConfig spaced = sharded_config();
  spaced.anchor_interval = 4;
  EXPECT_NE(config_genesis(sharded_config()), config_genesis(spaced));
}

TEST(SpecCodec, ClusterGateRejectsShardsButEncodingAllowsThem) {
  ScenarioConfig cfg = sharded_config();
  normalize_config(cfg);
  // Sharded specs are first-class for codec/genesis purposes...
  EXPECT_NO_THROW(require_encodable(cfg));
  EXPECT_NO_THROW((void)encode_config(cfg));
  // ...but the multi-process cluster host runs exactly one committee.
  EXPECT_THROW(require_cluster_runnable(cfg), ConfigError);

  cfg.shard_count = 1;
  cfg.cross_shard_probability = 0.0;
  EXPECT_NO_THROW(require_cluster_runnable(cfg));
}

TEST(SpecCodec, NormalizeRejectsUnrealizableShardSpecs) {
  ScenarioConfig cfg = sharded_config();
  cfg.shard_count = 0;
  EXPECT_THROW(normalize_config(cfg), ConfigError);

  cfg = sharded_config();
  cfg.shard_count = 5;  // more committees than governors
  EXPECT_THROW(normalize_config(cfg), ConfigError);

  cfg = sharded_config();
  cfg.anchor_interval = 0;
  EXPECT_THROW(normalize_config(cfg), ConfigError);

  cfg = sharded_config();
  cfg.cross_shard_probability = 1.5;
  EXPECT_THROW(normalize_config(cfg), ConfigError);

  cfg = sharded_config();
  cfg.shard_count = 1;  // cross-shard traffic needs somewhere foreign to go
  EXPECT_THROW(normalize_config(cfg), ConfigError);

  cfg = sharded_config();
  cfg.governor_visibility = 0.5;  // views are drawn over the global set
  EXPECT_THROW(normalize_config(cfg), ConfigError);
}

}  // namespace
}  // namespace repchain::sim
