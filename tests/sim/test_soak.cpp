// Randomized whole-protocol soak: sweep seeds x fault mixes x parameters and
// assert the §3.1 safety invariants plus Lemma 2's bound on every single
// run. Anything that violates agreement, chain integrity, no-skipping,
// almost-no-creation or the unchecked-fraction bound fails loudly.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

using protocol::CollectorBehavior;

struct SoakCase {
  std::uint64_t seed;
  std::size_t mix;
};

std::vector<CollectorBehavior> behavior_mix(std::size_t mix) {
  switch (mix % 5) {
    case 0:
      return {};  // all honest
    case 1:
      return {CollectorBehavior::honest(), CollectorBehavior::noisy(0.75)};
    case 2:
      return {CollectorBehavior::honest(), CollectorBehavior::adversarial(),
              CollectorBehavior::concealing(0.5)};
    case 3:
      return {CollectorBehavior::honest(), CollectorBehavior::forging(0.4),
              CollectorBehavior::equivocating()};
    default:
      return {CollectorBehavior::misreporting(0.3), CollectorBehavior::honest(),
              CollectorBehavior::noisy(0.9), CollectorBehavior::concealing(0.2)};
  }
}

class ProtocolSoak : public ::testing::TestWithParam<SoakCase> {};

TEST_P(ProtocolSoak, InvariantsHoldUnderRandomizedRuns) {
  const SoakCase param = GetParam();
  Rng knobs(param.seed * 7919);

  ScenarioConfig cfg;
  cfg.topology.collectors = 2 + knobs.uniform(4);              // 2..5
  cfg.topology.providers = cfg.topology.collectors * (1 + knobs.uniform(3));
  cfg.topology.governors = 2 + knobs.uniform(3);               // 2..4
  cfg.topology.r = 1 + knobs.uniform(cfg.topology.collectors); // 1..n
  // Keep r*l divisible by n: providers is a multiple of n, so any r works.
  cfg.rounds = 3 + knobs.uniform(4);
  cfg.txs_per_provider_per_round = 1 + knobs.uniform(3);
  cfg.p_valid = 0.3 + 0.6 * knobs.uniform01();
  cfg.governor.rep.f = 0.2 + 0.7 * knobs.uniform01();
  cfg.governor.rep.beta = 0.5 + 0.45 * knobs.uniform01();
  cfg.behaviors = behavior_mix(param.mix);
  cfg.enable_label_gossip = (param.mix % 2) == 0;
  cfg.seed = param.seed;

  Scenario s(cfg);
  s.run();
  const auto sum = s.summary();

  // Safety invariants.
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  EXPECT_EQ(sum.blocks, cfg.rounds);

  // Almost No Creation: every chain record is a registered, provider-signed
  // transaction.
  for (const auto& block : s.governor(0).chain().blocks()) {
    for (const auto& rec : block.txs) {
      ASSERT_TRUE(s.oracle().is_registered(rec.tx.id()));
    }
  }

  // Lemma 2: the unchecked fraction never exceeds f (+ sampling slack).
  for (auto& g : s.governors()) {
    const auto& st = g->screening_stats();
    if (st.screened >= 20) {
      const double frac =
          static_cast<double>(st.unchecked) / static_cast<double>(st.screened);
      EXPECT_LE(frac, cfg.governor.rep.f + 0.15)
          << "seed=" << param.seed << " mix=" << param.mix;
    }
  }

  // Providers replicated the chain they were served.
  for (auto& p : s.providers()) {
    EXPECT_EQ(p.chain().head_hash(), s.governor(0).chain().head_hash());
    EXPECT_EQ(p.rejected_blocks(), 0u);
  }

  // Time series is complete and consistent.
  ASSERT_EQ(s.history().size(), cfg.rounds);
  std::uint64_t validations = 0;
  for (const auto& r : s.history()) validations += r.validations_delta;
  EXPECT_EQ(validations, sum.validations_total);
}

std::vector<SoakCase> soak_cases() {
  std::vector<SoakCase> cases;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    for (std::size_t mix = 0; mix < 5; ++mix) {
      cases.push_back({seed * 101, mix});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ProtocolSoak, ::testing::ValuesIn(soak_cases()),
                         [](const ::testing::TestParamInfo<SoakCase>& info) {
                           return "seed" + std::to_string(info.param.seed) + "_mix" +
                                  std::to_string(info.param.mix);
                         });

}  // namespace
}  // namespace repchain::sim
