// Golden regression: for fixed seeds the whole-protocol run must stay
// bit-identical across refactors of the runtime/round machinery. Every value
// below (including the hexfloat doubles) was captured from the seed
// implementation; any diff here means the event schedule, an RNG stream, or
// a protocol decision changed.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

struct GoldenRound {
  Round round;
  int leader;  // -1 = none elected
  std::size_t block_txs;
  std::uint64_t validations_delta;
  std::uint64_t messages_delta;
  double expected_loss_delta;
  std::uint64_t argues_delta;
};

void expect_history(const std::vector<RoundRecord>& history,
                    const std::vector<GoldenRound>& golden) {
  ASSERT_EQ(history.size(), golden.size());
  for (std::size_t i = 0; i < golden.size(); ++i) {
    SCOPED_TRACE(testing::Message() << "round " << golden[i].round);
    EXPECT_EQ(history[i].round, golden[i].round);
    ASSERT_TRUE(history[i].leader.has_value());
    EXPECT_EQ(static_cast<int>(history[i].leader->value()), golden[i].leader);
    EXPECT_EQ(history[i].block_txs, golden[i].block_txs);
    EXPECT_EQ(history[i].validations_delta, golden[i].validations_delta);
    EXPECT_EQ(history[i].messages_delta, golden[i].messages_delta);
    EXPECT_EQ(history[i].expected_loss_delta, golden[i].expected_loss_delta);
    EXPECT_EQ(history[i].argues_delta, golden[i].argues_delta);
  }
}

TEST(GoldenSummary, MixedAdversarialMixSeed42) {
  ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.audit_probability = 0.6;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.9),
                   protocol::CollectorBehavior::misreporting(0.3),
                   protocol::CollectorBehavior::forging(0.2)};
  cfg.seed = 42;
  Scenario s(cfg);
  s.run();
  const auto sum = s.summary();

  EXPECT_EQ(sum.txs_submitted, 80u);
  EXPECT_EQ(sum.blocks, 5u);
  EXPECT_EQ(sum.chain_valid_txs, 61u);
  EXPECT_EQ(sum.chain_unchecked_txs, 7u);
  EXPECT_EQ(sum.chain_argued_txs, 1u);
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  EXPECT_EQ(sum.validations_total, 223u);
  EXPECT_EQ(sum.mean_governor_expected_loss, 0x1.8p+1);
  EXPECT_EQ(sum.mean_governor_realized_loss, 0x1.2aaaaaaaaaaabp+2);
  EXPECT_EQ(sum.mean_governor_mistakes, 2u);
  EXPECT_EQ(sum.network.messages_sent, 893u);
  EXPECT_EQ(sum.network.messages_dropped, 0u);
  EXPECT_EQ(sum.network.bytes_sent, 219249u);

  const std::vector<double> rewards{0x1.105360b1ad57ep+5, 0x1.b2c63fc1a8776p+3,
                                    0x1.5a34c0f4e2309p+3, 0x1.c6ddf20affe17p+1};
  EXPECT_EQ(s.collector_rewards(), rewards);
  const std::vector<std::uint64_t> leads{2, 1, 2};
  EXPECT_EQ(s.leader_counts(), leads);

  expect_history(s.history(), {{1, 2, 14, 45, 178, 0x1p+0, 0},
                               {2, 2, 13, 45, 184, 0x1p+0, 2},
                               {3, 1, 14, 42, 184, 0x1p+0, 1},
                               {4, 0, 15, 45, 172, 0x0p+0, 0},
                               {5, 0, 13, 46, 175, 0x0p+0, 0}});
}

TEST(GoldenSummary, EquivocationGossipSeed2112) {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = true;
  cfg.seed = 2112;
  Scenario s(cfg);
  s.run();
  const auto sum = s.summary();

  EXPECT_EQ(sum.txs_submitted, 48u);
  EXPECT_EQ(sum.blocks, 4u);
  EXPECT_EQ(sum.chain_valid_txs, 36u);
  EXPECT_EQ(sum.chain_unchecked_txs, 5u);
  EXPECT_EQ(sum.chain_argued_txs, 0u);
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  EXPECT_EQ(sum.validations_total, 177u);
  EXPECT_EQ(sum.mean_governor_expected_loss, 0x1.8p-1);
  EXPECT_EQ(sum.mean_governor_realized_loss, 0x1p+0);
  EXPECT_EQ(sum.mean_governor_mistakes, 0u);
  EXPECT_EQ(sum.network.messages_sent, 720u);
  EXPECT_EQ(sum.network.messages_dropped, 0u);
  EXPECT_EQ(sum.network.bytes_sent, 435092u);

  const std::vector<double> rewards{0x1.18ec2fdb20cbfp+4, 0x1.23953b8ecca5p+4,
                                    0x1.bf4a4b0947851p-3};
  EXPECT_EQ(s.collector_rewards(), rewards);
  const std::vector<std::uint64_t> leads{0, 0, 3, 1};
  EXPECT_EQ(s.leader_counts(), leads);

  expect_history(s.history(), {{1, 2, 11, 45, 180, 0x0p+0, 0},
                               {2, 2, 11, 46, 180, 0x0p+0, 0},
                               {3, 2, 11, 47, 180, 0x0p+0, 0},
                               {4, 3, 8, 39, 180, 0x0p+0, 0}});
}

}  // namespace
}  // namespace repchain::sim
