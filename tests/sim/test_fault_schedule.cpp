// Network-fault golden family: seeded fault schedules (burst loss, healed
// partitions, duplication, reordering, delay spikes) run through the
// FaultyTransport decorator with reliable delivery enabled must be *masked* —
// the cluster converges to the same chain a fault-free run commits — and
// where masking is impossible (a quorum-splitting partition) the liveness
// watchdog must fire and the cluster must recover once the window closes.
#include <gtest/gtest.h>

#include <cstddef>

#include "ledger/chain.hpp"
#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

/// Deterministic reliable-delivery baseline: fixed 2ms links (Delta = 2ms,
/// base RTO = 6ms), honest collectors, no out-of-band audits or argues.
ScenarioConfig reliable_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 8;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.providers_active = false;
  cfg.audit_probability = 0.0;
  cfg.latency = net::LatencyModel{2 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = 7001;
  return cfg;
}

void expect_cluster_converged(Scenario& s) {
  const auto sum = s.summary();
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  const std::size_t n = s.config().topology.governors;
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(s.governor(i).chain().height(), s.governor(0).chain().height()) << i;
    EXPECT_TRUE(ledger::ChainStore::same_prefix(s.governor(0).chain(),
                                                s.governor(i).chain()))
        << i;
  }
}

/// A governor index that never led rounds [from, until) in `base` — safe to
/// cut off without changing the elected leaders of those rounds.
std::size_t idle_governor(Scenario& base, std::size_t from, std::size_t until) {
  const std::size_t n = base.config().topology.governors;
  for (std::size_t g = 0; g < n; ++g) {
    bool led = false;
    for (std::size_t r = from; r < until; ++r) {
      const auto leader = base.observer().leader(r);
      if (leader && leader->value() == g) led = true;
    }
    if (!led) return g;
  }
  ADD_FAILURE() << "every governor led a partition round";
  return 0;
}

TEST(FaultScheduleSim, BurstLossAndHealedPartitionCommitTheFaultFreeChain) {
  // The issue's headline acceptance: 10% burst loss on every link plus one
  // three-round partition (healed afterwards) at a fixed seed must commit
  // exactly the chain the fault-free reliable run commits — the reliable
  // channel masks the loss, and the partitioned governor (never a leader in
  // the window) catches up via sync without perturbing the majority.
  Scenario base(reliable_config());
  base.run();
  const auto base_sum = base.summary();
  ASSERT_EQ(base_sum.blocks, 8u);
  ASSERT_TRUE(base_sum.agreement);

  ScenarioConfig cfg = reliable_config();
  LossSpec loss;
  loss.from_round = 2;
  loss.until_round = 5;
  loss.probability = 0.10;
  PartitionSpec part;
  part.from_round = 2;
  part.until_round = 5;  // three rounds, healed at round 5
  part.governors = {idle_governor(base, 2, 5)};
  cfg.faults.losses = {loss};
  cfg.faults.partitions = {part};
  Scenario faulted(cfg);
  faulted.run();

  expect_cluster_converged(faulted);
  const auto sum = faulted.summary();
  EXPECT_EQ(sum.blocks, base_sum.blocks);
  EXPECT_EQ(sum.chain_valid_txs, base_sum.chain_valid_txs);
  EXPECT_EQ(sum.chain_unchecked_txs, base_sum.chain_unchecked_txs);
  EXPECT_EQ(faulted.governor(0).chain().height(),
            base.governor(0).chain().height());
  EXPECT_TRUE(ledger::ChainStore::same_prefix(base.governor(0).chain(),
                                              faulted.governor(0).chain()));
  // The faults really happened: the decorator dropped traffic.
  ASSERT_NE(faulted.fault_stats(), nullptr);
  EXPECT_GT(faulted.fault_stats()->loss_drops, 0u);
  EXPECT_GT(faulted.fault_stats()->partition_drops, 0u);
  // The channel did the masking.
  EXPECT_GT(faulted.governor(0).channel()->stats().retransmits, 0u);
}

TEST(FaultScheduleSim, DuplicationAndReorderingStayMasked) {
  // Random duplication and bounded reordering across the whole run: the
  // channel's dedup plus the idempotent receive paths keep every replica in
  // agreement with a full-length chain.
  ScenarioConfig cfg = reliable_config();
  DuplicationSpec dup;
  dup.from_round = 1;
  dup.until_round = 9;
  dup.probability = 0.3;
  ReorderSpec reorder;
  reorder.from_round = 1;
  reorder.until_round = 9;
  reorder.probability = 0.3;
  reorder.max_extra = 4 * kMillisecond;
  cfg.faults.duplications = {dup};
  cfg.faults.reorders = {reorder};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_EQ(s.summary().blocks, 8u);
  ASSERT_NE(s.fault_stats(), nullptr);
  EXPECT_GT(s.fault_stats()->duplicated, 0u);
  EXPECT_GT(s.fault_stats()->reordered, 0u);
}

TEST(FaultScheduleSim, DuplicationWithoutReliableDeliveryIsIdempotent) {
  // Even with the channel off, duplicated uploads / announcements / broadcast
  // copies must not double-screen or double-count: the screened-id set, the
  // election's per-governor record and the sequenced-duplicate guard absorb
  // the replays.
  ScenarioConfig cfg = reliable_config();
  cfg.reliable_delivery = false;
  DuplicationSpec dup;
  dup.from_round = 1;
  dup.until_round = 9;
  dup.probability = 0.5;
  cfg.faults.duplications = {dup};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_EQ(s.summary().blocks, 8u);
  ASSERT_NE(s.fault_stats(), nullptr);
  EXPECT_GT(s.fault_stats()->duplicated, 0u);
}

TEST(FaultScheduleSim, QuorumSplittingPartitionTripsWatchdogThenRecovers) {
  // A 2-2 governor split leaves neither side a majority: elections cannot
  // close, rounds stall, the watchdog fires on every replica. Once the
  // partition heals the cluster resumes committing and reconverges.
  ScenarioConfig cfg = reliable_config();
  cfg.rounds = 8;
  PartitionSpec part;
  part.from_round = 2;
  part.until_round = 4;
  part.governors = {0, 1};
  cfg.faults.partitions = {part};
  Scenario s(cfg);
  s.run();

  const auto sum = s.summary();
  EXPECT_GE(sum.stalled_events, 1u);  // the watchdog saw the stall
  expect_cluster_converged(s);
  // Rounds outside the split still committed (1 plus the healed tail).
  EXPECT_GE(sum.blocks, 4u);
  EXPECT_LT(sum.blocks, 8u);
  std::uint64_t trips = 0;
  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    trips += s.governor(g).metrics().watchdog_trips;
  }
  EXPECT_GE(trips, 1u);
}

TEST(FaultScheduleSim, GovernorCrashedWhilePartitionedCatchesUpAfterHeal) {
  // Compound fault: governor 1 is cut off in round 2, crashes in round 3,
  // restarts in round 4 *still inside the partition* (its recovery sync times
  // out against severed links), and only after the heal at round 5 can the
  // watchdog-driven resync pull the missed blocks from live peers.
  ScenarioConfig cfg = reliable_config();
  cfg.rounds = 8;
  PartitionSpec part;
  part.from_round = 2;
  part.until_round = 5;
  part.governors = {1};
  cfg.faults.partitions = {part};
  CrashPlan plan;
  plan.governor = 1;
  plan.crash_round = 3;
  plan.crash_offset = 0;
  plan.restart_round = 4;
  cfg.crashes = {plan};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_TRUE(s.governor(1).chain().audit());
  EXPECT_GE(s.governor(1).metrics().blocks_synced, 1u);
  // The recovery sync hit the dead partition at least once before the heal.
  EXPECT_GE(s.governor(1).metrics().sync_timeouts, 1u);
  ASSERT_NE(s.fault_stats(), nullptr);
  EXPECT_GT(s.fault_stats()->partition_drops, 0u);
}

TEST(FaultScheduleSim, DelaySpikePastTheSynchronyBoundRecovers) {
  // A two-round delay spike pushing every link past Delta violates the
  // round-timing assumptions; the watchdog/sync machinery must reconverge
  // the replicas once the spike ends, even if spiked rounds produce nothing.
  ScenarioConfig cfg = reliable_config();
  cfg.rounds = 8;
  DelaySpikeSpec spike;
  spike.from_round = 2;
  spike.until_round = 4;
  spike.extra = 3 * kMillisecond;
  spike.jitter = 2 * kMillisecond;
  cfg.faults.delay_spikes = {spike};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_GE(s.summary().blocks, 5u);
  ASSERT_NE(s.fault_stats(), nullptr);
  EXPECT_GT(s.fault_stats()->delay_extended, 0u);
}

/// The chaos-soak configuration these two regressions were minimized from
/// (tools/chaos_soak.cpp): 1-3ms links, three tx per provider per round.
ScenarioConfig chaos_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 10;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = seed;
  return cfg;
}

TEST(FaultScheduleSim, WinnerCrashingAfterAnnouncingDoesNotSplitTheElection) {
  // Chaos regression (soak seed 50001): governor 1 announces the round's
  // winning ticket, then crashes before proposing; under burst loss some
  // peers hold its announcement and some never will (the retransmission
  // source is dead). Without the announcement echo relay the view splits at
  // propose time — one side waits for a dead leader while a behind replica
  // elects itself and self-commits a forked block it can never roll back.
  ScenarioConfig cfg = chaos_config(50001);
  cfg.faults.losses = {{2, 4, 0.17}};
  cfg.faults.duplications = {{2, 5, 0.19}};
  cfg.faults.reorders = {{3, 5, 0.243, 4 * kMillisecond}};
  cfg.crashes = {{1, 3, 0, 4}};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_GE(s.summary().blocks, 7u);
}

TEST(FaultScheduleSim, LaggingIslandMatesCannotConfirmEachOthersStaleHead) {
  // Chaos regression (soak seed 50003): governors 0 (partitioned) and 1
  // (crashed) both miss a legitimately committed block; after the heal,
  // governor 0's catch-up sync polls governor 1 — exactly as far behind —
  // and a lone "nothing above your head" answer must NOT conclude the pass,
  // or the stale pair elects a leader and mints a conflicting serial. The
  // pass needs majority corroboration before declaring the head current.
  ScenarioConfig cfg = chaos_config(50003);
  cfg.faults.losses = {{3, 6, 0.189}};
  cfg.faults.reorders = {{2, 5, 0.2, 4 * kMillisecond}};
  PartitionSpec part;
  part.from_round = 3;
  part.until_round = 4;
  part.governors = {0};
  cfg.faults.partitions = {part};
  cfg.crashes = {{1, 3, 0, 4}};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_GE(s.summary().blocks, 7u);
}

}  // namespace
}  // namespace repchain::sim
