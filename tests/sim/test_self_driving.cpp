// The tentpole property of the runtime refactor: rounds are self-driving.
// Governors armed once with drive_rounds keep re-arming their own phase
// timers, so the chain grows (and replicas agree) with nothing but the clock
// advancing — no harness calls between rounds.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

ScenarioConfig small_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 2;
  cfg.topology.governors = 3;
  cfg.topology.r = 1;
  cfg.rounds = 0;  // the harness drives no rounds itself
  cfg.audit_probability = 0.0;
  cfg.seed = 7;
  return cfg;
}

TEST(SelfDriving, AutoRoundsGrowTheChainWithoutHarnessCalls) {
  Scenario s(small_config());
  const auto timing = s.timing();
  for (auto& g : s.governors()) g->drive_rounds(1, timing);

  // Advance the clock three round spans: three blocks, one per round, on
  // every replica, even with no transactions injected (empty blocks keep the
  // serial chain gapless).
  s.queue().run_until(s.queue().now() + 3 * timing.round_span);
  for (auto& g : s.governors()) {
    EXPECT_EQ(g->chain().height(), 3u);
    EXPECT_TRUE(g->chain().audit());
  }
  EXPECT_TRUE(ledger::ChainStore::same_prefix(s.governor(0).chain(),
                                              s.governor(1).chain()));

  // The clock alone keeps it going.
  s.queue().run_until(s.queue().now() + timing.round_span);
  EXPECT_EQ(s.governor(0).chain().height(), 4u);
}

TEST(SelfDriving, ScenarioRoundsAreTimerDriven) {
  // run_round arms the deadlines and advances the clock; all phase work
  // happens inside queue events. After the round the queue has quiesced (no
  // stragglers leak into the next round).
  auto cfg = small_config();
  cfg.rounds = 2;
  Scenario s(cfg);
  s.run();
  EXPECT_EQ(s.queue().pending(), 0u);
  EXPECT_EQ(s.governor(0).chain().height(), 2u);
  ASSERT_EQ(s.history().size(), 2u);
  for (const auto& rec : s.history()) {
    EXPECT_TRUE(rec.leader.has_value());
  }
}

}  // namespace
}  // namespace repchain::sim
