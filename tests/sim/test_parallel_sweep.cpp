// sim::ParallelSweep contracts: the merged output of a sharded sweep is
// identical for any job count. Each shard here is a real Scenario run — an
// isolated deterministic instance — so this is the end-to-end form of the
// EventLoop isolation guarantee: parallelism buys wall-clock, never
// different results.
#include "sim/parallel_sweep.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

TEST(ParallelSweep, ResolveJobsPicksAtLeastOne) {
  EXPECT_GE(ParallelSweep::resolve_jobs(0), 1u);
  EXPECT_EQ(ParallelSweep::resolve_jobs(1), 1u);
  EXPECT_EQ(ParallelSweep::resolve_jobs(7), 7u);
  EXPECT_EQ(ParallelSweep(0).jobs(), ParallelSweep::resolve_jobs(0));
}

TEST(ParallelSweep, ForEachCoversEveryIndexExactlyOnce) {
  for (const std::size_t jobs : {1u, 3u, 8u}) {
    const ParallelSweep sweep(jobs);
    std::vector<std::atomic<int>> hits(17);
    sweep.for_each(hits.size(),
                   [&hits](std::size_t i) { hits[i].fetch_add(1); });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "jobs=" << jobs << " i=" << i;
    }
  }
}

TEST(ParallelSweep, MapMergesByIndexForAnyJobCount) {
  const auto square = [](std::size_t i) { return i * i; };
  const std::vector<std::size_t> serial = ParallelSweep(1).map<std::size_t>(32, square);
  for (const std::size_t jobs : {2u, 5u, 8u}) {
    EXPECT_EQ(ParallelSweep(jobs).map<std::size_t>(32, square), serial)
        << "jobs=" << jobs;
  }
}

TEST(ParallelSweep, WorkerExceptionRethrownOnCaller) {
  const ParallelSweep sweep(4);
  EXPECT_THROW(sweep.for_each(8,
                              [](std::size_t i) {
                                if (i == 5) throw std::runtime_error("shard 5");
                              }),
               std::runtime_error);
}

/// One sweep shard: a small full-protocol run, summarized. Builds its own
/// Scenario from the seed — zero shared mutable state between shards.
ScenarioSummary run_shard(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.topology = {4, 4, 3, 2};
  cfg.rounds = 3;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.7;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.85)};
  cfg.seed = seed;
  Scenario s(cfg);
  s.run();
  return s.summary();
}

TEST(ParallelSweep, ScenarioSweepIdenticalSerialVsEightJobs) {
  const auto shard = [](std::size_t i) { return run_shard(900 + i); };
  const std::vector<ScenarioSummary> serial =
      ParallelSweep(1).map<ScenarioSummary>(8, shard);
  const std::vector<ScenarioSummary> parallel =
      ParallelSweep(8).map<ScenarioSummary>(8, shard);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const auto& a = serial[i];
    const auto& b = parallel[i];
    EXPECT_EQ(a.txs_submitted, b.txs_submitted) << i;
    EXPECT_EQ(a.blocks, b.blocks) << i;
    EXPECT_EQ(a.chain_valid_txs, b.chain_valid_txs) << i;
    EXPECT_EQ(a.chain_unchecked_txs, b.chain_unchecked_txs) << i;
    EXPECT_EQ(a.validations_total, b.validations_total) << i;
    EXPECT_EQ(a.network.messages_sent, b.network.messages_sent) << i;
    EXPECT_EQ(a.network.bytes_sent, b.network.bytes_sent) << i;
    EXPECT_EQ(a.mean_governor_expected_loss, b.mean_governor_expected_loss) << i;
    EXPECT_EQ(a.agreement, b.agreement) << i;
    // And the runs did real work: an empty-summary false pass is impossible.
    EXPECT_GT(a.txs_submitted, 0u) << i;
    EXPECT_GT(a.blocks, 0u) << i;
  }
}

}  // namespace
}  // namespace repchain::sim
