// Crash/restart fault schedule regression (golden-summary family): a
// governor killed mid-run — in-memory state dropped, timers revoked — and
// restarted from its NodeStateStore must converge back to the same chain
// prefix as the uninterrupted fixed-seed run, pass the chain audit, and
// fully catch up with its live peers via the block sync machinery.
#include <gtest/gtest.h>

#include <filesystem>

#include "ledger/chain.hpp"
#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

/// Quiet, fully deterministic configuration: honest collectors, fixed
/// latency, no out-of-band audits or argues. Under it, every piece of state
/// that influences future blocks is captured by the per-block snapshot
/// (snapshot_interval = 1), so a clean-point crash must be invisible in the
/// chain the cluster produces.
ScenarioConfig quiet_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 4;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 6;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.providers_active = false;
  cfg.audit_probability = 0.0;
  cfg.latency = net::LatencyModel{2 * kMillisecond, 2 * kMillisecond};
  cfg.governor.snapshot_interval = 1;
  cfg.seed = 9001;
  return cfg;
}

/// Busier mix (adversarial collectors, audits on) for the catch-up tests:
/// determinism across runs is not required there, only within-run
/// convergence of the restarted replica.
ScenarioConfig busy_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 6;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.audit_probability = 0.6;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.9),
                   protocol::CollectorBehavior::misreporting(0.3),
                   protocol::CollectorBehavior::honest()};
  cfg.seed = 4242;
  return cfg;
}

void expect_cluster_converged(Scenario& s) {
  const auto sum = s.summary();
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  const std::size_t n = s.config().topology.governors;
  for (std::size_t i = 1; i < n; ++i) {
    EXPECT_EQ(s.governor(i).chain().height(), s.governor(0).chain().height()) << i;
    EXPECT_TRUE(ledger::ChainStore::same_prefix(s.governor(0).chain(),
                                                s.governor(i).chain()))
        << i;
  }
}

TEST(CrashRecovery, CleanPointCrashMatchesUninterruptedRun) {
  // Uninterrupted reference run.
  Scenario base(quiet_config());
  base.run();
  const auto base_sum = base.summary();
  ASSERT_EQ(base_sum.blocks, 6u);
  ASSERT_TRUE(base_sum.agreement);

  // Same seed, but governor 1 is killed late in round 2 — after the block
  // committed and its snapshot persisted — and restarted at the round-3
  // boundary. Recovery restores the snapshot; nothing happened while it was
  // down, so the cluster's chain must be bit-identical to the reference.
  ScenarioConfig cfg = quiet_config();
  CrashPlan plan;
  plan.governor = 1;
  plan.crash_round = 2;
  plan.crash_offset = base.timing().audit_offset;
  plan.restart_round = 3;
  cfg.crashes = {plan};
  Scenario crashed(cfg);
  crashed.run();

  expect_cluster_converged(crashed);
  const auto sum = crashed.summary();
  EXPECT_EQ(sum.blocks, base_sum.blocks);
  EXPECT_EQ(sum.chain_valid_txs, base_sum.chain_valid_txs);
  EXPECT_EQ(sum.chain_unchecked_txs, base_sum.chain_unchecked_txs);
  EXPECT_EQ(crashed.governor(1).chain().height(), base.governor(0).chain().height());
  EXPECT_TRUE(ledger::ChainStore::same_prefix(base.governor(0).chain(),
                                              crashed.governor(1).chain()));
  EXPECT_TRUE(crashed.governor(1).chain().audit());
  // The snapshot path really carried the state: the store holds one.
  ASSERT_NE(crashed.governor_store(1), nullptr);
  EXPECT_GT(crashed.governor_store(1)->snapshot_bytes(), 0u);
}

TEST(CrashRecovery, MidRoundCrashCatchesUpViaPeerSync) {
  // Kill governor 1 in round 2 *before* the proposal lands (it misses the
  // round-2 and round-3 blocks entirely) and restart it two rounds later.
  // With no snapshots configured, recovery replays the WAL (block 1) and the
  // node-to-node sync must fetch the missed blocks from live peers.
  ScenarioConfig cfg = busy_config();
  const SimDuration gossip_offset = Scenario(cfg).timing().gossip_offset;
  CrashPlan plan;
  plan.governor = 1;
  plan.crash_round = 2;
  plan.crash_offset = gossip_offset;
  plan.restart_round = 4;
  cfg.crashes = {plan};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_GE(s.governor(1).metrics().blocks_synced, 1u);
  EXPECT_TRUE(s.governor(1).chain().audit());
  ASSERT_NE(s.governor_store(1), nullptr);
  EXPECT_GT(s.governor_store(1)->wal_bytes() + s.governor_store(1)->snapshot_bytes(),
            0u);
}

TEST(CrashRecovery, FileBackedStoreSurvivesCrash) {
  // Same fault schedule, on-disk stores: the restarted governor recovers
  // from real files (atomic snapshot + WAL tail) in a scratch directory.
  const auto dir =
      std::filesystem::temp_directory_path() / "repchain_crash_recovery_sim";
  std::filesystem::remove_all(dir);

  ScenarioConfig cfg = busy_config();
  cfg.storage_dir = dir;
  cfg.governor.snapshot_interval = 2;
  const SimDuration gossip_offset = Scenario(cfg).timing().gossip_offset;
  std::filesystem::remove_all(dir);  // probe scenario created the layout
  CrashPlan plan;
  plan.governor = 1;
  plan.crash_round = 2;
  plan.crash_offset = gossip_offset;
  plan.restart_round = 4;
  cfg.crashes = {plan};
  {
    Scenario s(cfg);
    s.run();
    expect_cluster_converged(s);
    EXPECT_TRUE(s.governor(1).chain().audit());
    EXPECT_TRUE(std::filesystem::exists(dir / "gov1" / "wal.bin") ||
                std::filesystem::exists(dir / "gov1" / "snapshot.bin"));
  }
  std::filesystem::remove_all(dir);
}

TEST(CrashRecovery, WalCompactionRecoveryMatchesEagerSnapshots) {
  // Same seed, same crash schedule, two storage policies: the default eager
  // snapshot at every stake-transform commit vs deferred WAL compaction
  // (wal_compaction_appends = 1). Storage policy is off the protocol path,
  // so both runs — including the crashed governor's recovery — must end in
  // identical cluster state; only the on-disk images along the way differ.
  const SimDuration crash_offset = Scenario(quiet_config()).timing().audit_offset;
  const auto run_policy = [crash_offset](std::size_t compaction_appends) {
    ScenarioConfig cfg = quiet_config();
    cfg.governor.snapshot_interval = 0;
    cfg.governor.wal_compaction_appends = compaction_appends;
    cfg.governor_stakes = {5, 5, 5};
    CrashPlan plan;
    plan.governor = 1;
    plan.crash_round = 3;
    plan.crash_offset = crash_offset;
    plan.restart_round = 4;
    cfg.crashes = {plan};
    auto s = std::make_unique<Scenario>(cfg);
    for (Round r = 1; r <= cfg.rounds; ++r) {
      if (r <= 2) {
        // Stake transfers in the all-alive prefix: each commit is a recovery
        // point, made durable (eagerly, or by the compaction the next block
        // append triggers) before the round-3 crash.
        s->governor(0).submit_stake_transfer(GovernorId(2), 1);
        s->queue().run();
      }
      s->run_round();
    }
    return s;
  };

  const auto eager = run_policy(0);
  const auto compacted = run_policy(1);

  expect_cluster_converged(*compacted);
  const auto a = eager->summary();
  const auto b = compacted->summary();
  EXPECT_EQ(a.blocks, b.blocks);
  EXPECT_EQ(a.chain_valid_txs, b.chain_valid_txs);
  EXPECT_EQ(a.chain_unchecked_txs, b.chain_unchecked_txs);
  EXPECT_EQ(a.validations_total, b.validations_total);
  const std::size_t n = eager->config().topology.governors;
  for (std::size_t g = 0; g < n; ++g) {
    EXPECT_EQ(eager->governor(g).chain().height(),
              compacted->governor(g).chain().height())
        << g;
    EXPECT_TRUE(ledger::ChainStore::same_prefix(eager->governor(g).chain(),
                                                compacted->governor(g).chain()))
        << g;
    // The recovered replica's stake ledger must carry both transfers under
    // either policy.
    for (std::uint32_t to = 0; to < n; ++to) {
      EXPECT_EQ(eager->governor(g).stake().of(GovernorId(to)),
                compacted->governor(g).stake().of(GovernorId(to)))
          << g << "/" << to;
    }
  }
  // The deferred checkpoint really landed and capped the replay length: the
  // compacted store holds a snapshot plus a WAL tail strictly shorter than
  // the chain it would otherwise have to replay in full.
  const auto* store = compacted->governor_store(0);
  ASSERT_NE(store, nullptr);
  EXPECT_GT(store->snapshot_bytes(), 0u);
  EXPECT_LT(store->wal_records().size(), compacted->governor(0).chain().height());
}

TEST(CrashRecovery, TwoGovernorsCrashInTurn) {
  // Staggered faults: governor 1 dies in round 2, governor 2 in round 3;
  // both rejoin later. The cluster must still converge with every replica
  // at full height.
  ScenarioConfig cfg = busy_config();
  const auto timing = Scenario(cfg).timing();
  CrashPlan p1;
  p1.governor = 1;
  p1.crash_round = 2;
  p1.crash_offset = timing.gossip_offset;
  p1.restart_round = 4;
  CrashPlan p2;
  p2.governor = 2;
  p2.crash_round = 3;
  p2.crash_offset = timing.audit_offset;
  p2.restart_round = 5;
  cfg.crashes = {p1, p2};
  Scenario s(cfg);
  s.run();

  expect_cluster_converged(s);
  EXPECT_TRUE(s.governor(1).chain().audit());
  EXPECT_TRUE(s.governor(2).chain().audit());
}

}  // namespace
}  // namespace repchain::sim
