// Sharded governance: multiple committees each run the full screening /
// argue / stake-consensus pipeline on their own chain. These tests pin the
// end-to-end behavior: committee-local agreement, cross-shard anchoring,
// explicit rejection of committee-spanning traffic, the bounded-history
// cap, and the single-shard degenerate case matching the global summary.
#include <gtest/gtest.h>

#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

ScenarioConfig sharded_config() {
  ScenarioConfig cfg;
  cfg.topology.providers = 16;
  cfg.topology.collectors = 8;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.9;
  cfg.audit_probability = 0.5;
  cfg.shard_count = 2;
  cfg.anchor_interval = 2;
  cfg.seed = 99;
  return cfg;
}

TEST(Sharding, TwoCommitteesEachGrowTheirOwnAgreedChain) {
  Scenario s(sharded_config());
  s.run();
  const ScenarioSummary sum = s.summary();

  ASSERT_EQ(sum.shards.size(), 2u);
  std::size_t providers = 0, collectors = 0, governors = 0;
  std::uint64_t blocks = 0, valid = 0;
  for (const ShardSummary& sh : sum.shards) {
    // Every committee made progress on its own chain and its replicas agree.
    EXPECT_GT(sh.blocks, 0u) << "shard " << sh.shard.value();
    EXPECT_TRUE(sh.agreement);
    EXPECT_TRUE(sh.chains_audit_ok);
    providers += sh.providers;
    collectors += sh.collectors;
    governors += sh.governors;
    blocks += sh.blocks;
    valid += sh.chain_valid_txs;
  }
  // The partition is complete: every node sits in exactly one committee.
  EXPECT_EQ(providers, 16u);
  EXPECT_EQ(collectors, 8u);
  EXPECT_EQ(governors, 4u);
  // Global totals are the committee sums.
  EXPECT_EQ(sum.blocks, blocks);
  EXPECT_EQ(sum.chain_valid_txs, valid);
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  EXPECT_GT(sum.chain_valid_txs, 0u);
  // With no cross-shard traffic configured, nothing is rejected.
  EXPECT_EQ(sum.cross_shard_rejected, 0u);
}

TEST(Sharding, AnchorsCommitEveryCommitteeHeadAtTheInterval) {
  Scenario s(sharded_config());
  s.run();
  const ScenarioSummary sum = s.summary();

  // 5 rounds, anchor_interval 2 -> anchors at rounds 2 and 4, one per shard.
  EXPECT_EQ(sum.anchors_recorded, 4u);
  EXPECT_TRUE(sum.anchors_ok);
  const ledger::BeaconLog& beacon = s.beacon();
  ASSERT_TRUE(beacon.latest(ShardId(0)).has_value());
  ASSERT_TRUE(beacon.latest(ShardId(1)).has_value());
  EXPECT_EQ(beacon.latest(ShardId(0))->round, 4u);
  EXPECT_EQ(beacon.latest(ShardId(1))->round, 4u);
  // The anchored head is a real commitment: it matches the committee chain.
  for (std::uint32_t sh = 0; sh < 2; ++sh) {
    const auto rec = beacon.latest(ShardId(sh));
    const GovernorId g = s.shard_router().governors_of(ShardId(sh)).front();
    EXPECT_LE(rec->head_serial, s.governor(g.value()).chain().height());
  }
}

TEST(Sharding, FixedSeedShardedRunsAreDeterministic) {
  Scenario a(sharded_config());
  Scenario b(sharded_config());
  a.run();
  b.run();
  const ScenarioSummary sa = a.summary();
  const ScenarioSummary sb = b.summary();
  EXPECT_EQ(sa.txs_submitted, sb.txs_submitted);
  EXPECT_EQ(sa.blocks, sb.blocks);
  EXPECT_EQ(sa.chain_valid_txs, sb.chain_valid_txs);
  EXPECT_EQ(sa.validations_total, sb.validations_total);
  EXPECT_EQ(sa.network.messages_sent, sb.network.messages_sent);
  EXPECT_EQ(sa.network.bytes_sent, sb.network.bytes_sent);
  ASSERT_EQ(sa.shards.size(), sb.shards.size());
  for (std::size_t i = 0; i < sa.shards.size(); ++i) {
    EXPECT_EQ(sa.shards[i].blocks, sb.shards[i].blocks);
    EXPECT_EQ(sa.shards[i].chain_valid_txs, sb.shards[i].chain_valid_txs);
  }
  EXPECT_EQ(a.beacon().encode(), b.beacon().encode());
}

TEST(Sharding, CrossShardTrafficIsRejectedWithAnExplicitCode) {
  ScenarioConfig cfg = sharded_config();
  cfg.cross_shard_probability = 0.5;
  Scenario s(cfg);
  s.run();
  const ScenarioSummary sum = s.summary();

  // Roughly half the injected txs target a foreign committee's collector;
  // every one of them must bounce with the explicit reject, never land in a
  // block, and never corrupt committee agreement.
  EXPECT_GT(sum.cross_shard_rejected, 0u);
  EXPECT_LT(sum.cross_shard_rejected, sum.txs_submitted);
  // The collector-side stat and the observer's trace tally agree.
  EXPECT_EQ(s.observer().cross_shard_rejected(), sum.cross_shard_rejected);
  EXPECT_TRUE(sum.agreement);
  EXPECT_TRUE(sum.chains_audit_ok);
  // Rejected txs are gone: the chains cannot hold more than what got through.
  EXPECT_LE(sum.chain_valid_txs + sum.chain_unchecked_txs + sum.chain_argued_txs,
            sum.txs_submitted - sum.cross_shard_rejected);
}

TEST(Sharding, SingleShardSliceMirrorsTheGlobalSummary) {
  ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 3;
  cfg.seed = 5;
  Scenario s(cfg);
  s.run();
  const ScenarioSummary sum = s.summary();

  // Classic runs still expose exactly one slice, and it mirrors the global
  // fields (the probe-core aggregation path is unchanged).
  ASSERT_EQ(sum.shards.size(), 1u);
  const ShardSummary& sh = sum.shards.front();
  EXPECT_EQ(sh.shard, ShardId(0));
  EXPECT_EQ(sh.providers, 8u);
  EXPECT_EQ(sh.collectors, 4u);
  EXPECT_EQ(sh.governors, 3u);
  EXPECT_EQ(sh.blocks, sum.blocks);
  EXPECT_EQ(sh.chain_valid_txs, sum.chain_valid_txs);
  EXPECT_EQ(sh.chain_unchecked_txs, sum.chain_unchecked_txs);
  EXPECT_EQ(sh.chain_argued_txs, sum.chain_argued_txs);
  EXPECT_EQ(sh.agreement, sum.agreement);
  EXPECT_EQ(sh.chains_audit_ok, sum.chains_audit_ok);
  EXPECT_EQ(sum.cross_shard_rejected, 0u);
  // anchor_interval defaults to 1: one anchor per round, all verifying.
  EXPECT_EQ(sum.anchors_recorded, 3u);
  EXPECT_TRUE(sum.anchors_ok);
}

TEST(Sharding, BoundedHistoryCapsTheRoundSeries) {
  ScenarioConfig cfg = sharded_config();
  cfg.rounds = 6;
  cfg.bounded_history = 3;
  Scenario s(cfg);
  s.run();
  // Only the newest 3 rounds are retained; the series still ends at round 6.
  ASSERT_EQ(s.history().size(), 3u);
  EXPECT_EQ(s.history().front().round, 4u);
  EXPECT_EQ(s.history().back().round, 6u);

  // Unbounded runs keep everything (the default).
  ScenarioConfig full = sharded_config();
  full.rounds = 6;
  Scenario t(full);
  t.run();
  EXPECT_EQ(t.history().size(), 6u);
}

}  // namespace
}  // namespace repchain::sim
