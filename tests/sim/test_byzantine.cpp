// Byzantine adversary golden family: pinned scenarios, one per in-protocol
// attack of src/adversary/, each asserting the paired defense's full loop —
// the attack really fired (offender-side counters), every honest replica
// detected it (defense counters + kByzantineEvidence), punishment landed
// (expulsion / reputation), and the honest cluster kept agreeing and
// committing. Seeds are pinned; these are regressions, not soaks (the
// randomized sweep lives in tools/chaos_soak --byzantine).
#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <utility>

#include "ledger/chain.hpp"
#include "sim/scenario.hpp"

namespace repchain::sim {
namespace {

/// The chaos-soak Byzantine configuration (tools/chaos_soak.cpp): 1-2ms
/// links, reliable delivery, clean network — Byzantine behavior only.
ScenarioConfig byz_config(std::uint64_t seed) {
  ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 10;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = seed;
  return cfg;
}

/// All honest governors share a prefix and pass the chain audit; Byzantine
/// replicas (their chains may legitimately diverge mid-attack) are skipped.
void expect_honest_converged(Scenario& s, std::size_t byz_gov) {
  const std::size_t n = s.config().topology.governors;
  const protocol::Governor* ref = nullptr;
  for (std::size_t g = 0; g < n; ++g) {
    if (g == byz_gov) continue;
    EXPECT_TRUE(s.governor(g).chain().audit()) << g;
    if (ref == nullptr) {
      ref = &s.governor(g);
      continue;
    }
    EXPECT_TRUE(ledger::ChainStore::same_prefix(ref->chain(), s.governor(g).chain()))
        << g;
    EXPECT_EQ(ref->chain().height(), s.governor(g).chain().height()) << g;
  }
}

TEST(ByzantineSim, EquivocatingLeaderIsExpelledByEveryHonestReplica) {
  // Governor 3, holding a dominant stake (5 of 8) so it keeps winning
  // elections, signs two conflicting blocks per led round in [2, 8). The
  // honest replicas must catch the conflicting signatures, expel it, keep
  // agreeing, and keep committing rounds it no longer leads.
  ScenarioConfig cfg = byz_config(9001);
  cfg.governor_stakes = {1, 1, 1, 5};
  adversary::EquivocatingLeaderSpec e;
  e.from_round = 2;
  e.until_round = 8;
  e.governor = 3;
  cfg.adversary.equivocating_leaders = {e};
  Scenario s(cfg);
  s.run();

  ASSERT_GT(s.governor(3).metrics().byzantine_equivocations_sent, 0u);
  std::uint64_t detected = 0;
  for (std::size_t g = 0; g < 3; ++g) {
    detected += s.governor(g).metrics().proposal_equivocations;
    EXPECT_TRUE(s.governor(g).expelled().contains(GovernorId(3))) << g;
  }
  EXPECT_GT(detected, 0u);
  EXPECT_GT(s.summary().byzantine_evidence, 0u);
  expect_honest_converged(s, 3);
  // The honest majority keeps the chain growing once the equivocator is out.
  EXPECT_GE(s.summary().blocks, 7u);
}

TEST(ByzantineSim, CrashedReplicaRelearnsExpulsionFromResharedEvidence) {
  // Regression minimized from soak seed 90006: governor 3 equivocates in
  // round 2 and is expelled; governor 2 crashes in round 3 — *after* the
  // expel broadcast — and restarts in round 4 with its in-memory expelled
  // set gone. The expelled leader never proposes again (its own election
  // excludes it) but keeps announcing with its dominant stake, so without
  // evidence resharing governor 2 elects it forever and stalls every round
  // the others elect governor 2. Honest replicas must re-broadcast the held
  // equivocation proof when they see the expelled governor announce, so the
  // restarted replica re-learns the expulsion and the tail keeps committing.
  ScenarioConfig cfg = byz_config(9002);
  cfg.governor_stakes = {1, 1, 1, 5};
  adversary::EquivocatingLeaderSpec e;
  e.from_round = 2;
  e.until_round = 8;
  e.governor = 3;
  cfg.adversary.equivocating_leaders = {e};
  CrashPlan plan;
  plan.governor = 2;
  plan.crash_round = 3;
  plan.crash_offset = 0;
  plan.restart_round = 4;
  cfg.crashes = {plan};
  Scenario s(cfg);
  s.run();

  ASSERT_GT(s.governor(3).metrics().byzantine_equivocations_sent, 0u);
  // The restarted replica re-learned the expulsion from reshared evidence.
  EXPECT_TRUE(s.governor(2).expelled().contains(GovernorId(3)));
  expect_honest_converged(s, 3);
  // Tail liveness: the final round still committed a block.
  ASSERT_FALSE(s.governor(0).chain().empty());
  EXPECT_GE(s.governor(0).chain().head().round, cfg.rounds - 1);
  EXPECT_GE(s.summary().blocks, 7u);
}

TEST(ByzantineSim, LyingSyncPeerIsOutvotedByCorroboration) {
  // Governor 1 serves internally-forged blocks to every sync caller in
  // [2, 9); governor 3 crashes in round 3 and restarts in round 4, so its
  // recovery sync polls the liar among its peers. Governor replicas demand
  // two byte-identical responses per serial before adopting, so the lone
  // forged variant must be rejected and the cluster must fully reconverge
  // (the liar's own chain is honest — it only lies on the wire).
  ScenarioConfig cfg = byz_config(9023);
  adversary::LyingSyncSpec lie;
  lie.from_round = 2;
  lie.until_round = 9;
  lie.governor = 1;
  cfg.adversary.lying_sync_peers = {lie};
  CrashPlan plan;
  plan.governor = 3;
  plan.crash_round = 3;
  plan.crash_offset = 0;
  plan.restart_round = 4;
  cfg.crashes = {plan};
  Scenario s(cfg);
  s.run();

  ASSERT_GT(s.governor(1).metrics().byzantine_lies_served, 0u);
  ASSERT_GT(s.governor(1).metrics().byzantine_lies_to_governors, 0u);
  std::uint64_t rejected = 0;
  for (std::size_t g = 0; g < 4; ++g) {
    if (g == 1) continue;
    rejected += s.governor(g).metrics().lying_sync_rejected;
  }
  EXPECT_GT(rejected, 0u);
  EXPECT_GT(s.summary().byzantine_evidence, 0u);
  // Nothing forged was adopted anywhere: full-cluster agreement holds.
  EXPECT_TRUE(s.summary().agreement);
  EXPECT_TRUE(s.summary().chains_audit_ok);
  EXPECT_GE(s.summary().blocks, 8u);
}

TEST(ByzantineSim, ByzantineCollectorForgeriesAndEquivocationsArePunished) {
  // Collector 1 misbehaves on every axis in [2, 8): flips labels, fabricates
  // uploads with forged provider signatures, and equivocates labels across
  // governors. Signature checks must catch every forgery, label gossip must
  // catch the equivocation, and the reputation table must push its revenue
  // scores below every honest collector's.
  ScenarioConfig cfg = byz_config(9004);
  adversary::ByzantineCollectorSpec c;
  c.from_round = 2;
  c.until_round = 8;
  c.collector = 1;
  c.flip_probability = 0.3;
  c.forge_probability = 0.3;
  c.equivocate = true;
  cfg.adversary.byzantine_collectors = {c};
  Scenario s(cfg);
  s.run();

  const auto& stats = s.collectors()[1].stats();
  ASSERT_GT(stats.forged, 0u);
  ASSERT_GT(stats.equivocated, 0u);
  std::uint64_t forgeries = 0;
  std::uint64_t label_equivs = 0;
  for (std::size_t g = 0; g < 4; ++g) {
    forgeries += s.governor(g).metrics().forgeries_detected;
    label_equivs += s.governor(g).metrics().equivocations_detected;
  }
  EXPECT_GT(forgeries, 0u);
  EXPECT_GT(label_equivs, 0u);
  EXPECT_GT(s.summary().byzantine_evidence, 0u);
  // Punishment: the forge counter went negative, and every honest collector
  // outranks the Byzantine one on misreport score.
  const auto& rep = s.governor(0).reputation();
  EXPECT_LT(rep.forge(CollectorId(1)), 0);
  for (std::uint32_t k = 0; k < 4; ++k) {
    if (k == 1) continue;
    EXPECT_GT(rep.misreport(CollectorId(k)), rep.misreport(CollectorId(1))) << k;
  }
  EXPECT_TRUE(s.summary().agreement);
  EXPECT_EQ(s.summary().blocks, 10u);
}

TEST(ByzantineSim, DoubleSpendingProviderNeverGetsTwinsCommitted) {
  // Provider 4 reuses sequence numbers at rate 0.5 in [2, 9), sending each
  // twin to a disjoint half of its collectors. The governors' per-provider
  // serial guard must flag the reuse, and no (provider, seq) pair may appear
  // twice in the committed chain.
  ScenarioConfig cfg = byz_config(9005);
  adversary::DoubleSpendSpec d;
  d.from_round = 2;
  d.until_round = 9;
  d.provider = 4;
  d.probability = 0.5;
  cfg.adversary.double_spenders = {d};
  Scenario s(cfg);
  s.run();

  ASSERT_GT(s.providers()[4].double_spends_submitted(), 0u);
  std::uint64_t detected = 0;
  for (std::size_t g = 0; g < 4; ++g) {
    detected += s.governor(g).metrics().double_spends_detected;
  }
  EXPECT_GT(detected, 0u);
  EXPECT_GT(s.summary().byzantine_evidence, 0u);
  // Almost No Creation: every (provider, seq) pair committed at most once.
  std::map<std::pair<std::uint32_t, std::uint64_t>, int> seen;
  for (const auto& block : s.governor(0).chain().blocks()) {
    for (const auto& rec : block.txs) {
      const auto key = std::make_pair(rec.tx.provider.value(), rec.tx.seq);
      EXPECT_EQ(++seen[key], 1)
          << "twin committed: provider " << rec.tx.provider.value() << " seq "
          << rec.tx.seq;
    }
  }
  EXPECT_TRUE(s.summary().agreement);
  EXPECT_EQ(s.summary().blocks, 10u);
}

TEST(ByzantineSim, AttackWindowEndRestoresTheBaselineBehavior) {
  // The adversary layer swaps the collector's behavior profile at the window
  // start and restores the configured baseline at the window end: forgeries
  // happen inside [2, 4) and never after.
  ScenarioConfig cfg = byz_config(9006);
  adversary::ByzantineCollectorSpec c;
  c.from_round = 2;
  c.until_round = 4;
  c.collector = 0;
  c.forge_probability = 0.6;
  cfg.adversary.byzantine_collectors = {c};
  Scenario s(cfg);
  for (std::size_t r = 0; r < 3; ++r) s.run_round();  // rounds 1-3 done
  const std::uint64_t forged_in_window = s.collectors()[0].stats().forged;
  ASSERT_GT(forged_in_window, 0u);
  for (std::size_t r = 3; r < cfg.rounds; ++r) s.run_round();

  EXPECT_EQ(s.collectors()[0].stats().forged, forged_in_window);
  EXPECT_TRUE(s.summary().agreement);
  EXPECT_EQ(s.summary().blocks, 10u);
}

TEST(ByzantineSim, EmptyAdversarySpecStaysFullyHonest) {
  // Soundness at the harness level: a default-constructed AdversarySpec must
  // not toggle any defense or inject anything — zero evidence, zero
  // expulsions, no attack counters anywhere.
  Scenario s(byz_config(9007));
  s.run();

  EXPECT_EQ(s.summary().byzantine_evidence, 0u);
  for (std::size_t g = 0; g < 4; ++g) {
    const auto& m = s.governor(g).metrics();
    EXPECT_TRUE(s.governor(g).expelled().empty()) << g;
    EXPECT_EQ(m.byzantine_equivocations_sent, 0u) << g;
    EXPECT_EQ(m.byzantine_lies_served, 0u) << g;
    EXPECT_EQ(m.proposal_equivocations, 0u) << g;
    EXPECT_EQ(m.lying_sync_rejected, 0u) << g;
    EXPECT_EQ(m.double_spends_detected, 0u) << g;
  }
  for (auto& collector : s.collectors()) {
    EXPECT_EQ(collector.stats().forged, 0u);
    EXPECT_EQ(collector.stats().equivocated, 0u);
  }
  EXPECT_TRUE(s.summary().agreement);
  EXPECT_EQ(s.summary().blocks, 10u);
}

}  // namespace
}  // namespace repchain::sim
