// Wire + cluster-packet decoder fuzz: arbitrary byte strings and mutated
// valid encodings must be answered with a coded WireError (or a clean
// decode), never a crash or a foreign exception. A directed sweep then
// asserts coverage of the decoder-reachable slice of the ProtocolError
// enum — every code a byte stream alone can provoke is actually provoked.
// The dialogue-level codes (kUnknownPacket, kBadNodeIndex,
// kUnexpectedPacket, and kWrongGenesis/kHighVersion at admission) are
// asserted by the handshake, transport and cluster test suites instead.
#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "cluster/packets.hpp"
#include "common/errors.hpp"
#include "common/rng.hpp"
#include "crypto/keygen.hpp"
#include "ledger/block.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace repchain {
namespace {

using DecoderFn = std::function<void(BytesView)>;

/// Codes observed across every graceful failure in this binary; the
/// coverage test asserts the decoder-reachable codes all appear.
std::set<wire::ProtocolError>& seen_codes() {
  static std::set<wire::ProtocolError> codes;
  return codes;
}

std::vector<std::pair<const char*, DecoderFn>> decoders() {
  return {
      {"FrameReader",
       [](BytesView d) {
         wire::FrameReader reader(1 << 16);
         std::vector<wire::Frame> frames;
         reader.feed(d, frames);
       }},
      {"decode_message", [](BytesView d) { (void)wire::decode_message(d); }},
      {"decode_trace", [](BytesView d) { (void)wire::decode_trace(d); }},
      {"decode_welcome", [](BytesView d) { (void)wire::decode_welcome(d); }},
      {"decode_error", [](BytesView d) { (void)wire::decode_error(d); }},
      {"decode_effects", [](BytesView d) { (void)cluster::decode_effects(d); }},
      {"decode_state", [](BytesView d) { (void)cluster::decode_state(d); }},
      {"decode_snapshot", [](BytesView d) { (void)cluster::decode_snapshot(d); }},
      {"decode_register_tx",
       [](BytesView d) { (void)cluster::decode_register_tx(d); }},
      {"decode_deliver", [](BytesView d) { (void)cluster::decode_deliver(d); }},
      {"decode_fire_timer",
       [](BytesView d) { (void)cluster::decode_fire_timer(d); }},
      {"decode_arm_round", [](BytesView d) { (void)cluster::decode_arm_round(d); }},
      {"decode_reveal", [](BytesView d) { (void)cluster::decode_reveal(d); }},
      {"decode_shares", [](BytesView d) { (void)cluster::decode_shares(d); }},
      {"decode_txid_list",
       [](BytesView d) { (void)cluster::decode_txid_list(d); }},
  };
}

/// Pass iff the decoder returns or throws a coded WireError. (DecodeError is
/// not acceptable here: the wire layer's contract is that framing problems
/// are always reported with a ProtocolError code.)
void expect_graceful(const char* name, const DecoderFn& fn, BytesView data) {
  try {
    fn(data);
  } catch (const wire::WireError& e) {
    seen_codes().insert(e.code());
  } catch (const std::exception& e) {
    FAIL() << name << " threw non-WireError: " << e.what();
  }
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, RandomBuffersAreHandledGracefully) {
  Rng rng(GetParam() ^ 0x517eULL);
  for (const auto& [name, fn] : decoders()) {
    for (std::size_t size : {0u, 1u, 7u, 32u, 64u, 100u, 300u, 1000u}) {
      for (int i = 0; i < 20; ++i) {
        const Bytes data = rng.bytes(size);
        expect_graceful(name, fn, data);
      }
    }
  }
}

TEST_P(WireFuzz, MutatedValidEncodingsAreHandledGracefully) {
  Rng rng(GetParam() ^ 0xbeefULL);

  runtime::Message msg;
  msg.from = NodeId(1);
  msg.to = NodeId(2);
  msg.kind = runtime::MsgKind::kCollectorUpload;
  msg.payload = rng.bytes(40);
  msg.sent_at = 123;
  msg.delivered_at = 456;
  msg.seq = 3;

  runtime::TraceEvent ev;
  ev.kind = runtime::TraceKind::kProtocolError;
  ev.node = NodeId(4);
  ev.round = 2;

  wire::Welcome welcome;
  welcome.genesis[7] = 0x42;
  welcome.role = wire::Role::kNode;
  welcome.node_index = 1;
  welcome.hosted = {NodeId(9)};

  std::vector<cluster::Effect> effects;
  {
    cluster::Effect send;
    send.kind = cluster::Effect::Kind::kSend;
    send.from = NodeId(1);
    send.payload = rng.bytes(10);
    send.to = {NodeId(2)};
    cluster::Effect multi;
    multi.kind = cluster::Effect::Kind::kMulticast;
    multi.from = NodeId(1);
    multi.payload = rng.bytes(6);
    multi.to = {NodeId(2), NodeId(3)};
    cluster::Effect arm;
    arm.kind = cluster::Effect::Kind::kArmTimer;
    arm.at = 999;
    arm.timer_id = 5;
    cluster::Effect trace;
    trace.kind = cluster::Effect::Kind::kTrace;
    trace.trace = ev;
    effects = {send, multi, arm, trace};
  }

  cluster::GovernorState state;
  state.leader = GovernorId(1);
  state.expected_loss = 0.25;
  state.validations = 7;

  crypto::SigningKey key(crypto::random_seed(rng));
  cluster::GovernorSnapshotData snap;
  {
    ledger::TxRecord rec;
    rec.tx = ledger::make_transaction(ProviderId(1), 1, 1, rng.bytes(8), key);
    snap.blocks.push_back(
        ledger::make_block(1, 1, crypto::Hash256{}, GovernorId(0), {rec}, key));
    snap.expected_loss = 0.5;
  }

  struct Case {
    const char* name;
    Bytes encoding;
    DecoderFn fn;
  };
  const std::vector<Case> cases = {
      {"FrameReader", wire::encode_frame(3, rng.bytes(24)),
       [](BytesView d) {
         wire::FrameReader reader(1 << 16);
         std::vector<wire::Frame> frames;
         reader.feed(d, frames);
       }},
      {"decode_message", wire::encode_message(msg),
       [](BytesView d) { (void)wire::decode_message(d); }},
      {"decode_trace", wire::encode_trace(ev),
       [](BytesView d) { (void)wire::decode_trace(d); }},
      {"decode_welcome", wire::encode_welcome(welcome),
       [](BytesView d) { (void)wire::decode_welcome(d); }},
      {"decode_error",
       wire::encode_error({wire::ProtocolError::kBadPayload, "detail"}),
       [](BytesView d) { (void)wire::decode_error(d); }},
      {"decode_effects", cluster::encode_effects(effects),
       [](BytesView d) { (void)cluster::decode_effects(d); }},
      {"decode_state", cluster::encode_state(state),
       [](BytesView d) { (void)cluster::decode_state(d); }},
      {"decode_snapshot", cluster::encode_snapshot(snap),
       [](BytesView d) { (void)cluster::decode_snapshot(d); }},
      {"decode_deliver", cluster::encode_deliver(77, msg),
       [](BytesView d) { (void)cluster::decode_deliver(d); }},
      {"decode_arm_round", cluster::encode_arm_round({10, 2, 30}),
       [](BytesView d) { (void)cluster::decode_arm_round(d); }},
      {"decode_shares", cluster::encode_shares({{CollectorId(1), 0.5}}),
       [](BytesView d) { (void)cluster::decode_shares(d); }},
  };

  for (const auto& c : cases) {
    for (std::size_t len = 0; len < c.encoding.size(); ++len) {
      expect_graceful(c.name, c.fn, BytesView(c.encoding.data(), len));
    }
    for (int i = 0; i < 200; ++i) {
      Bytes mutated = c.encoding;
      mutated[rng.uniform(mutated.size())] = static_cast<std::uint8_t>(rng.next_u64());
      expect_graceful(c.name, c.fn, mutated);
    }
    for (int i = 0; i < 20; ++i) {
      Bytes extended = c.encoding;
      append(extended, rng.bytes(1 + rng.uniform(16)));
      expect_graceful(c.name, c.fn, extended);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(1, 2, 3, 4, 5));

/// Directed probes: one crafted input per decoder-reachable code, then the
/// coverage assertion over everything the fuzz runs observed.
TEST(WireFuzzCoverage, DecoderReachableCodesAreAllProvoked) {
  auto provoke = [](const DecoderFn& fn, BytesView data) {
    expect_graceful("directed", fn, data);
  };
  const DecoderFn feed = [](BytesView d) {
    wire::FrameReader reader(/*max_payload=*/64);
    std::vector<wire::Frame> frames;
    reader.feed(d, frames);
  };

  Bytes bad_magic = wire::encode_frame(1, Bytes{1, 2});
  bad_magic[0] ^= 0xFF;
  provoke(feed, bad_magic);
  provoke(feed, wire::encode_frame(1, Bytes{1}, wire::kVersionMax + 1));
  provoke(feed, wire::encode_frame(1, Bytes{1}, 0));
  provoke(feed, wire::encode_frame(1, Bytes(65)));  // beyond this reader's 64

  Bytes msg = wire::encode_message({});
  Bytes truncated(msg.begin(), msg.end() - 1);
  provoke([](BytesView d) { (void)wire::decode_message(d); }, truncated);
  Bytes extended = msg;
  extended.push_back(0);
  provoke([](BytesView d) { (void)wire::decode_message(d); }, extended);

  Bytes trace = wire::encode_trace({});
  trace[0] = 200;  // trace kind outside the enum
  provoke([](BytesView d) { (void)wire::decode_trace(d); }, trace);

  Bytes welcome = wire::encode_welcome({});
  welcome[2 + 2 + 32] = 77;  // role byte
  provoke([](BytesView d) { (void)wire::decode_welcome(d); }, welcome);

  // check_welcome is the one decoder-adjacent gate with its own code.
  wire::Welcome foreign;
  foreign.genesis[0] = 1;
  try {
    (void)wire::check_welcome(foreign, crypto::Hash256{});
  } catch (const wire::WireError& e) {
    seen_codes().insert(e.code());
  }

  const std::set<wire::ProtocolError> required = {
      wire::ProtocolError::kBadMagic,        wire::ProtocolError::kHighVersion,
      wire::ProtocolError::kLowVersion,      wire::ProtocolError::kWrongGenesis,
      wire::ProtocolError::kOversizedFrame,  wire::ProtocolError::kTruncatedPayload,
      wire::ProtocolError::kTrailingBytes,   wire::ProtocolError::kBadPayload,
      wire::ProtocolError::kBadRole,
  };
  for (const wire::ProtocolError code : required) {
    EXPECT_TRUE(seen_codes().count(code) == 1)
        << "code never provoked: " << wire::to_string(code);
  }
}

/// The enum's wire stability: every defined code renders a distinct name
/// (a repeated or "invalid" name means a value was reused or skipped).
TEST(WireFuzzCoverage, EveryCodeHasADistinctStableName) {
  std::set<std::string_view> names;
  for (std::size_t v = 0; v < wire::kProtocolErrorCount; ++v) {
    const auto name = wire::to_string(static_cast<wire::ProtocolError>(v));
    EXPECT_NE(name, "invalid") << "unnamed code " << v;
    EXPECT_TRUE(names.insert(name).second) << "duplicate name " << name;
  }
}

}  // namespace
}  // namespace repchain
