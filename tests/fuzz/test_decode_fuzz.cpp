// Robustness sweep: every wire decoder must survive arbitrary byte strings
// by throwing DecodeError (or succeeding), never crashing, looping, or
// throwing anything else. Seeds are parameterized; each seed drives random
// buffers of varied sizes plus mutation fuzz over valid encodings.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <functional>

#include "common/errors.hpp"

#include "common/rng.hpp"
#include "crypto/keygen.hpp"
#include "identity/certificate.hpp"
#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "ledger/transaction.hpp"
#include "protocol/leader_election.hpp"
#include "protocol/messages.hpp"
#include "protocol/stake.hpp"
#include "storage/wal_format.hpp"

namespace repchain {
namespace {

using DecoderFn = std::function<void(BytesView)>;

std::vector<std::pair<const char*, DecoderFn>> decoders() {
  return {
      {"Transaction", [](BytesView d) { (void)ledger::Transaction::decode(d); }},
      {"LabeledTransaction",
       [](BytesView d) { (void)ledger::LabeledTransaction::decode(d); }},
      {"TxRecord", [](BytesView d) { (void)ledger::TxRecord::decode(d); }},
      {"Block", [](BytesView d) { (void)ledger::Block::decode(d); }},
      {"Certificate", [](BytesView d) { (void)identity::Certificate::decode(d); }},
      {"ArgueMsg", [](BytesView d) { (void)protocol::ArgueMsg::decode(d); }},
      {"VrfAnnounceMsg", [](BytesView d) { (void)protocol::VrfAnnounceMsg::decode(d); }},
      {"StakeTxMsg", [](BytesView d) { (void)protocol::StakeTxMsg::decode(d); }},
      {"StateProposalMsg",
       [](BytesView d) { (void)protocol::StateProposalMsg::decode(d); }},
      {"StateSignatureMsg",
       [](BytesView d) { (void)protocol::StateSignatureMsg::decode(d); }},
      {"StateCommitMsg", [](BytesView d) { (void)protocol::StateCommitMsg::decode(d); }},
      {"ExpelMsg", [](BytesView d) { (void)protocol::ExpelMsg::decode(d); }},
      {"StakeLedger", [](BytesView d) { (void)protocol::StakeLedger::decode(d); }},
  };
}

/// Run a decoder on `data`; pass iff it returns or throws DecodeError.
void expect_graceful(const char* name, const DecoderFn& fn, BytesView data) {
  try {
    fn(data);
  } catch (const DecodeError&) {
    // expected failure mode
  } catch (const std::exception& e) {
    FAIL() << name << " threw non-DecodeError: " << e.what();
  }
}

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzz, RandomBuffersAreHandledGracefully) {
  Rng rng(GetParam());
  for (const auto& [name, fn] : decoders()) {
    for (std::size_t size : {0u, 1u, 7u, 32u, 64u, 100u, 300u, 1000u}) {
      for (int i = 0; i < 20; ++i) {
        const Bytes data = rng.bytes(size);
        expect_graceful(name, fn, data);
      }
    }
  }
}

TEST_P(DecodeFuzz, MutatedValidEncodingsAreHandledGracefully) {
  Rng rng(GetParam() ^ 0xf00dULL);
  crypto::SigningKey key(crypto::random_seed(rng));

  const auto tx = ledger::make_transaction(ProviderId(1), 2, 3, rng.bytes(16), key);
  const auto ltx = ledger::make_labeled(tx, ledger::Label::kInvalid, CollectorId(4), key);
  ledger::TxRecord rec;
  rec.tx = tx;
  const auto block =
      ledger::make_block(1, 1, crypto::Hash256{}, GovernorId(0), {rec}, key);
  const auto argue = protocol::make_argue(ProviderId(1), tx, 9, key);
  const auto announce = protocol::make_announcement(3, GovernorId(1), 2, key);
  const auto stake_tx = protocol::make_stake_tx(GovernorId(0), GovernorId(1), 5, 6, key);

  struct Case {
    const char* name;
    Bytes encoding;
    DecoderFn fn;
  };
  const std::vector<Case> cases = {
      {"Transaction", tx.encode(),
       [](BytesView d) { (void)ledger::Transaction::decode(d); }},
      {"LabeledTransaction", ltx.encode(),
       [](BytesView d) { (void)ledger::LabeledTransaction::decode(d); }},
      {"Block", block.encode(), [](BytesView d) { (void)ledger::Block::decode(d); }},
      {"ArgueMsg", argue.encode(),
       [](BytesView d) { (void)protocol::ArgueMsg::decode(d); }},
      {"VrfAnnounceMsg", announce.encode(),
       [](BytesView d) { (void)protocol::VrfAnnounceMsg::decode(d); }},
      {"StakeTxMsg", stake_tx.encode(),
       [](BytesView d) { (void)protocol::StakeTxMsg::decode(d); }},
  };

  for (const auto& c : cases) {
    // Truncations at every prefix length.
    for (std::size_t len = 0; len < c.encoding.size(); ++len) {
      expect_graceful(c.name, c.fn, BytesView(c.encoding.data(), len));
    }
    // Random single-byte corruptions (length fields included).
    for (int i = 0; i < 200; ++i) {
      Bytes mutated = c.encoding;
      mutated[rng.uniform(mutated.size())] = static_cast<std::uint8_t>(rng.next_u64());
      expect_graceful(c.name, c.fn, mutated);
    }
    // Random extensions.
    for (int i = 0; i < 20; ++i) {
      Bytes extended = c.encoding;
      append(extended, rng.bytes(1 + rng.uniform(16)));
      expect_graceful(c.name, c.fn, extended);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(1, 2, 3, 4, 5));

// --- Storage-layer decoders --------------------------------------------------
//
// The WAL scanner and snapshot envelope face bytes that survived a crash, so
// their contract is slightly different from the network decoders: scan_wal
// may *succeed* on arbitrary input (dropping a torn tail) or throw
// ProtocolError on a CRC-mismatching complete frame; decode_snapshot throws
// DecodeError. ChainStore::load reads whole files and rejects with either
// DecodeError (framing) or ProtocolError (chain integrity).

/// Pass iff `fn` returns or throws DecodeError/ProtocolError.
void expect_graceful_storage(const char* name, const std::function<void()>& fn) {
  try {
    fn();
  } catch (const DecodeError&) {
  } catch (const ProtocolError&) {
  } catch (const std::exception& e) {
    FAIL() << name << " threw unexpected exception: " << e.what();
  }
}

class StorageFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StorageFuzz, WalScanHandlesArbitraryBytes) {
  Rng rng(GetParam() ^ 0x3a1ULL);
  for (std::size_t size : {0u, 1u, 7u, 8u, 9u, 32u, 100u, 1000u}) {
    for (int i = 0; i < 50; ++i) {
      const Bytes data = rng.bytes(size);
      expect_graceful_storage("scan_wal", [&] { (void)storage::scan_wal(data); });
    }
  }
}

TEST_P(StorageFuzz, WalScanMutationsOfValidLog) {
  Rng rng(GetParam() ^ 0x3a2ULL);
  Bytes wal;
  for (int i = 0; i < 4; ++i) storage::append_frame(wal, rng.bytes(8 + i * 5));
  for (std::size_t len = 0; len <= wal.size(); ++len) {
    // Truncations must never throw: a cut log is a torn tail, not corruption.
    const BytesView prefix(wal.data(), len);
    const auto scan = storage::scan_wal(prefix);
    EXPECT_LE(scan.clean_bytes, len);
  }
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = wal;
    mutated[rng.uniform(mutated.size())] = static_cast<std::uint8_t>(rng.next_u64());
    expect_graceful_storage("scan_wal", [&] { (void)storage::scan_wal(mutated); });
  }
}

TEST_P(StorageFuzz, SnapshotDecodeHandlesArbitraryAndMutatedBytes) {
  Rng rng(GetParam() ^ 0x3a3ULL);
  for (std::size_t size : {0u, 1u, 24u, 32u, 100u, 1000u}) {
    for (int i = 0; i < 50; ++i) {
      const Bytes data = rng.bytes(size);
      try {
        (void)storage::decode_snapshot(data);
      } catch (const DecodeError&) {
      } catch (const std::exception& e) {
        FAIL() << "decode_snapshot threw non-DecodeError: " << e.what();
      }
    }
  }
  const Bytes image = storage::encode_snapshot(rng.bytes(64));
  for (int i = 0; i < 300; ++i) {
    Bytes mutated = image;
    mutated[rng.uniform(mutated.size())] = static_cast<std::uint8_t>(rng.next_u64());
    expect_graceful_storage("decode_snapshot",
                            [&] { (void)storage::decode_snapshot(mutated); });
  }
}

TEST_P(StorageFuzz, ChainFileLoadHandlesMutations) {
  Rng rng(GetParam() ^ 0x3a4ULL);
  crypto::SigningKey key(crypto::random_seed(rng));
  ledger::ChainStore chain;
  for (BlockSerial s = 1; s <= 2; ++s) {
    ledger::TxRecord rec;
    rec.tx = ledger::make_transaction(ProviderId(1), s, s, rng.bytes(8), key);
    chain.append(ledger::make_block(s, s, chain.head_hash(), GovernorId(0), {rec}, key));
  }
  const auto path = std::filesystem::temp_directory_path() /
                    ("repchain_fuzz_chain_" + std::to_string(GetParam()) + ".bin");
  chain.save(path);
  Bytes bytes;
  {
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  const auto rewrite = [&](const Bytes& data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
  };
  // Truncations (sampled), single-byte corruption, and extensions.
  for (std::size_t len = 0; len < bytes.size(); len += 1 + rng.uniform(9)) {
    rewrite(Bytes(bytes.begin(), bytes.begin() + static_cast<long>(len)));
    expect_graceful_storage("ChainStore::load",
                            [&] { (void)ledger::ChainStore::load(path); });
  }
  for (int i = 0; i < 150; ++i) {
    Bytes mutated = bytes;
    mutated[rng.uniform(mutated.size())] = static_cast<std::uint8_t>(rng.next_u64());
    rewrite(mutated);
    expect_graceful_storage("ChainStore::load",
                            [&] { (void)ledger::ChainStore::load(path); });
  }
  for (int i = 0; i < 20; ++i) {
    Bytes extended = bytes;
    append(extended, rng.bytes(1 + rng.uniform(16)));
    rewrite(extended);
    expect_graceful_storage("ChainStore::load",
                            [&] { (void)ledger::ChainStore::load(path); });
  }
  std::filesystem::remove(path);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace repchain
