// Robustness sweep: every wire decoder must survive arbitrary byte strings
// by throwing DecodeError (or succeeding), never crashing, looping, or
// throwing anything else. Seeds are parameterized; each seed drives random
// buffers of varied sizes plus mutation fuzz over valid encodings.
#include <gtest/gtest.h>

#include <functional>

#include "common/errors.hpp"

#include "common/rng.hpp"
#include "crypto/keygen.hpp"
#include "identity/certificate.hpp"
#include "ledger/block.hpp"
#include "ledger/transaction.hpp"
#include "protocol/leader_election.hpp"
#include "protocol/messages.hpp"
#include "protocol/stake.hpp"

namespace repchain {
namespace {

using DecoderFn = std::function<void(BytesView)>;

std::vector<std::pair<const char*, DecoderFn>> decoders() {
  return {
      {"Transaction", [](BytesView d) { (void)ledger::Transaction::decode(d); }},
      {"LabeledTransaction",
       [](BytesView d) { (void)ledger::LabeledTransaction::decode(d); }},
      {"TxRecord", [](BytesView d) { (void)ledger::TxRecord::decode(d); }},
      {"Block", [](BytesView d) { (void)ledger::Block::decode(d); }},
      {"Certificate", [](BytesView d) { (void)identity::Certificate::decode(d); }},
      {"ArgueMsg", [](BytesView d) { (void)protocol::ArgueMsg::decode(d); }},
      {"VrfAnnounceMsg", [](BytesView d) { (void)protocol::VrfAnnounceMsg::decode(d); }},
      {"StakeTxMsg", [](BytesView d) { (void)protocol::StakeTxMsg::decode(d); }},
      {"StateProposalMsg",
       [](BytesView d) { (void)protocol::StateProposalMsg::decode(d); }},
      {"StateSignatureMsg",
       [](BytesView d) { (void)protocol::StateSignatureMsg::decode(d); }},
      {"StateCommitMsg", [](BytesView d) { (void)protocol::StateCommitMsg::decode(d); }},
      {"ExpelMsg", [](BytesView d) { (void)protocol::ExpelMsg::decode(d); }},
      {"StakeLedger", [](BytesView d) { (void)protocol::StakeLedger::decode(d); }},
  };
}

/// Run a decoder on `data`; pass iff it returns or throws DecodeError.
void expect_graceful(const char* name, const DecoderFn& fn, BytesView data) {
  try {
    fn(data);
  } catch (const DecodeError&) {
    // expected failure mode
  } catch (const std::exception& e) {
    FAIL() << name << " threw non-DecodeError: " << e.what();
  }
}

class DecodeFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecodeFuzz, RandomBuffersAreHandledGracefully) {
  Rng rng(GetParam());
  for (const auto& [name, fn] : decoders()) {
    for (std::size_t size : {0u, 1u, 7u, 32u, 64u, 100u, 300u, 1000u}) {
      for (int i = 0; i < 20; ++i) {
        const Bytes data = rng.bytes(size);
        expect_graceful(name, fn, data);
      }
    }
  }
}

TEST_P(DecodeFuzz, MutatedValidEncodingsAreHandledGracefully) {
  Rng rng(GetParam() ^ 0xf00dULL);
  crypto::SigningKey key(crypto::random_seed(rng));

  const auto tx = ledger::make_transaction(ProviderId(1), 2, 3, rng.bytes(16), key);
  const auto ltx = ledger::make_labeled(tx, ledger::Label::kInvalid, CollectorId(4), key);
  ledger::TxRecord rec;
  rec.tx = tx;
  const auto block =
      ledger::make_block(1, 1, crypto::Hash256{}, GovernorId(0), {rec}, key);
  const auto argue = protocol::make_argue(ProviderId(1), tx, 9, key);
  const auto announce = protocol::make_announcement(3, GovernorId(1), 2, key);
  const auto stake_tx = protocol::make_stake_tx(GovernorId(0), GovernorId(1), 5, 6, key);

  struct Case {
    const char* name;
    Bytes encoding;
    DecoderFn fn;
  };
  const std::vector<Case> cases = {
      {"Transaction", tx.encode(),
       [](BytesView d) { (void)ledger::Transaction::decode(d); }},
      {"LabeledTransaction", ltx.encode(),
       [](BytesView d) { (void)ledger::LabeledTransaction::decode(d); }},
      {"Block", block.encode(), [](BytesView d) { (void)ledger::Block::decode(d); }},
      {"ArgueMsg", argue.encode(),
       [](BytesView d) { (void)protocol::ArgueMsg::decode(d); }},
      {"VrfAnnounceMsg", announce.encode(),
       [](BytesView d) { (void)protocol::VrfAnnounceMsg::decode(d); }},
      {"StakeTxMsg", stake_tx.encode(),
       [](BytesView d) { (void)protocol::StakeTxMsg::decode(d); }},
  };

  for (const auto& c : cases) {
    // Truncations at every prefix length.
    for (std::size_t len = 0; len < c.encoding.size(); ++len) {
      expect_graceful(c.name, c.fn, BytesView(c.encoding.data(), len));
    }
    // Random single-byte corruptions (length fields included).
    for (int i = 0; i < 200; ++i) {
      Bytes mutated = c.encoding;
      mutated[rng.uniform(mutated.size())] = static_cast<std::uint8_t>(rng.next_u64());
      expect_graceful(c.name, c.fn, mutated);
    }
    // Random extensions.
    for (int i = 0; i < 20; ++i) {
      Bytes extended = c.encoding;
      append(extended, rng.bytes(1 + rng.uniform(16)));
      expect_graceful(c.name, c.fn, extended);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecodeFuzz, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace repchain
