#include "identity/identity_manager.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::identity {
namespace {

struct Fixture {
  Fixture() : rng(321), im(crypto::random_seed(rng)) {}

  crypto::SigningKey new_key() { return crypto::SigningKey(crypto::random_seed(rng)); }

  Rng rng;
  IdentityManager im;
};

TEST(Certificate, EncodeDecodeRoundTrip) {
  Fixture f;
  const auto key = f.new_key();
  const Certificate cert = f.im.enroll(NodeId(7), Role::kCollector, key.public_key(), 42);
  const Certificate decoded = Certificate::decode(cert.encode());
  EXPECT_EQ(decoded.subject, NodeId(7));
  EXPECT_EQ(decoded.role, Role::kCollector);
  EXPECT_EQ(decoded.public_key, key.public_key());
  EXPECT_EQ(decoded.issued_at, 42u);
  EXPECT_EQ(decoded.serial, cert.serial);
  EXPECT_EQ(decoded.ca_signature, cert.ca_signature);
}

TEST(Certificate, DecodeRejectsBadRole) {
  Fixture f;
  const auto key = f.new_key();
  Certificate cert = f.im.enroll(NodeId(1), Role::kProvider, key.public_key());
  Bytes enc = cert.encode();
  enc[4] = 99;  // role byte follows the u32 subject
  EXPECT_THROW(Certificate::decode(enc), DecodeError);
}

TEST(Certificate, DecodeRejectsTruncation) {
  Fixture f;
  const auto key = f.new_key();
  const Certificate cert = f.im.enroll(NodeId(1), Role::kProvider, key.public_key());
  Bytes enc = cert.encode();
  enc.pop_back();
  EXPECT_THROW(Certificate::decode(enc), DecodeError);
}

TEST(RoleName, AllRolesNamed) {
  EXPECT_STREQ(role_name(Role::kProvider), "provider");
  EXPECT_STREQ(role_name(Role::kCollector), "collector");
  EXPECT_STREQ(role_name(Role::kGovernor), "governor");
}

TEST(IdentityManager, EnrollAndLookup) {
  Fixture f;
  const auto key = f.new_key();
  f.im.enroll(NodeId(3), Role::kGovernor, key.public_key());
  EXPECT_TRUE(f.im.is_enrolled(NodeId(3)));
  EXPECT_FALSE(f.im.is_enrolled(NodeId(4)));
  EXPECT_EQ(f.im.role_of(NodeId(3)), Role::kGovernor);
  EXPECT_EQ(f.im.role_of(NodeId(4)), std::nullopt);
  EXPECT_EQ(f.im.member_count(), 1u);
}

TEST(IdentityManager, DoubleEnrollThrows) {
  Fixture f;
  const auto key = f.new_key();
  f.im.enroll(NodeId(3), Role::kGovernor, key.public_key());
  EXPECT_THROW(f.im.enroll(NodeId(3), Role::kProvider, key.public_key()), ConfigError);
}

TEST(IdentityManager, CertificateLookupUnknownThrows) {
  Fixture f;
  EXPECT_THROW((void)f.im.certificate(NodeId(9)), ConfigError);
}

TEST(IdentityManager, IssuedCertificateVerifies) {
  Fixture f;
  const auto key = f.new_key();
  const Certificate cert = f.im.enroll(NodeId(5), Role::kCollector, key.public_key());
  EXPECT_TRUE(f.im.verify_certificate(cert));
}

TEST(IdentityManager, TamperedCertificateRejected) {
  Fixture f;
  const auto key = f.new_key();
  Certificate cert = f.im.enroll(NodeId(5), Role::kCollector, key.public_key());
  cert.role = Role::kGovernor;  // privilege escalation attempt
  EXPECT_FALSE(f.im.verify_certificate(cert));
}

TEST(IdentityManager, ForeignCaCertificateRejected) {
  Fixture f;
  Rng rng2(999);
  IdentityManager other(crypto::random_seed(rng2));
  const auto key = f.new_key();
  const Certificate foreign = other.enroll(NodeId(5), Role::kCollector, key.public_key());
  EXPECT_FALSE(f.im.verify_certificate(foreign));
}

TEST(IdentityManager, AuthenticateAcceptsEnrolledSigner) {
  Fixture f;
  const auto key = f.new_key();
  f.im.enroll(NodeId(8), Role::kProvider, key.public_key());
  const Bytes msg = to_bytes("hello governors");
  EXPECT_TRUE(f.im.authenticate(NodeId(8), msg, key.sign(msg)));
}

TEST(IdentityManager, AuthenticateRejectsImpersonation) {
  Fixture f;
  const auto honest = f.new_key();
  const auto attacker = f.new_key();
  f.im.enroll(NodeId(8), Role::kProvider, honest.public_key());
  const Bytes msg = to_bytes("forged message");
  EXPECT_FALSE(f.im.authenticate(NodeId(8), msg, attacker.sign(msg)));
}

TEST(IdentityManager, AuthenticateRejectsUnknownNode) {
  Fixture f;
  const auto key = f.new_key();
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(f.im.authenticate(NodeId(12), msg, key.sign(msg)));
}

TEST(IdentityManager, AuthorizeChecksRole) {
  Fixture f;
  const auto key = f.new_key();
  f.im.enroll(NodeId(2), Role::kCollector, key.public_key());
  const Bytes msg = to_bytes("upload");
  EXPECT_TRUE(f.im.authorize(NodeId(2), Role::kCollector, msg, key.sign(msg)));
  EXPECT_FALSE(f.im.authorize(NodeId(2), Role::kGovernor, msg, key.sign(msg)));
}

TEST(IdentityManager, RevocationBlocksAuthentication) {
  Fixture f;
  const auto key = f.new_key();
  const Certificate cert = f.im.enroll(NodeId(6), Role::kCollector, key.public_key());
  const Bytes msg = to_bytes("m");
  ASSERT_TRUE(f.im.authenticate(NodeId(6), msg, key.sign(msg)));

  f.im.revoke(NodeId(6));
  EXPECT_TRUE(f.im.is_revoked(NodeId(6)));
  EXPECT_FALSE(f.im.authenticate(NodeId(6), msg, key.sign(msg)));
  EXPECT_FALSE(f.im.verify_certificate(cert));
}

TEST(IdentityManager, SerialsAreUnique) {
  Fixture f;
  const Certificate a = f.im.enroll(NodeId(1), Role::kProvider, f.new_key().public_key());
  const Certificate b = f.im.enroll(NodeId(2), Role::kProvider, f.new_key().public_key());
  EXPECT_NE(a.serial, b.serial);
}

}  // namespace
}  // namespace repchain::identity
