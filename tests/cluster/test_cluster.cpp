// In-process cluster harness: NodeHosts served on socketpairs from threads
// stand in for the forked node processes, which lets the lockstep replay be
// asserted byte-for-byte against the simulation inside one test binary, and
// lets the admission failures (wrong genesis, future version, bad role) be
// driven from hand-crafted welcomes.
#include <gtest/gtest.h>

#include <sys/socket.h>

#include <memory>
#include <thread>
#include <vector>

#include "cluster/driver.hpp"
#include "cluster/node_host.hpp"
#include "cluster/sync_conn.hpp"
#include "common/errors.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec_codec.hpp"

namespace repchain::cluster {
namespace {

sim::ScenarioConfig small_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 3;
  cfg.topology.collectors = 2;
  cfg.topology.governors = 2;
  cfg.topology.r = 2;
  cfg.rounds = 2;
  cfg.txs_per_provider_per_round = 1;
  cfg.p_valid = 0.7;
  cfg.audit_probability = 0.5;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.8)};
  cfg.seed = 7;
  return cfg;
}

crypto::Hash256 genesis_of(sim::ScenarioConfig cfg) {
  sim::normalize_config(cfg);
  return sim::config_genesis(cfg);
}

/// One governor "process": a NodeHost served from a thread over a
/// socketpair. Any WireError escaping serve() is recorded for assertions.
struct HostThread {
  HostThread(const sim::ScenarioConfig& config, std::size_t index, int fd)
      : thread([config, index, fd, this] {
          try {
            NodeHost host(config, index);
            host.serve(fd);
          } catch (const wire::WireError& e) {
            error = e.code();
          } catch (const std::exception&) {
            error = wire::ProtocolError::kBadPayload;  // unexpected kind
          }
        }) {}
  ~HostThread() { join(); }

  /// Restarted-process flavor: serve incarnation `incarnation` against the
  /// persisted `dir` (the constructor replays snapshot + WAL before serving).
  HostThread(const sim::ScenarioConfig& config, std::size_t index,
             std::string dir, std::uint32_t incarnation, int fd)
      : thread([config, index, dir = std::move(dir), incarnation, fd, this] {
          try {
            NodeHost host(config, index, dir, incarnation);
            host.serve(fd);
          } catch (const wire::WireError& e) {
            error = e.code();
          } catch (const std::exception&) {
            error = wire::ProtocolError::kBadPayload;  // unexpected kind
          }
        }) {}

  void join() {
    if (thread.joinable()) thread.join();
  }

  std::thread thread;
  wire::ProtocolError error = wire::ProtocolError::kNone;
};

std::pair<int, int> stream_pair() {
  int sv[2];
  EXPECT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  return {sv[0], sv[1]};
}

TEST(Cluster, LockstepReplayMatchesSimulationByteForByte) {
  const sim::ScenarioConfig config = small_config();
  const crypto::Hash256 genesis = genesis_of(config);
  const std::size_t governors = config.topology.governors;

  std::vector<std::unique_ptr<HostThread>> hosts;
  std::vector<std::unique_ptr<SyncConn>> conns(governors);
  const wire::Welcome local = driver_welcome(genesis);
  for (std::size_t i = 0; i < governors; ++i) {
    const auto [driver_fd, node_fd] = stream_pair();
    hosts.push_back(std::make_unique<HostThread>(config, i, node_fd));
    auto conn = std::make_unique<SyncConn>(driver_fd);
    const wire::Welcome remote = handshake(*conn, local, genesis);
    ASSERT_EQ(remote.role, wire::Role::kNode);
    ASSERT_EQ(remote.node_index, i);
    ASSERT_EQ(remote.hosted.size(), 1u);
    conns[remote.node_index] = std::move(conn);
  }

  ClusterRun run(config, std::move(conns));
  const sim::RunResult socketed = run.run();
  const sim::RunResult simulated = sim::simulate_run(config);

  EXPECT_EQ(sim::encode_run_result(socketed), sim::encode_run_result(simulated))
      << "socket replay diverged from the simulation:\n=== simulated ===\n"
      << sim::render_run_result(simulated) << "\n=== socket replay ===\n"
      << sim::render_run_result(socketed);
  for (const auto& host : hosts) {
    EXPECT_EQ(host->error, wire::ProtocolError::kNone);
  }
}

TEST(Cluster, WrongGenesisNodeIsRefusedAtHandshake) {
  const sim::ScenarioConfig config = small_config();
  sim::ScenarioConfig other = config;
  other.seed = 8;  // different chain: different genesis hash
  ASSERT_NE(genesis_of(config), genesis_of(other));

  const auto [driver_fd, node_fd] = stream_pair();
  HostThread host(other, 0, node_fd);
  SyncConn conn(driver_fd);
  const crypto::Hash256 genesis = genesis_of(config);
  try {
    (void)handshake(conn, driver_welcome(genesis), genesis);
    FAIL() << "foreign-genesis node admitted";
  } catch (const wire::WireError& e) {
    EXPECT_EQ(e.code(), wire::ProtocolError::kWrongGenesis);
  }
}

TEST(Cluster, FutureOnlyDriverVersionIsAnsweredWithHighVersionError) {
  const sim::ScenarioConfig config = small_config();
  const auto [driver_fd, node_fd] = stream_pair();
  HostThread host(config, 0, node_fd);

  SyncConn conn(driver_fd);
  wire::Welcome future = driver_welcome(genesis_of(config));
  future.version_min = wire::kVersionMax + 1;
  future.version_max = wire::kVersionMax + 1;
  conn.send_frame(static_cast<std::uint16_t>(wire::PacketType::kWelcome),
                  wire::encode_welcome(future));

  // The node sends its own welcome first, then the admission verdict.
  const wire::Frame their_welcome = conn.recv_frame();
  EXPECT_EQ(their_welcome.type,
            static_cast<std::uint16_t>(wire::PacketType::kWelcome));
  const wire::Frame verdict = conn.recv_frame();
  ASSERT_EQ(verdict.type, static_cast<std::uint16_t>(wire::PacketType::kError));
  EXPECT_EQ(wire::decode_error(verdict.payload).code,
            wire::ProtocolError::kHighVersion);
  host.join();
  EXPECT_EQ(host.error, wire::ProtocolError::kHighVersion);
}

TEST(Cluster, NonDriverPeerIsRefusedWithBadRole) {
  const sim::ScenarioConfig config = small_config();
  const auto [driver_fd, node_fd] = stream_pair();
  HostThread host(config, 0, node_fd);

  SyncConn conn(driver_fd);
  wire::Welcome imposter = driver_welcome(genesis_of(config));
  imposter.role = wire::Role::kPeer;  // a mesh peer, not the cluster driver
  conn.send_frame(static_cast<std::uint16_t>(wire::PacketType::kWelcome),
                  wire::encode_welcome(imposter));

  (void)conn.recv_frame();  // the node's welcome
  const wire::Frame verdict = conn.recv_frame();
  ASSERT_EQ(verdict.type, static_cast<std::uint16_t>(wire::PacketType::kError));
  EXPECT_EQ(wire::decode_error(verdict.payload).code,
            wire::ProtocolError::kBadRole);
  host.join();
  EXPECT_EQ(host.error, wire::ProtocolError::kBadRole);
}

TEST(Cluster, OutOfRangeGovernorIndexIsAConfigError) {
  EXPECT_THROW(NodeHost(small_config(), 99), ConfigError);
}

TEST(Cluster, SyncConnRecvTimeoutIsPeerTimeout) {
  const auto [driver_fd, node_fd] = stream_pair();
  SyncConn conn(driver_fd);
  conn.set_timeout(100'000);  // 100ms deadline on a silent peer
  try {
    (void)conn.recv_frame();
    FAIL() << "recv on a silent peer returned";
  } catch (const wire::WireError& e) {
    EXPECT_EQ(e.code(), wire::ProtocolError::kPeerTimeout);
  }
  ::close(node_fd);
}

TEST(Cluster, HeadInfoCodecRoundTrip) {
  HeadInfo h;
  h.serial = 12;
  h.hash[0] = 0xAA;
  h.hash[31] = 0x55;
  h.committed_txs = 340;
  h.incarnation = 2;
  const HeadInfo d = decode_head(encode_head(h));
  EXPECT_EQ(d.serial, h.serial);
  EXPECT_EQ(d.hash, h.hash);
  EXPECT_EQ(d.committed_txs, h.committed_txs);
  EXPECT_EQ(d.incarnation, h.incarnation);
}

TEST(Cluster, ResyncCodecRoundTrip) {
  EXPECT_EQ(decode_resync(encode_resync(7'654'321)), 7'654'321u);
}

TEST(Cluster, RestartedNodeAnnouncesSessionResume) {
  const sim::ScenarioConfig config = small_config();
  const auto [driver_fd, node_fd] = stream_pair();
  char dir[] = "/tmp/repchain_resume_XXXXXX";
  ASSERT_NE(::mkdtemp(dir), nullptr);

  // Incarnation 1 against an empty store: recovery finds nothing (head
  // serial 0), but the welcome must still announce the returning life.
  wire::ProtocolError error = wire::ProtocolError::kNone;
  std::thread node([&, node_fd] {
    try {
      NodeHost host(config, 0, dir, /*incarnation=*/1);
      host.serve(node_fd);
    } catch (const wire::WireError& e) {
      error = e.code();
    }
  });

  SyncConn conn(driver_fd);
  const wire::Welcome remote =
      handshake(conn, driver_welcome(genesis_of(config)), genesis_of(config));
  EXPECT_TRUE(remote.resume);
  EXPECT_EQ(remote.incarnation, 1u);
  EXPECT_EQ(remote.head_serial, 0u);

  conn.send_frame(static_cast<std::uint16_t>(ClusterPacket::kShutdown), {});
  (void)conn.recv_frame();
  node.join();
  EXPECT_EQ(error, wire::ProtocolError::kNone);
}

TEST(Cluster, CrashPlanParsesCanonicalSpec) {
  CrashPlan plan;
  ASSERT_TRUE(parse_crash_plan("1@2:4", plan));
  EXPECT_EQ(plan.victim, 1u);
  EXPECT_EQ(plan.kill_round, 2u);
  EXPECT_EQ(plan.restart_round, 4u);

  ASSERT_TRUE(parse_crash_plan("12@3:15", plan));
  EXPECT_EQ(plan.victim, 12u);
  EXPECT_EQ(plan.kill_round, 3u);
  EXPECT_EQ(plan.restart_round, 15u);
}

TEST(Cluster, CrashPlanRejectsMalformedSpecs) {
  CrashPlan plan;
  const char* bad[] = {
      "",        "1",      "1@2",    "@2:3",   "1@:3",    "1@2:",
      "x@2:3",   "1@x:3",  "1@2:x",  "1x@2:3", "1@2x:3",  "1@2:3x",
      "1:2@3",   "1@2:3:4x",
      "1@0:3",   // kill round 0: the schedule starts at round 1
      "1@3:3",   // restart not strictly after kill
      "1@3:2",
  };
  for (const char* spec : bad) {
    EXPECT_FALSE(parse_crash_plan(spec, plan)) << "accepted: " << spec;
  }
}

TEST(Cluster, ValidateCrashPlansRejectsInconsistentSchedules) {
  const std::size_t governors = 4;
  const Round rounds = 5;
  const auto plan = [](std::size_t v, Round k, Round r) {
    return CrashPlan{v, k, r};
  };

  // Overlapping multi-victim windows — including quorum-breaking ones — are
  // exactly what the free-running mode exercises; they must validate.
  EXPECT_NO_THROW(validate_crash_plans({plan(1, 2, 4), plan(2, 2, 3)},
                                       governors, rounds));
  EXPECT_NO_THROW(validate_crash_plans({}, governors, rounds));

  EXPECT_THROW(validate_crash_plans({plan(1, 2, 3), plan(1, 4, 5)},
                                    governors, rounds),
               ConfigError);  // same victim scheduled twice
  EXPECT_THROW(validate_crash_plans({plan(4, 2, 3)}, governors, rounds),
               ConfigError);  // victim index out of range
  EXPECT_THROW(validate_crash_plans({plan(0, 0, 2)}, governors, rounds),
               ConfigError);  // kill round 0
  EXPECT_THROW(validate_crash_plans({plan(0, 6, 7)}, governors, rounds),
               ConfigError);  // kill round past the configured rounds
  EXPECT_THROW(validate_crash_plans({plan(0, 3, 3)}, governors, rounds),
               ConfigError);  // restart not strictly after kill
}

TEST(Cluster, MinLiveGovernorsTracksOverlappingWindows) {
  const auto plan = [](std::size_t v, Round k, Round r) {
    return CrashPlan{v, k, r};
  };

  EXPECT_EQ(min_live_governors({}, 4, 5), 4u);

  // One victim down for rounds [1, 2): never below quorum on 3 governors.
  EXPECT_EQ(min_live_governors({plan(0, 1, 2)}, 3, 3), 2u);
  EXPECT_GE(min_live_governors({plan(0, 1, 2)}, 3, 3), election_quorum(3));

  // Two overlapping windows on 4 governors: round 2 has both victims down
  // (2 live < quorum 3), round 3 has victim 2 back but victim 1 still out.
  const std::vector<CrashPlan> overlap = {plan(1, 2, 4), plan(2, 2, 3)};
  EXPECT_EQ(min_live_governors(overlap, 4, 5), 2u);
  EXPECT_LT(min_live_governors(overlap, 4, 5), election_quorum(4));

  // Disjoint windows never stack: one dead at a time.
  const std::vector<CrashPlan> disjoint = {plan(0, 1, 2), plan(1, 3, 4)};
  EXPECT_EQ(min_live_governors(disjoint, 4, 5), 3u);

  EXPECT_EQ(election_quorum(1), 1u);
  EXPECT_EQ(election_quorum(2), 2u);
  EXPECT_EQ(election_quorum(3), 2u);
  EXPECT_EQ(election_quorum(4), 3u);
  EXPECT_EQ(election_quorum(5), 3u);
}

TEST(Cluster, QuorumLossStallsAndRecoversUnderSupervision) {
  // Three governors (quorum 2); both victims die in round 1, leaving a lone
  // survivor below quorum, then return one at a time. The run must record
  // the quorum loss and still converge once the committee is whole again.
  sim::ScenarioConfig config = small_config();
  config.topology.governors = 3;
  config.rounds = 3;
  const crypto::Hash256 genesis = genesis_of(config);
  const std::size_t governors = config.topology.governors;

  const std::vector<CrashPlan> plans = {CrashPlan{1, 1, 2}, CrashPlan{2, 1, 3}};
  validate_crash_plans(plans, governors, config.rounds);
  ASSERT_LT(min_live_governors(plans, governors, config.rounds),
            election_quorum(governors));

  std::vector<std::unique_ptr<HostThread>> hosts;
  std::vector<std::unique_ptr<SyncConn>> conns(governors);
  const wire::Welcome local = driver_welcome(genesis);
  for (std::size_t i = 0; i < governors; ++i) {
    const auto [driver_fd, node_fd] = stream_pair();
    hosts.push_back(std::make_unique<HostThread>(config, i, node_fd));
    auto conn = std::make_unique<SyncConn>(driver_fd);
    const wire::Welcome remote = handshake(*conn, local, genesis);
    ASSERT_EQ(remote.node_index, i);
    conns[remote.node_index] = std::move(conn);
  }

  std::vector<std::string> dirs(governors);
  for (std::size_t i = 0; i < governors; ++i) {
    char dir[] = "/tmp/repchain_quorum_XXXXXX";
    ASSERT_NE(::mkdtemp(dir), nullptr);
    dirs[i] = dir;
  }

  ClusterRun run(config, std::move(conns));
  // Killing here means dropping the driver connection: ClusterRun closes the
  // socket right after this hook, which is what SIGKILLs the hosted thread.
  const auto kill = [](std::size_t) {};
  const auto respawn = [&](std::size_t index, std::uint32_t incarnation) {
    const auto [driver_fd, node_fd] = stream_pair();
    hosts.push_back(std::make_unique<HostThread>(config, index, dirs[index],
                                                 incarnation, node_fd));
    auto conn = std::make_unique<SyncConn>(driver_fd);
    const wire::Welcome remote = handshake(*conn, local, genesis);
    EXPECT_TRUE(remote.resume);
    EXPECT_EQ(remote.incarnation, incarnation);
    return conn;
  };
  run.set_supervision(plans, kill, respawn);

  const ConvergenceReport report = run.run_converge();
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.head_serial, 0u);
  EXPECT_TRUE(report.degradation.quorum_lost);
  EXPECT_EQ(report.degradation.min_live, 1u);
  EXPECT_EQ(report.degradation.last_restart_round, 3u);
  EXPECT_GE(report.restart_attempts, 2u);
  EXPECT_GE(report.converged_round, report.degradation.last_restart_round);
}

}  // namespace
}  // namespace repchain::cluster
