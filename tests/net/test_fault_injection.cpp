// FaultSchedule predicate semantics (half-open windows, probability
// composition) and the FaultyTransport decorator's per-fault behavior over a
// real SimNetwork: partitions sever, losses drop, duplication doubles,
// reordering re-times, delay spikes stretch draws — and everything heals when
// its window closes.
#include "runtime/fault_schedule.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace repchain::net {
namespace {

using runtime::DelayFault;
using runtime::DuplicateFault;
using runtime::FaultSchedule;
using runtime::FaultyTransport;
using runtime::LossFault;
using runtime::PartitionFault;
using runtime::ReorderFault;

TEST(FaultSchedule, PartitionWindowIsHalfOpen) {
  FaultSchedule s;
  s.add(PartitionFault{10, 20, {NodeId(0)}});
  EXPECT_FALSE(s.severed(NodeId(0), NodeId(1), 9));
  EXPECT_TRUE(s.severed(NodeId(0), NodeId(1), 10));
  EXPECT_TRUE(s.severed(NodeId(1), NodeId(0), 19));  // symmetric
  EXPECT_FALSE(s.severed(NodeId(0), NodeId(1), 20));  // healed at `until`
  // Two outsiders are never severed.
  EXPECT_FALSE(s.severed(NodeId(1), NodeId(2), 15));
}

TEST(FaultSchedule, OverlappingLossWindowsCompose) {
  FaultSchedule s;
  s.add(LossFault{0, 100, 0.5, std::nullopt});
  s.add(LossFault{50, 100, 0.5, std::nullopt});
  EXPECT_DOUBLE_EQ(s.loss_probability(NodeId(0), NodeId(1), 10), 0.5);
  EXPECT_DOUBLE_EQ(s.loss_probability(NodeId(0), NodeId(1), 60), 0.75);
  EXPECT_DOUBLE_EQ(s.loss_probability(NodeId(0), NodeId(1), 100), 0.0);
}

TEST(FaultSchedule, LinkScopedLossOnlyHitsItsLink) {
  FaultSchedule s;
  s.add(LossFault{0, 100, 1.0, std::make_pair(NodeId(0), NodeId(1))});
  EXPECT_DOUBLE_EQ(s.loss_probability(NodeId(0), NodeId(1), 10), 1.0);
  EXPECT_DOUBLE_EQ(s.loss_probability(NodeId(1), NodeId(0), 10), 0.0);
  EXPECT_DOUBLE_EQ(s.loss_probability(NodeId(0), NodeId(2), 10), 0.0);
}

TEST(FaultSchedule, DelayExtrasAccumulateAcrossActiveWindows) {
  FaultSchedule s;
  s.add(DelayFault{0, 100, 5, 2});
  s.add(DelayFault{50, 100, 7, 0});
  SimDuration jitter = 0;
  EXPECT_EQ(s.delay_extra_at(10, jitter), 5);
  EXPECT_EQ(jitter, 2);
  jitter = 0;
  EXPECT_EQ(s.delay_extra_at(60, jitter), 12);
  jitter = 0;
  EXPECT_EQ(s.delay_extra_at(100, jitter), 0);
}

// --- Decorator behavior over a live network ---------------------------------

struct FaultNetFixture {
  explicit FaultNetFixture(std::uint64_t seed)
      : net(queue, Rng(seed), LatencyModel{1 * kMillisecond, 10 * kMillisecond}) {
    for (std::size_t i = 0; i < 3; ++i) {
      ids.push_back(net.add_node());
      counts.push_back(0);
      net.set_handler(ids.back(), [this, i](const Message&) { ++counts[i]; });
    }
  }

  EventQueue queue;
  SimNetwork net;
  std::vector<NodeId> ids;
  std::vector<int> counts;
};

TEST(FaultyTransport, PartitionSeversCrossIslandTrafficUntilHealed) {
  FaultNetFixture f(11);
  FaultSchedule sched;
  sched.add(PartitionFault{0, 50 * kMillisecond, {f.ids[0]}});
  FaultyTransport ft(f.net, std::move(sched), Rng(11).derive(7));

  ft.send(f.ids[0], f.ids[1], MsgKind::kTest, Bytes{1});  // severed
  ft.send(f.ids[1], f.ids[0], MsgKind::kTest, Bytes{2});  // severed (symmetric)
  ft.send(f.ids[1], f.ids[2], MsgKind::kTest, Bytes{3});  // outsiders flow
  f.queue.run();
  EXPECT_EQ(f.counts[0], 0);
  EXPECT_EQ(f.counts[1], 0);
  EXPECT_EQ(f.counts[2], 1);
  EXPECT_EQ(ft.stats().partition_drops, 2u);

  f.queue.run_until(50 * kMillisecond);  // window closes
  ft.send(f.ids[0], f.ids[1], MsgKind::kTest, Bytes{4});
  f.queue.run();
  EXPECT_EQ(f.counts[1], 1);
  EXPECT_EQ(ft.stats().partition_drops, 2u);
}

TEST(FaultyTransport, CertainLossDropsEveryMessageInWindow) {
  FaultNetFixture f(12);
  FaultSchedule sched;
  sched.add(LossFault{0, 50 * kMillisecond, 1.0, std::nullopt});
  FaultyTransport ft(f.net, std::move(sched), Rng(12).derive(7));

  ft.send(f.ids[0], f.ids[1], MsgKind::kTest, Bytes{1});
  f.queue.run();
  EXPECT_EQ(f.counts[1], 0);
  EXPECT_EQ(ft.stats().loss_drops, 1u);

  f.queue.run_until(50 * kMillisecond);
  ft.send(f.ids[0], f.ids[1], MsgKind::kTest, Bytes{2});
  f.queue.run();
  EXPECT_EQ(f.counts[1], 1);
}

TEST(FaultyTransport, DuplicationDeliversTheUnicastTwice) {
  FaultNetFixture f(13);
  FaultSchedule sched;
  sched.add(DuplicateFault{0, 50 * kMillisecond, 1.0});
  FaultyTransport ft(f.net, std::move(sched), Rng(13).derive(7));

  ft.send(f.ids[0], f.ids[1], MsgKind::kTest, Bytes{1});
  f.queue.run();
  EXPECT_EQ(f.counts[1], 2);  // seq == 0: the network-level guard must not apply
  EXPECT_EQ(ft.stats().duplicated, 1u);
}

TEST(FaultyTransport, ReorderHoldsTheMessageBackButStillDeliversOnce) {
  FaultNetFixture f(14);
  FaultSchedule sched;
  sched.add(ReorderFault{0, 50 * kMillisecond, 1.0, 20 * kMillisecond});
  FaultyTransport ft(f.net, std::move(sched), Rng(14).derive(7));

  ft.send(f.ids[0], f.ids[1], MsgKind::kTest, Bytes{1});
  f.queue.run();
  EXPECT_EQ(f.counts[1], 1);
  EXPECT_EQ(ft.stats().reordered, 1u);
}

TEST(FaultyTransport, DelaySpikeStretchesDrawsOnlyInsideItsWindow) {
  FaultNetFixture f(15);
  FaultSchedule sched;
  sched.add(DelayFault{0, 50 * kMillisecond, 25 * kMillisecond, 0});
  FaultyTransport ft(f.net, std::move(sched), Rng(15).derive(7));

  const SimDuration spiked = ft.draw_delay();
  EXPECT_GE(spiked, 26 * kMillisecond);  // inner [1, 10]ms + 25ms extra
  EXPECT_LE(spiked, 35 * kMillisecond);
  EXPECT_EQ(ft.stats().delay_extended, 1u);

  f.queue.run_until(50 * kMillisecond);
  const SimDuration normal = ft.draw_delay();
  EXPECT_LE(normal, 10 * kMillisecond);
  EXPECT_EQ(ft.stats().delay_extended, 1u);
}

TEST(FaultyTransport, DuplicatedSequencedDeliveryIsAbsorbedByTheSeqGuard) {
  // The atomic-broadcast path: a duplicated deliver_direct of a sequenced
  // copy reaches the network twice but the per-link guard eats the replay.
  FaultNetFixture f(16);
  FaultSchedule sched;
  sched.add(DuplicateFault{0, 50 * kMillisecond, 1.0});
  FaultyTransport ft(f.net, std::move(sched), Rng(16).derive(7));

  Message msg;
  msg.from = f.ids[0];
  msg.to = f.ids[1];
  msg.kind = MsgKind::kTest;
  msg.payload = Bytes{1};
  msg.seq = 1;
  ft.deliver_direct(msg);
  EXPECT_EQ(f.counts[1], 1);
  EXPECT_EQ(ft.stats().duplicated, 1u);
  EXPECT_EQ(f.net.stats().duplicates_ignored, 1u);
}

TEST(FaultyTransport, SelfDeliveryBypassesAllFaults) {
  // Loopback (from == to) is the node talking to itself; faulting it would
  // desync a node from its own state machine.
  FaultNetFixture f(17);
  FaultSchedule sched;
  sched.add(LossFault{0, 50 * kMillisecond, 1.0, std::nullopt});
  sched.add(PartitionFault{0, 50 * kMillisecond, {f.ids[0]}});
  FaultyTransport ft(f.net, std::move(sched), Rng(17).derive(7));

  ft.send(f.ids[0], f.ids[0], MsgKind::kTest, Bytes{1});
  f.queue.run();
  EXPECT_EQ(f.counts[0], 1);
  EXPECT_EQ(ft.stats().loss_drops, 0u);
  EXPECT_EQ(ft.stats().partition_drops, 0u);
}

}  // namespace
}  // namespace repchain::net
