// Fault-injection coverage of SimNetwork exercised through the
// runtime::Transport interface — the surface the protocol nodes are written
// against — plus the EventQueue::run_until boundary semantics the
// timer-driven rounds rely on.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace repchain::net {
namespace {

struct FaultFixture : ::testing::Test {
  FaultFixture()
      : net(queue, Rng(7), LatencyModel{1 * kMillisecond, 5 * kMillisecond}) {
    a = net.add_node();
    b = net.add_node();
    net.set_handler(a, [this](const Message& m) { at_a.push_back(m); });
    net.set_handler(b, [this](const Message& m) { at_b.push_back(m); });
  }

  // All interaction goes through the abstract interface, like a protocol
  // node would.
  runtime::Transport& transport() { return net; }

  EventQueue queue;
  SimNetwork net;
  NodeId a, b;
  std::vector<Message> at_a, at_b;
};

TEST_F(FaultFixture, DownSenderDropsAtSendTime) {
  net.set_node_down(a, true);
  transport().send(a, b, MsgKind::kTest, Bytes{1});
  queue.run();
  EXPECT_TRUE(at_b.empty());
  // The send is still counted (the node spent the bandwidth), then dropped.
  EXPECT_EQ(net.stats().messages_sent, 1u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST_F(FaultFixture, DownReceiverDropsAtSendTime) {
  net.set_node_down(b, true);
  transport().send(a, b, MsgKind::kTest, Bytes{1});
  queue.run();
  EXPECT_TRUE(at_b.empty());
  EXPECT_EQ(net.stats().messages_dropped, 1u);
}

TEST_F(FaultFixture, ReceiverCrashingMidFlightLosesTheDelivery) {
  // The message leaves the (healthy) sender, then the receiver goes down
  // before the delay elapses: the delivery is suppressed at handler time.
  transport().send(a, b, MsgKind::kTest, Bytes{1});
  net.set_node_down(b, true);
  queue.run();
  EXPECT_TRUE(at_b.empty());
  EXPECT_EQ(net.stats().messages_dropped, 0u);  // it was sent, just unheard

  // Recovery: later sends get through again.
  net.set_node_down(b, false);
  transport().send(a, b, MsgKind::kTest, Bytes{2});
  queue.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].payload, Bytes{2});
}

TEST_F(FaultFixture, DeliverDirectRespectsDownedPeers) {
  Message msg;
  msg.from = a;
  msg.to = b;
  msg.kind = MsgKind::kTest;
  msg.payload = Bytes{9};

  net.set_node_down(b, true);
  transport().deliver_direct(msg);
  EXPECT_TRUE(at_b.empty());

  net.set_node_down(b, false);
  net.set_node_down(a, true);  // a crashed sender's queued copies die too
  transport().deliver_direct(msg);
  EXPECT_TRUE(at_b.empty());

  net.set_node_down(a, false);
  transport().deliver_direct(msg);
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_EQ(at_b[0].payload, Bytes{9});
}

TEST_F(FaultFixture, MulticastCountsAndDropsPerCopy) {
  net.set_node_down(b, true);
  const std::vector<NodeId> dests{a, b};
  transport().multicast(a, dests, MsgKind::kTest, Bytes{3});
  queue.run();
  EXPECT_EQ(net.stats().messages_sent, 2u);
  EXPECT_EQ(net.stats().messages_dropped, 1u);
  EXPECT_EQ(at_a.size(), 1u);  // self-copy still delivered
  EXPECT_TRUE(at_b.empty());
}

TEST_F(FaultFixture, DeliveryHonorsTheSynchronyBound) {
  transport().send(a, b, MsgKind::kTest, Bytes{1});
  const SimTime sent = queue.now();
  queue.run();
  ASSERT_EQ(at_b.size(), 1u);
  EXPECT_LE(at_b[0].delivered_at - sent, transport().max_delay());
}

TEST(EventQueueBoundary, RunUntilIsInclusiveAndAdvancesTheClock) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule_at(100, [&] { fired.push_back(1); });
  q.schedule_at(101, [&] { fired.push_back(2); });

  // Events at exactly `until` fire: deadlines armed for t run when the clock
  // reaches t, not one tick later.
  q.run_until(100);
  EXPECT_EQ(fired, (std::vector<int>{1}));
  EXPECT_EQ(q.now(), 100u);

  // An idle queue still advances the clock to `until`.
  q.run_until(50);  // until < now: no-op, time never goes backwards
  EXPECT_EQ(q.now(), 100u);
  q.run_until(200);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_EQ(q.now(), 200u);
}

TEST(EventQueueBoundary, EqualTimeEventsFireInSchedulingOrder) {
  // The FIFO tie-break is what makes arming node timers in node order
  // deterministic; pin it.
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    q.schedule_at(10, [&fired, i] { fired.push_back(i); });
  }
  q.run_until(10);
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

}  // namespace
}  // namespace repchain::net
