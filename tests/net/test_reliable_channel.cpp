// ReliableChannel unit tests over a real SimNetwork: ack clears the
// in-flight entry, loss triggers retransmission with backoff, redelivery is
// deduplicated (and re-acked), epochs separate incarnations, and the retry
// budget bounds the effort spent on an unreachable peer.
#include "runtime/reliable_channel.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"
#include "runtime/node_context.hpp"

namespace repchain::net {
namespace {

using runtime::Message;
using runtime::ReliableChannel;
using runtime::ReliableChannelConfig;

struct ChannelFixture {
  explicit ChannelFixture(std::uint64_t seed, ReliableChannelConfig cfg = {})
      : net(queue, Rng(seed), LatencyModel{1 * kMillisecond, 10 * kMillisecond}),
        a_id(net.add_node()),
        b_id(net.add_node()),
        a_ctx(a_id, net, Rng(seed).derive(1)),
        b_ctx(b_id, net, Rng(seed).derive(2)),
        a(a_ctx, /*epoch=*/0, cfg),
        b(b_ctx, /*epoch=*/0, cfg) {
    net.set_handler(a_id, [this](const Message& m) { a.on_message(m); });
    net.set_handler(b_id, [this](const Message& m) { b.on_message(m); });
    a.set_deliver([this](const Message& m) { a_delivered.push_back(m); });
    b.set_deliver([this](const Message& m) { b_delivered.push_back(m); });
  }

  EventQueue queue;
  SimNetwork net;
  NodeId a_id;
  NodeId b_id;
  runtime::NodeContext a_ctx;
  runtime::NodeContext b_ctx;
  ReliableChannel a;
  ReliableChannel b;
  std::vector<Message> a_delivered;
  std::vector<Message> b_delivered;
};

TEST(ReliableChannel, AckClearsInFlightWithoutRetransmission) {
  ChannelFixture f(1);
  f.a.send(f.b_id, MsgKind::kTest, Bytes{1, 2, 3});
  EXPECT_EQ(f.a.in_flight(), 1u);
  f.queue.run();

  ASSERT_EQ(f.b_delivered.size(), 1u);
  EXPECT_EQ(f.b_delivered[0].kind, MsgKind::kTest);
  EXPECT_EQ(f.b_delivered[0].payload, (Bytes{1, 2, 3}));
  EXPECT_EQ(f.b_delivered[0].from, f.a_id);
  EXPECT_EQ(f.b_delivered[0].to, f.b_id);
  EXPECT_EQ(f.a.in_flight(), 0u);
  EXPECT_EQ(f.a.stats().data_sent, 1u);
  EXPECT_EQ(f.a.stats().acks_received, 1u);
  EXPECT_EQ(f.a.stats().retransmits, 0u);  // ack landed before the RTO
  EXPECT_EQ(f.b.stats().delivered, 1u);
  EXPECT_EQ(f.b.stats().acks_sent, 1u);
}

TEST(ReliableChannel, RetransmitsThroughLossUntilDelivered) {
  ChannelFixture f(2);
  // Base RTO = 3 * Delta = 30ms. Black-hole the data direction long enough
  // for at least one retransmission, then heal the link.
  f.net.set_drop_probability(f.a_id, f.b_id, 1.0);
  f.a.send(f.b_id, MsgKind::kTest, Bytes{7});
  f.queue.run_until(40 * kMillisecond);
  EXPECT_EQ(f.b_delivered.size(), 0u);
  EXPECT_GE(f.a.stats().retransmits, 1u);
  EXPECT_EQ(f.a.in_flight(), 1u);

  f.net.set_drop_probability(f.a_id, f.b_id, 0.0);
  f.queue.run();
  ASSERT_EQ(f.b_delivered.size(), 1u);
  EXPECT_EQ(f.a.in_flight(), 0u);
  EXPECT_EQ(f.a.stats().acks_received, 1u);
  EXPECT_EQ(f.a.stats().exhausted, 0u);
}

TEST(ReliableChannel, RedeliveryIsDeduplicatedAndReAcked) {
  ChannelFixture f(3);
  // Tap the wire so the test can replay the exact envelope later.
  Message captured;
  f.net.set_handler(f.b_id, [&](const Message& m) {
    if (m.kind == MsgKind::kReliableData) captured = m;
    f.b.on_message(m);
  });
  f.a.send(f.b_id, MsgKind::kTest, Bytes{4});
  f.queue.run();
  ASSERT_EQ(f.b_delivered.size(), 1u);
  ASSERT_EQ(captured.kind, MsgKind::kReliableData);

  // A retransmitted copy arriving after the ack was lost: dropped as a
  // duplicate but acked again so the sender stops retrying.
  f.b.on_message(captured);
  EXPECT_EQ(f.b_delivered.size(), 1u);
  EXPECT_EQ(f.b.stats().duplicates_dropped, 1u);
  EXPECT_EQ(f.b.stats().acks_sent, 2u);
  // The stale ack finds nothing in flight at the sender.
  f.queue.run();
  EXPECT_EQ(f.a.stats().acks_received, 1u);
}

TEST(ReliableChannel, OutOfOrderFreshSequencesDeliverExactlyOnce) {
  ChannelFixture f(4);
  // Capture the wire messages instead of delivering them, then replay out of
  // order with duplicates interleaved.
  std::vector<Message> wire;
  f.net.set_handler(f.b_id, [&](const Message& m) {
    if (m.kind == MsgKind::kReliableData) wire.push_back(m);
  });
  f.a.send(f.b_id, MsgKind::kTest, Bytes{1});
  f.a.send(f.b_id, MsgKind::kTest, Bytes{2});
  f.a.send(f.b_id, MsgKind::kTest, Bytes{3});
  f.queue.run_until(15 * kMillisecond);  // before the first RTO fires
  ASSERT_EQ(wire.size(), 3u);

  f.b.on_message(wire[2]);
  f.b.on_message(wire[0]);
  f.b.on_message(wire[2]);  // duplicate of an above-high sequence
  f.b.on_message(wire[1]);
  f.b.on_message(wire[0]);  // duplicate below the high-water mark
  EXPECT_EQ(f.b_delivered.size(), 3u);
  EXPECT_EQ(f.b.stats().duplicates_dropped, 2u);
}

TEST(ReliableChannel, EpochSeparatesIncarnations) {
  ChannelFixture f(5);
  f.a.send(f.b_id, MsgKind::kTest, Bytes{1});
  f.queue.run();
  ASSERT_EQ(f.b_delivered.size(), 1u);

  // A restart without an epoch bump collides with the old sequence space:
  // the new life's first message (epoch 0, seq 1) reads as a replay.
  runtime::NodeContext a2_ctx(f.a_id, f.net, Rng(77));
  ReliableChannel stale(a2_ctx, /*epoch=*/0);
  f.net.set_handler(f.a_id, [&](const Message& m) { stale.on_message(m); });
  stale.send(f.b_id, MsgKind::kTest, Bytes{2});
  f.queue.run();
  EXPECT_EQ(f.b_delivered.size(), 1u);
  EXPECT_EQ(f.b.stats().duplicates_dropped, 1u);

  // With the epoch bumped, the same sequence number is fresh traffic.
  ReliableChannel fresh(a2_ctx, /*epoch=*/1);
  f.net.set_handler(f.a_id, [&](const Message& m) { fresh.on_message(m); });
  fresh.send(f.b_id, MsgKind::kTest, Bytes{3});
  f.queue.run();
  EXPECT_EQ(f.b_delivered.size(), 2u);
  EXPECT_EQ(f.b_delivered.back().payload, Bytes{3});
}

TEST(ReliableChannel, SupersededEpochStateIsAgedOutAndStragglersDropped) {
  // Receiver-side dedup memory is bounded by epoch aging: a sender's newer
  // incarnation supersedes every older one, dropping the old epoch's dedup
  // state, and stragglers from a superseded epoch are discarded (but still
  // acked, so a zombie retransmitter goes quiet) instead of consuming the
  // fresh epoch's sequence space.
  ChannelFixture f(8);
  // Tap the wire so an old-epoch envelope can be replayed later.
  Message old_epoch_wire;
  f.net.set_handler(f.b_id, [&](const Message& m) {
    // Capture only the first data envelope (the epoch-0 one).
    if (m.kind == MsgKind::kReliableData &&
        old_epoch_wire.kind != MsgKind::kReliableData) {
      old_epoch_wire = m;
    }
    f.b.on_message(m);
  });
  f.a.send(f.b_id, MsgKind::kTest, Bytes{1});
  f.queue.run();
  ASSERT_EQ(f.b_delivered.size(), 1u);
  ASSERT_EQ(old_epoch_wire.kind, MsgKind::kReliableData);

  // The sender restarts with a bumped epoch: its first message supersedes
  // epoch 0 at the receiver.
  runtime::NodeContext a2_ctx(f.a_id, f.net, Rng(88));
  ReliableChannel reborn(a2_ctx, /*epoch=*/1);
  f.net.set_handler(f.a_id, [&](const Message& m) { reborn.on_message(m); });
  reborn.send(f.b_id, MsgKind::kTest, Bytes{2});
  f.queue.run();
  ASSERT_EQ(f.b_delivered.size(), 2u);
  EXPECT_EQ(f.b.stats().stale_epochs_dropped, 0u);

  // A late retransmission from the dead epoch-0 incarnation: dropped as
  // stale (NOT as a duplicate — that dedup state is gone), yet still acked.
  const auto acks_before = f.b.stats().acks_sent;
  f.b.on_message(old_epoch_wire);
  EXPECT_EQ(f.b_delivered.size(), 2u);
  EXPECT_EQ(f.b.stats().stale_epochs_dropped, 1u);
  EXPECT_EQ(f.b.stats().duplicates_dropped, 0u);
  EXPECT_EQ(f.b.stats().acks_sent, acks_before + 1);

  // Epoch 1's sequence space is untouched by the straggler: the next fresh
  // message (same seq number as the straggler carried) still delivers.
  reborn.send(f.b_id, MsgKind::kTest, Bytes{3});
  f.queue.run();
  EXPECT_EQ(f.b_delivered.size(), 3u);
  EXPECT_EQ(f.b_delivered.back().payload, Bytes{3});
}

TEST(ReliableChannel, RetryBudgetBoundsEffortOnUnreachablePeer) {
  ChannelFixture f(6);
  f.net.set_drop_probability(f.a_id, f.b_id, 1.0);  // peer never reachable
  f.a.send(f.b_id, MsgKind::kTest, Bytes{9});
  f.queue.run();

  EXPECT_EQ(f.b_delivered.size(), 0u);
  EXPECT_EQ(f.a.stats().retransmits, 8u);  // default max_retries
  EXPECT_EQ(f.a.stats().exhausted, 1u);
  EXPECT_EQ(f.a.in_flight(), 0u);  // abandoned, not leaked
}

TEST(ReliableChannel, NonChannelKindsAreNotConsumed) {
  ChannelFixture f(7);
  Message other;
  other.from = f.a_id;
  other.to = f.b_id;
  other.kind = MsgKind::kBlockRequest;
  EXPECT_FALSE(f.b.on_message(other));
  EXPECT_EQ(f.b.stats().delivered, 0u);
}

}  // namespace
}  // namespace repchain::net
