#include "runtime/atomic_broadcast.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "net/network.hpp"

namespace repchain::net {
namespace {

using runtime::AtomicBroadcastGroup;

struct GroupFixture {
  explicit GroupFixture(std::uint64_t seed, std::size_t members)
      : net(queue, Rng(seed), LatencyModel{1 * kMillisecond, 20 * kMillisecond}) {
    for (std::size_t i = 0; i < members; ++i) {
      const NodeId id = net.add_node();
      member_ids.push_back(id);
      net.set_handler(id, [this, i](const Message& m) {
        received[i].push_back(m.payload);
      });
      received.emplace_back();
    }
    group = std::make_unique<AtomicBroadcastGroup>(net, member_ids);
  }

  EventQueue queue;
  SimNetwork net;
  std::vector<NodeId> member_ids;
  std::vector<std::vector<Bytes>> received;
  std::unique_ptr<AtomicBroadcastGroup> group;
};

TEST(AtomicBroadcast, AllMembersReceiveEveryBroadcast) {
  GroupFixture f(1, 4);
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{1});
  f.group->broadcast(f.member_ids[1], MsgKind::kTest, Bytes{2});
  f.queue.run();
  for (const auto& log : f.received) {
    EXPECT_EQ(log.size(), 2u);
  }
}

TEST(AtomicBroadcast, EmptyGroupRejected) {
  EventQueue q;
  SimNetwork net(q, Rng(1), LatencyModel{});
  EXPECT_THROW(AtomicBroadcastGroup(net, {}), ConfigError);
}

TEST(AtomicBroadcast, SenderAlsoDeliversToItself) {
  GroupFixture f(2, 3);
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{42});
  f.queue.run();
  EXPECT_EQ(f.received[0].size(), 1u);
}

class AtomicBroadcastOrder : public ::testing::TestWithParam<std::uint64_t> {};

// The core total-order property: every member observes the same delivery
// order regardless of per-copy link delays. Runs over many seeds to exercise
// delay permutations that would reorder plain unicasts.
TEST_P(AtomicBroadcastOrder, AllMembersSeeSameOrder) {
  GroupFixture f(GetParam(), 5);
  // Interleave broadcasts from every member, including bursts at equal times.
  for (std::uint8_t round = 0; round < 20; ++round) {
    for (std::size_t sender = 0; sender < f.member_ids.size(); ++sender) {
      f.group->broadcast(f.member_ids[sender], MsgKind::kTest,
                         Bytes{round, static_cast<std::uint8_t>(sender)});
    }
    f.queue.run_until(f.queue.now() + 3 * kMillisecond);
  }
  f.queue.run();

  for (std::size_t i = 1; i < f.received.size(); ++i) {
    EXPECT_EQ(f.received[i], f.received[0]) << "member " << i << " diverged";
  }
  EXPECT_EQ(f.received[0].size(), 100u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AtomicBroadcastOrder,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

TEST(AtomicBroadcast, NonMemberSenderStillReachesGroup) {
  // A provider broadcasting to its collectors is not itself a member.
  EventQueue queue;
  SimNetwork net(queue, Rng(9), LatencyModel{1, 10});
  const NodeId outsider = net.add_node();
  std::vector<NodeId> members;
  std::vector<int> counts(3, 0);
  for (int i = 0; i < 3; ++i) {
    const NodeId id = net.add_node();
    members.push_back(id);
    net.set_handler(id, [&counts, i](const Message&) { ++counts[i]; });
  }
  AtomicBroadcastGroup group(net, members);
  group.broadcast(outsider, MsgKind::kProviderTx, Bytes{7});
  queue.run();
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(AtomicBroadcast, StatsCountPerMemberCopies) {
  GroupFixture f(3, 4);
  f.net.reset_stats();
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes(10));
  f.queue.run();
  EXPECT_EQ(f.net.stats().messages_sent, 4u);
  EXPECT_EQ(f.net.stats().bytes_sent, 40u);
}

TEST(AtomicBroadcast, SequenceAdvances) {
  GroupFixture f(4, 2);
  EXPECT_EQ(f.group->sequence(), 0u);
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{});
  f.group->broadcast(f.member_ids[1], MsgKind::kTest, Bytes{});
  EXPECT_EQ(f.group->sequence(), 2u);
}

TEST(AtomicBroadcast, DeliveryWithinSynchronyBoundPerBroadcast) {
  // Each copy's raw link delay is bounded; queuing for order can add at most
  // the backlog of earlier broadcasts, which for spaced broadcasts is zero.
  EventQueue queue;
  SimNetwork net(queue, Rng(10), LatencyModel{1 * kMillisecond, 5 * kMillisecond});
  const NodeId member = net.add_node();
  std::vector<SimTime> delivered;
  net.set_handler(member, [&](const Message& m) { delivered.push_back(m.delivered_at); });
  AtomicBroadcastGroup group(net, {member});
  for (int i = 0; i < 10; ++i) {
    const SimTime sent = queue.now();
    group.broadcast(member, MsgKind::kTest, Bytes{});
    queue.run();
    ASSERT_EQ(delivered.size(), static_cast<std::size_t>(i + 1));
    EXPECT_LE(delivered.back() - sent, 5 * kMillisecond);
    EXPECT_GE(delivered.back() - sent, 1 * kMillisecond);
  }
}

TEST(AtomicBroadcast, RedeliveredSequencedCopyIsSuppressed) {
  // Regression: fault-injected duplication replays an already-delivered
  // broadcast copy through deliver_direct. The per-link sequence guard must
  // swallow it instead of handing the handler a second delivery.
  GroupFixture f(7, 3);
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{9});
  f.queue.run();
  for (const auto& log : f.received) ASSERT_EQ(log.size(), 1u);

  Message dup;
  dup.from = f.member_ids[0];
  dup.to = f.member_ids[1];
  dup.kind = MsgKind::kTest;
  dup.payload = Bytes{9};
  dup.seq = f.group->sequence();  // already delivered on this link
  f.net.deliver_direct(dup);
  EXPECT_EQ(f.received[1].size(), 1u);
  EXPECT_EQ(f.net.stats().duplicates_ignored, 1u);

  // A fresh sequence on the same link still goes through.
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{10});
  f.queue.run();
  EXPECT_EQ(f.received[1].size(), 2u);
}

TEST(AtomicBroadcast, UnsequencedDirectDeliveriesAreNeverDeduplicated) {
  // seq == 0 marks a plain unicast; the guard must not apply (two identical
  // unsequenced messages are legitimate traffic, e.g. repeated requests).
  GroupFixture f(8, 2);
  Message msg;
  msg.from = f.member_ids[0];
  msg.to = f.member_ids[1];
  msg.kind = MsgKind::kTest;
  msg.payload = Bytes{1};
  f.net.deliver_direct(msg);
  f.net.deliver_direct(msg);
  EXPECT_EQ(f.received[1].size(), 2u);
  EXPECT_EQ(f.net.stats().duplicates_ignored, 0u);
}

TEST(AtomicBroadcast, DownMemberMissesDeliveriesOthersUnaffected) {
  GroupFixture f(6, 4);
  f.net.set_node_down(f.member_ids[2], true);
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{1});
  f.group->broadcast(f.member_ids[1], MsgKind::kTest, Bytes{2});
  f.queue.run();
  EXPECT_EQ(f.received[0].size(), 2u);
  EXPECT_EQ(f.received[1].size(), 2u);
  EXPECT_EQ(f.received[2].size(), 0u);  // crashed member hears nothing
  EXPECT_EQ(f.received[3].size(), 2u);
  // Recovery: deliveries resume (no replay of missed ones — the primitive is
  // not a durable log; catch-up is the application's job, e.g. retrieve(s)).
  f.net.set_node_down(f.member_ids[2], false);
  f.group->broadcast(f.member_ids[0], MsgKind::kTest, Bytes{3});
  f.queue.run();
  EXPECT_EQ(f.received[2].size(), 1u);
}

}  // namespace
}  // namespace repchain::net
