#include "net/event_queue.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace repchain::net {
namespace {

TEST(EventQueue, StartsEmptyAtTimeZero) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.now(), 0u);
  EXPECT_EQ(q.run(), 0u);
}

TEST(EventQueue, EventsFireInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule_at(30, [&] { order.push_back(3); });
  q.schedule_at(10, [&] { order.push_back(1); });
  q.schedule_at(20, [&] { order.push_back(2); });
  EXPECT_EQ(q.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), 30u);
}

TEST(EventQueue, EqualTimesFireFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    q.schedule_at(5, [&order, i] { order.push_back(i); });
  }
  q.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue q;
  std::vector<SimTime> fired;
  q.schedule_at(10, [&] {
    fired.push_back(q.now());
    q.schedule_after(5, [&] { fired.push_back(q.now()); });
  });
  q.run();
  EXPECT_EQ(fired, (std::vector<SimTime>{10, 15}));
}

TEST(EventQueue, SchedulingInPastThrows) {
  EventQueue q;
  q.schedule_at(100, [] {});
  q.run();
  EXPECT_THROW(q.schedule_at(50, [] {}), NetError);
}

TEST(EventQueue, RunMaxEventsStopsEarly) {
  EventQueue q;
  int count = 0;
  for (int i = 0; i < 10; ++i) q.schedule_at(i, [&] { ++count; });
  EXPECT_EQ(q.run(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_EQ(q.pending(), 6u);
  q.run();
  EXPECT_EQ(count, 10);
}

TEST(EventQueue, RunUntilRespectsBoundaryInclusive) {
  EventQueue q;
  std::vector<SimTime> fired;
  for (SimTime t : {5u, 10u, 15u, 20u}) {
    q.schedule_at(t, [&fired, &q] { fired.push_back(q.now()); });
  }
  q.run_until(10);
  EXPECT_EQ(fired, (std::vector<SimTime>{5, 10}));
  EXPECT_EQ(q.now(), 10u);
  q.run_until(100);
  EXPECT_EQ(fired.size(), 4u);
}

TEST(EventQueue, RunUntilAdvancesTimeWhenIdle) {
  EventQueue q;
  q.run_until(1000);
  EXPECT_EQ(q.now(), 1000u);
}

TEST(EventQueue, ProcessedCounterAccumulates) {
  EventQueue q;
  for (int i = 0; i < 5; ++i) q.schedule_at(i, [] {});
  q.run();
  EXPECT_EQ(q.processed(), 5u);
}

}  // namespace
}  // namespace repchain::net
