// ReliableChannel running over the real TcpTransport: the envelope survives
// a socket path with partial writes and short reads, acks flow back, and
// payloads of many different sizes arrive intact and exactly once.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "runtime/node_context.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/reliable_channel.hpp"
#include "runtime/tcp_transport.hpp"

namespace repchain::runtime {
namespace {

constexpr SimDuration kTestWait = 5'000'000;  // 5s of real time, worst case

/// A wide RTO so a slow sanitizer-built run never triggers a spurious
/// retransmission: this test pins `retransmits == 0` to prove TCP alone
/// carried everything, which only holds if the timer can't race delivery.
ReliableChannelConfig lazy_rto() {
  ReliableChannelConfig config;
  config.base_rto = 30'000'000;  // 30s: beyond the whole test's budget
  return config;
}

struct Endpoint {
  Endpoint(PollLoop& loop, const crypto::Hash256& genesis, NodeId id,
           std::uint64_t rng_seed)
      : transport(loop, genesis),
        ctx(id, transport, Rng(rng_seed)),
        channel(ctx, /*epoch=*/1, lazy_rto()) {
    transport.host(id, [this](const Message& m) {
      if (!channel.on_message(m)) unhandled.push_back(m);
    });
  }

  TcpTransport transport;
  NodeContext ctx;
  ReliableChannel channel;
  std::vector<Message> unhandled;
};

TEST(ReliableOverTcp, LargeEnvelopesSurvivePartialWritesAndShortReads) {
  PollLoop loop;
  const crypto::Hash256 genesis = crypto::Sha256::hash(Bytes{1});
  Endpoint alice(loop, genesis, NodeId(1), 7);
  Endpoint bob(loop, genesis, NodeId(2), 8);

  std::vector<Message> delivered;
  bob.channel.set_deliver([&](const Message& m) { delivered.push_back(m); });

  const std::uint16_t port = bob.transport.listen(0);
  alice.transport.connect(port);
  ASSERT_TRUE(loop.run_until(loop.now() + kTestWait, [&] {
    return alice.transport.reaches(NodeId(2)) &&
           bob.transport.reaches(NodeId(1));
  }));

  // A spread of sizes crossing the socket-buffer boundary: the largest ones
  // force partial writes on the sender and multi-chunk reads on the
  // receiver, with several envelopes interleaved in the stream at once.
  const std::vector<std::size_t> sizes = {0, 1, 200, 65'536, 1u << 20};
  std::vector<Bytes> payloads;
  for (std::size_t i = 0; i < sizes.size(); ++i) {
    Bytes p(sizes[i]);
    for (std::size_t j = 0; j < p.size(); ++j) {
      p[j] = static_cast<std::uint8_t>((j + i) * 167);
    }
    payloads.push_back(p);
    alice.channel.send(NodeId(2), MsgKind::kTest, payloads.back());
  }

  ASSERT_TRUE(loop.run_until(loop.now() + kTestWait, [&] {
    return delivered.size() == payloads.size() &&
           alice.channel.in_flight() == 0;
  })) << "delivered " << delivered.size() << "/" << payloads.size()
      << ", in flight " << alice.channel.in_flight();

  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(delivered[i].kind, MsgKind::kTest);
    EXPECT_EQ(delivered[i].payload, payloads[i]) << "payload " << i;
  }
  EXPECT_EQ(alice.channel.stats().data_sent, payloads.size());
  EXPECT_EQ(alice.channel.stats().acks_received, payloads.size());
  EXPECT_EQ(bob.channel.stats().delivered, payloads.size());
  EXPECT_EQ(bob.channel.stats().duplicates_dropped, 0u);
  // TCP never dropped anything, so the RTO machinery should have stayed idle.
  EXPECT_EQ(alice.channel.stats().retransmits, 0u);
  EXPECT_TRUE(alice.unhandled.empty());
  EXPECT_TRUE(bob.unhandled.empty());
}

TEST(ReliableOverTcp, BothDirectionsShareTheSocket) {
  PollLoop loop;
  const crypto::Hash256 genesis = crypto::Sha256::hash(Bytes{2});
  Endpoint alice(loop, genesis, NodeId(1), 9);
  Endpoint bob(loop, genesis, NodeId(2), 10);

  std::size_t to_bob = 0;
  std::size_t to_alice = 0;
  bob.channel.set_deliver([&](const Message&) { ++to_bob; });
  alice.channel.set_deliver([&](const Message&) { ++to_alice; });

  const std::uint16_t port = bob.transport.listen(0);
  alice.transport.connect(port);
  ASSERT_TRUE(loop.run_until(loop.now() + kTestWait, [&] {
    return alice.transport.reaches(NodeId(2)) &&
           bob.transport.reaches(NodeId(1));
  }));

  Bytes big(300'000, 0xAA);
  for (int i = 0; i < 4; ++i) {
    alice.channel.send(NodeId(2), MsgKind::kTest, big);
    bob.channel.send(NodeId(1), MsgKind::kTest, big);
  }
  ASSERT_TRUE(loop.run_until(loop.now() + kTestWait, [&] {
    return to_bob == 4 && to_alice == 4 && alice.channel.in_flight() == 0 &&
           bob.channel.in_flight() == 0;
  }));
  EXPECT_EQ(alice.channel.stats().acks_sent, 4u);
  EXPECT_EQ(bob.channel.stats().acks_sent, 4u);
}

}  // namespace
}  // namespace repchain::runtime
