#include "net/network.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "common/errors.hpp"

namespace repchain::net {
namespace {

struct Fixture {
  EventQueue queue;
  SimNetwork net{queue, Rng(77), LatencyModel{2 * kMillisecond, 9 * kMillisecond}};
};

TEST(Network, DeliversMessageWithPayload) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  std::vector<Message> received;
  f.net.set_handler(b, [&](const Message& m) { received.push_back(m); });

  f.net.send(a, b, MsgKind::kTest, Bytes{1, 2, 3});
  f.queue.run();

  ASSERT_EQ(received.size(), 1u);
  EXPECT_EQ(received[0].from, a);
  EXPECT_EQ(received[0].to, b);
  EXPECT_EQ(received[0].payload, (Bytes{1, 2, 3}));
}

TEST(Network, DelayWithinConfiguredBounds) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  std::vector<SimDuration> delays;
  f.net.set_handler(b, [&](const Message& m) {
    delays.push_back(m.delivered_at - m.sent_at);
  });
  for (int i = 0; i < 200; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  ASSERT_EQ(delays.size(), 200u);
  for (auto d : delays) {
    EXPECT_GE(d, 2 * kMillisecond);
    EXPECT_LE(d, 9 * kMillisecond);
  }
}

TEST(Network, SendToUnknownNodeThrows) {
  Fixture f;
  const NodeId a = f.net.add_node();
  EXPECT_THROW(f.net.send(a, NodeId(42), MsgKind::kTest, Bytes{}), NetError);
}

TEST(Network, StatsCountMessagesAndBytes) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.set_handler(b, [](const Message&) {});
  f.net.send(a, b, MsgKind::kProviderTx, Bytes(10));
  f.net.send(a, b, MsgKind::kProviderTx, Bytes(5));
  f.net.send(a, b, MsgKind::kArgue, Bytes(1));
  f.queue.run();

  const auto& s = f.net.stats();
  EXPECT_EQ(s.messages_sent, 3u);
  EXPECT_EQ(s.bytes_sent, 16u);
  EXPECT_EQ(s.by_kind.at(MsgKind::kProviderTx), 2u);
  EXPECT_EQ(s.by_kind.at(MsgKind::kArgue), 1u);
}

TEST(Network, BytesTrackedPerKind) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  f.net.set_handler(b, [](const Message&) {});
  f.net.send(a, b, MsgKind::kProviderTx, Bytes(7));
  f.net.send(a, b, MsgKind::kProviderTx, Bytes(3));
  f.net.send(a, b, MsgKind::kArgue, Bytes(11));
  EXPECT_EQ(f.net.stats().bytes_by_kind.at(MsgKind::kProviderTx), 10u);
  EXPECT_EQ(f.net.stats().bytes_by_kind.at(MsgKind::kArgue), 11u);
}

TEST(Network, MulticastReachesAllDestinations) {
  Fixture f;
  const NodeId src = f.net.add_node();
  std::vector<NodeId> dests;
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 5; ++i) {
    const NodeId d = f.net.add_node();
    dests.push_back(d);
    f.net.set_handler(d, [&counts, i](const Message&) { ++counts[i]; });
  }
  f.net.multicast(src, dests, MsgKind::kTest, Bytes{9});
  f.queue.run();
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(Network, DropProbabilityOneLosesEverything) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int received = 0;
  f.net.set_handler(b, [&](const Message&) { ++received; });
  f.net.set_drop_probability(a, b, 1.0);
  for (int i = 0; i < 50; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(f.net.stats().messages_dropped, 50u);
}

TEST(Network, DropProbabilityIsPerLink) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  const NodeId c = f.net.add_node();
  int b_count = 0, c_count = 0;
  f.net.set_handler(b, [&](const Message&) { ++b_count; });
  f.net.set_handler(c, [&](const Message&) { ++c_count; });
  f.net.set_drop_probability(a, b, 1.0);
  for (int i = 0; i < 20; ++i) {
    f.net.send(a, b, MsgKind::kTest, Bytes{});
    f.net.send(a, c, MsgKind::kTest, Bytes{});
  }
  f.queue.run();
  EXPECT_EQ(b_count, 0);
  EXPECT_EQ(c_count, 20);
}

TEST(Network, PartialDropRateApproximatelyRespected) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int received = 0;
  f.net.set_handler(b, [&](const Message&) { ++received; });
  f.net.set_drop_probability(a, b, 0.3);
  const int n = 5000;
  for (int i = 0; i < n; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_NEAR(static_cast<double>(received) / n, 0.7, 0.05);
}

TEST(Network, DownNodeNeitherSendsNorReceives) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int received = 0;
  f.net.set_handler(b, [&](const Message&) { ++received; });

  f.net.set_node_down(b, true);
  f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 0);

  f.net.set_node_down(b, false);
  f.net.set_node_down(a, true);
  f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 0);

  f.net.set_node_down(a, false);
  f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 1);
}

TEST(Network, DropProbabilityClampedIntoUnitInterval) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  int received = 0;
  f.net.set_handler(b, [&](const Message&) { ++received; });

  // Below 0 clamps to 0: everything flows.
  f.net.set_drop_probability(a, b, -0.1);
  for (int i = 0; i < 20; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 20);

  // Above 1 clamps to 1: everything drops.
  f.net.set_drop_probability(a, b, 1.5);
  for (int i = 0; i < 20; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 20);

  // NaN clamps to 0.
  f.net.set_drop_probability(a, b, std::numeric_limits<double>::quiet_NaN());
  for (int i = 0; i < 20; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  EXPECT_EQ(received, 40);
}

TEST(Network, LinkDelayExtendsOneDirectionOnly) {
  Fixture f;
  const NodeId a = f.net.add_node();
  const NodeId b = f.net.add_node();
  std::vector<SimDuration> ab, ba;
  f.net.set_handler(a, [&](const Message& m) { ba.push_back(m.delivered_at - m.sent_at); });
  f.net.set_handler(b, [&](const Message& m) { ab.push_back(m.delivered_at - m.sent_at); });

  f.net.set_link_delay(a, b, 50 * kMillisecond);
  for (int i = 0; i < 50; ++i) {
    f.net.send(a, b, MsgKind::kTest, Bytes{});
    f.net.send(b, a, MsgKind::kTest, Bytes{});
  }
  f.queue.run();
  ASSERT_EQ(ab.size(), 50u);
  ASSERT_EQ(ba.size(), 50u);
  for (auto d : ab) EXPECT_GE(d, 50 * kMillisecond + 2 * kMillisecond);
  for (auto d : ba) EXPECT_LE(d, 9 * kMillisecond);

  // 0 removes the slow-link entry.
  f.net.set_link_delay(a, b, 0);
  ab.clear();
  for (int i = 0; i < 20; ++i) f.net.send(a, b, MsgKind::kTest, Bytes{});
  f.queue.run();
  for (auto d : ab) EXPECT_LE(d, 9 * kMillisecond);
}

TEST(Network, InvalidLatencyModelThrows) {
  EventQueue q;
  EXPECT_THROW(SimNetwork(q, Rng(1), LatencyModel{10, 5}), ConfigError);
}

TEST(Network, DeterministicAcrossIdenticalRuns) {
  auto run = [](std::uint64_t seed) {
    EventQueue q;
    SimNetwork net(q, Rng(seed), LatencyModel{1, 100});
    const NodeId a = net.add_node();
    const NodeId b = net.add_node();
    std::vector<SimTime> times;
    net.set_handler(b, [&](const Message& m) { times.push_back(m.delivered_at); });
    for (int i = 0; i < 50; ++i) net.send(a, b, MsgKind::kTest, Bytes{});
    q.run();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace repchain::net
