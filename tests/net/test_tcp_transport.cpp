// TcpTransport over real loopback sockets: delivery, route learning from the
// welcome exchange, rejection of wrong-genesis / bad-magic / wrong-version
// peers with the documented ProtocolError, and the partial-write (POLLOUT)
// path via a payload far larger than one socket buffer.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>

#include "common/errors.hpp"
#include "crypto/sha256.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/tcp_transport.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace repchain::runtime {
namespace {

constexpr SimDuration kTestWait = 2'000'000;  // 2s of real time, worst case

crypto::Hash256 test_genesis() { return crypto::Sha256::hash(Bytes{9, 9, 9}); }

/// Pump `loop` until `pred` holds; fails the test on timeout.
void pump(PollLoop& loop, const std::function<bool()>& pred) {
  ASSERT_TRUE(loop.run_until(loop.now() + kTestWait, pred))
      << "condition not reached before timeout";
}

/// Blocking loopback connect for raw-socket adversary clients.
int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const Bytes& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

TEST(TcpTransport, DeliversAcrossLoopbackAndLearnsRoutes) {
  PollLoop loop;
  TcpTransport a(loop, test_genesis());
  TcpTransport b(loop, test_genesis());

  std::vector<Message> got_b;
  a.host(NodeId(1));
  b.host(NodeId(2), [&](const Message& m) { got_b.push_back(m); });

  const std::uint16_t port = b.listen(0);
  ASSERT_NE(port, 0);
  a.connect(port);
  pump(loop, [&] { return a.reaches(NodeId(2)) && b.reaches(NodeId(1)); });
  EXPECT_EQ(a.established(), 1u);
  EXPECT_EQ(b.established(), 1u);

  a.send(NodeId(1), NodeId(2), MsgKind::kTest, Bytes{5, 6, 7});
  pump(loop, [&] { return got_b.size() == 1; });
  EXPECT_EQ(got_b[0].from, NodeId(1));
  EXPECT_EQ(got_b[0].to, NodeId(2));
  EXPECT_EQ(got_b[0].kind, MsgKind::kTest);
  EXPECT_EQ(got_b[0].payload, (Bytes{5, 6, 7}));
  EXPECT_EQ(a.stats().messages_sent, 1u);
  EXPECT_EQ(b.stats().frames_received, 2u);  // welcome + the message
}

TEST(TcpTransport, MulticastFansOutOverOneSocketPerPeer) {
  PollLoop loop;
  TcpTransport hub(loop, test_genesis());
  TcpTransport left(loop, test_genesis());
  TcpTransport right(loop, test_genesis());

  std::size_t left_got = 0;
  std::size_t right_got = 0;
  hub.host(NodeId(1));
  left.host(NodeId(2), [&](const Message&) { ++left_got; });
  right.host(NodeId(3), [&](const Message&) { ++right_got; });

  const std::uint16_t port = hub.listen(0);
  left.connect(port);
  right.connect(port);
  pump(loop, [&] { return hub.reaches(NodeId(2)) && hub.reaches(NodeId(3)); });

  const std::vector<NodeId> dests{NodeId(2), NodeId(3)};
  hub.multicast(NodeId(1), dests, MsgKind::kTest, Bytes{1});
  pump(loop, [&] { return left_got == 1 && right_got == 1; });
  EXPECT_EQ(hub.stats().messages_sent, 2u);
}

TEST(TcpTransport, SendToSelfDeliversLocally) {
  PollLoop loop;
  TcpTransport t(loop, test_genesis());
  std::vector<Message> got;
  t.host(NodeId(4), [&](const Message& m) { got.push_back(m); });
  t.send(NodeId(4), NodeId(4), MsgKind::kTest, Bytes{8});
  pump(loop, [&] { return got.size() == 1; });
  EXPECT_EQ(got[0].payload, Bytes{8});
}

TEST(TcpTransport, SendWithoutRouteCountsDrop) {
  PollLoop loop;
  TcpTransport t(loop, test_genesis());
  t.host(NodeId(1));
  t.send(NodeId(1), NodeId(42), MsgKind::kTest, Bytes{1});
  EXPECT_EQ(t.stats().messages_dropped, 1u);
}

TEST(TcpTransport, WrongGenesisPeerIsRejected) {
  PollLoop loop;
  TcpTransport server(loop, test_genesis());
  TcpTransport intruder(loop, crypto::Sha256::hash(Bytes{6, 6, 6}));
  server.host(NodeId(1));
  intruder.host(NodeId(2));

  const std::uint16_t port = server.listen(0);
  intruder.connect(port);
  pump(loop, [&] {
    return server.stats().protocol_errors >= 1 &&
           intruder.established() == 0 && intruder.stats().protocol_errors >= 1;
  });
  EXPECT_EQ(server.stats().last_error, wire::ProtocolError::kWrongGenesis);
  EXPECT_EQ(server.established(), 0u);
  EXPECT_FALSE(server.reaches(NodeId(2)));
}

TEST(TcpTransport, BadMagicFromRawClientIsRejected) {
  PollLoop loop;
  TcpTransport server(loop, test_genesis());
  server.host(NodeId(1));
  const std::uint16_t port = server.listen(0);

  const int fd = dial(port);
  Bytes junk(wire::kHeaderSize, 0x5A);  // wrong magic in the first four bytes
  send_all(fd, junk);
  pump(loop, [&] { return server.stats().protocol_errors >= 1; });
  EXPECT_EQ(server.stats().last_error, wire::ProtocolError::kBadMagic);
  EXPECT_EQ(server.established(), 0u);
  ::close(fd);
}

TEST(TcpTransport, FutureVersionHeaderIsRejected) {
  PollLoop loop;
  TcpTransport server(loop, test_genesis());
  server.host(NodeId(1));
  const std::uint16_t port = server.listen(0);

  const int fd = dial(port);
  // A structurally valid frame whose header claims version 99.
  send_all(fd, wire::encode_frame(
                   static_cast<std::uint16_t>(wire::PacketType::kWelcome),
                   Bytes{}, 99));
  pump(loop, [&] { return server.stats().protocol_errors >= 1; });
  EXPECT_EQ(server.stats().last_error, wire::ProtocolError::kHighVersion);
  EXPECT_EQ(server.established(), 0u);
  ::close(fd);
}

TEST(TcpTransport, LargePayloadSurvivesPartialWrites) {
  PollLoop loop;
  TcpTransport a(loop, test_genesis());
  TcpTransport b(loop, test_genesis());

  std::vector<Message> got;
  a.host(NodeId(1));
  b.host(NodeId(2), [&](const Message& m) { got.push_back(m); });
  const std::uint16_t port = b.listen(0);
  a.connect(port);
  pump(loop, [&] { return a.reaches(NodeId(2)); });

  // ~2 MiB: far beyond any socket buffer, so queue_frame must take the
  // partial-write path and drain through POLLOUT.
  Bytes big(2u << 20);
  for (std::size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<std::uint8_t>(i * 131);
  }
  a.send(NodeId(1), NodeId(2), MsgKind::kTest, big);
  pump(loop, [&] { return got.size() == 1; });
  EXPECT_EQ(got[0].payload, big);
}

TEST(TcpTransport, AdoptedSocketpairHandshakes) {
  PollLoop loop;
  TcpTransport a(loop, test_genesis());
  TcpTransport b(loop, test_genesis());
  std::size_t got = 0;
  a.host(NodeId(1));
  b.host(NodeId(2), [&](const Message&) { ++got; });

  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  a.adopt(sv[0]);
  b.adopt(sv[1]);
  pump(loop, [&] { return a.reaches(NodeId(2)) && b.reaches(NodeId(1)); });
  a.send(NodeId(1), NodeId(2), MsgKind::kTest, Bytes{3});
  pump(loop, [&] { return got == 1; });
}

}  // namespace
}  // namespace repchain::runtime
