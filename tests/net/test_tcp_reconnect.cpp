// Fault tolerance of the TCP layer: automatic reconnect with backoff after
// a peer restart, partial-frame discard when a connection resets mid-frame,
// a half-sent welcome that never completes, keepalive dead-peer detection,
// and ReliableChannel's per-epoch dedup holding across a reconnect.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <memory>

#include "common/errors.hpp"
#include "crypto/sha256.hpp"
#include "runtime/node_context.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/reliable_channel.hpp"
#include "runtime/tcp_transport.hpp"
#include "wire/codec.hpp"
#include "wire/frame.hpp"

namespace repchain::runtime {
namespace {

constexpr SimDuration kTestWait = 5'000'000;  // 5s of real time, worst case

crypto::Hash256 test_genesis() { return crypto::Sha256::hash(Bytes{7, 7, 7}); }

/// Options with a fast retry schedule so reconnect tests finish quickly.
TcpTransport::Options reconnect_opts() {
  TcpTransport::Options opts;
  opts.auto_reconnect = true;
  opts.reconnect_base = 10 * kMillisecond;
  opts.reconnect_max = 50 * kMillisecond;
  return opts;
}

void pump(PollLoop& loop, const std::function<bool()>& pred) {
  ASSERT_TRUE(loop.run_until(loop.now() + kTestWait, pred))
      << "condition not reached before timeout";
}

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0)
      << std::strerror(errno);
  return fd;
}

void send_all(int fd, const Bytes& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, 0);
    ASSERT_GT(n, 0) << std::strerror(errno);
    off += static_cast<std::size_t>(n);
  }
}

/// The welcome frame a raw client presents to be admitted as NodeId `id`.
Bytes raw_welcome(NodeId id) {
  wire::Welcome w;
  w.genesis = test_genesis();
  w.hosted = {id};
  w.nonce = 0xBADC0FFEE0DDF00DULL + id.value();
  return wire::encode_frame(static_cast<std::uint16_t>(wire::PacketType::kWelcome),
                            wire::encode_welcome(w));
}

TEST(TcpReconnect, RedialsAfterPeerRestartAndRelearnsRoutes) {
  PollLoop loop;
  TcpTransport a(loop, test_genesis(), reconnect_opts());
  a.host(NodeId(1));

  auto b = std::make_unique<TcpTransport>(loop, test_genesis());
  b->host(NodeId(2));
  const std::uint16_t port = b->listen(0);
  a.connect(port);
  pump(loop, [&] { return a.reaches(NodeId(2)); });

  // Peer restart: the old process vanishes (all sockets die), a new one
  // binds the same port moments later.
  b.reset();
  pump(loop, [&] { return a.established() == 0; });
  EXPECT_FALSE(a.reaches(NodeId(2)));
  EXPECT_GE(a.stats().connections_lost, 1u);

  std::vector<Message> got;
  auto b2 = std::make_unique<TcpTransport>(loop, test_genesis());
  b2->host(NodeId(2), [&](const Message& m) { got.push_back(m); });
  ASSERT_EQ(b2->listen(port), port);

  // The backoff schedule must re-dial, run a fresh welcome exchange, and
  // re-learn the route without any help from the caller.
  pump(loop, [&] { return a.reaches(NodeId(2)); });
  EXPECT_GE(a.stats().reconnect_attempts, 1u);
  EXPECT_GE(a.stats().reconnects, 1u);

  a.send(NodeId(1), NodeId(2), MsgKind::kTest, Bytes{4, 2});
  pump(loop, [&] { return got.size() == 1; });
  EXPECT_EQ(got[0].payload, (Bytes{4, 2}));
}

TEST(TcpReconnect, MidFrameResetDiscardsPartialAndRehandshakes) {
  PollLoop loop;
  TcpTransport server(loop, test_genesis());
  std::vector<Message> got;
  server.host(NodeId(1), [&](const Message& m) { got.push_back(m); });
  const std::uint16_t port = server.listen(0);

  // Admit a raw client, then feed it half of a valid message frame and
  // reset the connection mid-frame.
  int fd = dial(port);
  send_all(fd, raw_welcome(NodeId(9)));
  pump(loop, [&] { return server.reaches(NodeId(9)); });

  Message m;
  m.from = NodeId(9);
  m.to = NodeId(1);
  m.kind = MsgKind::kTest;
  m.payload = Bytes(64, 0xAB);
  const Bytes frame = wire::encode_frame(
      static_cast<std::uint16_t>(wire::PacketType::kMessage),
      wire::encode_message(m));
  send_all(fd, Bytes(frame.begin(), frame.begin() + frame.size() / 2));
  const linger lg{1, 0};  // RST, not FIN: the harsher teardown
  ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  ::close(fd);
  pump(loop, [&] { return server.established() == 0; });

  // The half-frame must die with the connection: no delivery, no protocol
  // error, and a fresh connection handshakes and delivers normally.
  EXPECT_TRUE(got.empty());
  EXPECT_EQ(server.stats().protocol_errors, 0u);
  EXPECT_GE(server.stats().connections_lost, 1u);

  fd = dial(port);
  send_all(fd, raw_welcome(NodeId(9)));
  pump(loop, [&] { return server.reaches(NodeId(9)); });
  send_all(fd, frame);
  pump(loop, [&] { return got.size() == 1; });
  EXPECT_EQ(got[0].payload, m.payload);
  ::close(fd);
}

TEST(TcpReconnect, PartialWelcomeThenDisconnectLeavesServerClean) {
  PollLoop loop;
  TcpTransport server(loop, test_genesis());
  server.host(NodeId(1));
  const std::uint16_t port = server.listen(0);

  const Bytes welcome = raw_welcome(NodeId(8));
  int fd = dial(port);
  send_all(fd, Bytes(welcome.begin(), welcome.begin() + welcome.size() / 2));
  pump(loop, [&] { return server.stats().connections_accepted >= 1; });
  ::close(fd);

  // The half-welcome never established, so its teardown is not a "lost
  // connection", not an error, and leaves no route behind.
  pump(loop, [&] { return server.established() == 0; });
  EXPECT_FALSE(server.reaches(NodeId(8)));
  EXPECT_EQ(server.stats().protocol_errors, 0u);

  fd = dial(port);
  send_all(fd, welcome);
  pump(loop, [&] { return server.reaches(NodeId(8)); });
  ::close(fd);
}

TEST(TcpReconnect, HeartbeatDeclaresSilentPeerDead) {
  PollLoop loop;
  TcpTransport::Options opts;
  opts.heartbeat_interval = 20 * kMillisecond;
  opts.dead_after_beats = 2;
  TcpTransport server(loop, test_genesis(), opts);
  server.host(NodeId(1));
  const std::uint16_t port = server.listen(0);

  // A raw client that completes the handshake and then falls silent: it
  // never answers (or sends) anything, so only the silence window kills it.
  const int fd = dial(port);
  send_all(fd, raw_welcome(NodeId(6)));
  pump(loop, [&] { return server.reaches(NodeId(6)); });

  pump(loop, [&] { return server.stats().dead_peers >= 1; });
  EXPECT_GE(server.stats().heartbeats_sent, 1u);
  EXPECT_EQ(server.established(), 0u);
  EXPECT_FALSE(server.reaches(NodeId(6)));
  ::close(fd);
}

TEST(TcpReconnect, HeartbeatTrafficKeepsQuietLinkAlive) {
  PollLoop loop;
  TcpTransport::Options opts;
  opts.heartbeat_interval = 20 * kMillisecond;
  opts.dead_after_beats = 3;
  opts.auto_reconnect = true;
  opts.reconnect_base = 10 * kMillisecond;
  TcpTransport a(loop, test_genesis(), opts);
  TcpTransport b(loop, test_genesis(), opts);
  a.host(NodeId(1));
  b.host(NodeId(2));
  const std::uint16_t port = b.listen(0);
  a.connect(port);
  pump(loop, [&] { return a.reaches(NodeId(2)) && b.reaches(NodeId(1)); });

  // No application traffic at all for many silence windows: the mutual
  // keepalives are the only bytes, and they must be enough.
  pump(loop, [&] {
    return a.stats().heartbeats_received >= 6 &&
           b.stats().heartbeats_received >= 6;
  });
  EXPECT_EQ(a.stats().dead_peers, 0u);
  EXPECT_EQ(b.stats().dead_peers, 0u);
  EXPECT_TRUE(a.reaches(NodeId(2)));
  EXPECT_TRUE(b.reaches(NodeId(1)));
}

TEST(TcpReconnect, ReliableChannelRetryBudgetResetsOnReconnect) {
  PollLoop loop;
  TcpTransport ta(loop, test_genesis(), reconnect_opts());

  NodeContext ca(NodeId(1), ta, Rng(9).derive(1));
  ReliableChannelConfig cfg;
  cfg.base_rto = 15 * kMillisecond;
  cfg.max_retries = 4;
  ReliableChannel a(ca, /*epoch=*/0, cfg);
  ta.host(NodeId(1), [&](const Message& m) { a.on_message(m); });
  // The wiring under test: a healed link refreshes every in-flight envelope
  // aimed at the returning peer, so a crash window longer than the backoff
  // ladder cannot surface a spurious kDeliveryFailed.
  ta.set_reconnect_hook([&](NodeId peer) { a.on_peer_reconnect(peer); });

  auto tb = std::make_unique<TcpTransport>(loop, test_genesis());
  std::vector<Message> delivered;
  std::vector<std::unique_ptr<NodeContext>> b_ctxs;
  std::vector<std::unique_ptr<ReliableChannel>> b_chans;
  auto make_b = [&](TcpTransport& t) {
    b_ctxs.push_back(std::make_unique<NodeContext>(NodeId(2), t, Rng(9).derive(2)));
    b_chans.push_back(std::make_unique<ReliableChannel>(*b_ctxs.back(), /*epoch=*/0));
    ReliableChannel* bp = b_chans.back().get();
    bp->set_deliver([&](const Message& m) { delivered.push_back(m); });
    t.host(NodeId(2), [bp](const Message& m) { bp->on_message(m); });
  };
  make_b(*tb);
  const std::uint16_t port = tb->listen(0);
  ta.connect(port);
  pump(loop, [&] { return ta.reaches(NodeId(2)); });

  // Peer crashes; the envelope sent into the gap burns retry budget against
  // a dead socket.
  tb.reset();
  pump(loop, [&] { return ta.established() == 0; });
  a.send(NodeId(2), MsgKind::kTest, Bytes{5, 5, 5});
  pump(loop, [&] { return a.stats().retransmits >= 1; });

  // The peer returns on the same port: auto-reconnect heals the link and
  // the hook must zero the attempt counter and retransmit immediately.
  auto tb2 = std::make_unique<TcpTransport>(loop, test_genesis());
  make_b(*tb2);
  ASSERT_EQ(tb2->listen(port), port);
  pump(loop, [&] { return delivered.size() == 1 && a.in_flight() == 0; });

  EXPECT_EQ(delivered[0].payload, (Bytes{5, 5, 5}));
  EXPECT_GE(a.stats().reconnect_resets, 1u);
  EXPECT_EQ(a.stats().exhausted, 0u);
}

TEST(TcpReconnect, ReliableChannelDedupHoldsAcrossReconnect) {
  PollLoop loop;
  TcpTransport ta(loop, test_genesis(), reconnect_opts());
  TcpTransport tb(loop, test_genesis());

  NodeContext ca(NodeId(1), ta, Rng(7).derive(1));
  NodeContext cb(NodeId(2), tb, Rng(7).derive(2));
  ReliableChannel a(ca, /*epoch=*/0);
  ReliableChannel b(cb, /*epoch=*/0);

  std::vector<Message> raw_at_b;  // channel envelopes as seen on the wire
  std::vector<Message> b_delivered;
  ta.host(NodeId(1), [&](const Message& m) { a.on_message(m); });
  tb.host(NodeId(2), [&](const Message& m) {
    raw_at_b.push_back(m);
    b.on_message(m);
  });
  b.set_deliver([&](const Message& m) { b_delivered.push_back(m); });

  const std::uint16_t port = tb.listen(0);
  ta.connect(port);
  pump(loop, [&] { return ta.reaches(NodeId(2)) && tb.reaches(NodeId(1)); });

  a.send(NodeId(2), MsgKind::kTest, Bytes{1, 2, 3});
  pump(loop, [&] { return b_delivered.size() == 1 && a.in_flight() == 0; });
  ASSERT_GE(raw_at_b.size(), 1u);
  const Message envelope = raw_at_b[0];  // the (epoch 0, seq 0) data frame

  // Connection loss and re-establishment.
  ta.drop_connections();
  pump(loop, [&] {
    return ta.stats().reconnects >= 1 && ta.reaches(NodeId(2));
  });

  // A retransmit of the same envelope arriving over the *new* connection —
  // exactly what a sender whose ack was lost in the reset would do — must
  // be deduplicated by the channel's (peer, epoch, seq) state, which lives
  // above the transport and survives the reconnect.
  ta.send(NodeId(1), NodeId(2), envelope.kind, envelope.payload);
  pump(loop, [&] { return b.stats().duplicates_dropped >= 1; });
  EXPECT_EQ(b_delivered.size(), 1u);
}

}  // namespace
}  // namespace repchain::runtime
