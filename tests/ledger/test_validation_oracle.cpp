#include "ledger/validation_oracle.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace repchain::ledger {
namespace {

TxId make_id(std::uint8_t tag) {
  TxId id{};
  id[0] = tag;
  return id;
}

TEST(ValidationOracle, RegisterAndValidate) {
  ValidationOracle oracle;
  oracle.register_tx(make_id(1), true);
  oracle.register_tx(make_id(2), false);
  EXPECT_TRUE(oracle.validate(make_id(1)));
  EXPECT_FALSE(oracle.validate(make_id(2)));
  EXPECT_EQ(oracle.validations(), 2u);
}

TEST(ValidationOracle, UnregisteredValidateThrows) {
  ValidationOracle oracle;
  EXPECT_THROW((void)oracle.validate(make_id(9)), ProtocolError);
}

TEST(ValidationOracle, DuplicateRegistrationConsistentOk) {
  ValidationOracle oracle;
  oracle.register_tx(make_id(1), true);
  oracle.register_tx(make_id(1), true);  // idempotent
  EXPECT_THROW(oracle.register_tx(make_id(1), false), ConfigError);
}

TEST(ValidationOracle, CostAccounting) {
  ValidationOracle oracle(5 * kMillisecond);
  oracle.register_tx(make_id(1), true);
  for (int i = 0; i < 4; ++i) (void)oracle.validate(make_id(1));
  EXPECT_EQ(oracle.total_cost(), 20 * kMillisecond);
  oracle.reset_counters();
  EXPECT_EQ(oracle.validations(), 0u);
  EXPECT_EQ(oracle.total_cost(), 0u);
}

TEST(ValidationOracle, TrueValidityDoesNotCount) {
  ValidationOracle oracle;
  oracle.register_tx(make_id(1), true);
  EXPECT_TRUE(oracle.true_validity(make_id(1)));
  EXPECT_EQ(oracle.validations(), 0u);
}

TEST(ValidationOracle, PerfectObservationMatchesTruth) {
  ValidationOracle oracle;
  Rng rng(1);
  oracle.register_tx(make_id(1), true);
  oracle.register_tx(make_id(2), false);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(oracle.observe(make_id(1), 1.0, rng), Label::kValid);
    EXPECT_EQ(oracle.observe(make_id(2), 1.0, rng), Label::kInvalid);
  }
}

TEST(ValidationOracle, ZeroAccuracyInverts) {
  ValidationOracle oracle;
  Rng rng(2);
  oracle.register_tx(make_id(1), true);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(oracle.observe(make_id(1), 0.0, rng), Label::kInvalid);
  }
}

TEST(ValidationOracle, NoisyObservationApproximatesAccuracy) {
  ValidationOracle oracle;
  Rng rng(3);
  oracle.register_tx(make_id(1), true);
  int correct = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (oracle.observe(make_id(1), 0.8, rng) == Label::kValid) ++correct;
  }
  EXPECT_NEAR(static_cast<double>(correct) / n, 0.8, 0.02);
}

TEST(ValidationOracle, RegisteredCount) {
  ValidationOracle oracle;
  EXPECT_EQ(oracle.registered_count(), 0u);
  oracle.register_tx(make_id(1), true);
  oracle.register_tx(make_id(2), false);
  EXPECT_EQ(oracle.registered_count(), 2u);
  EXPECT_TRUE(oracle.is_registered(make_id(1)));
  EXPECT_FALSE(oracle.is_registered(make_id(3)));
}

}  // namespace
}  // namespace repchain::ledger
