#include "ledger/transaction.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::ledger {
namespace {

struct Fixture {
  Fixture() : rng(555), provider_key(crypto::random_seed(rng)),
              collector_key(crypto::random_seed(rng)) {}

  Transaction make_tx(std::uint64_t seq = 1) {
    return make_transaction(ProviderId(10), seq, 1000 + seq, to_bytes("payload"),
                            provider_key);
  }

  Rng rng;
  crypto::SigningKey provider_key;
  crypto::SigningKey collector_key;
};

TEST(Transaction, EncodeDecodeRoundTrip) {
  Fixture f;
  const Transaction tx = f.make_tx();
  const Transaction decoded = Transaction::decode(tx.encode());
  EXPECT_EQ(decoded, tx);
  EXPECT_EQ(decoded.provider, ProviderId(10));
  EXPECT_EQ(decoded.seq, 1u);
  EXPECT_EQ(decoded.timestamp, 1001u);
  EXPECT_EQ(decoded.payload, to_bytes("payload"));
}

TEST(Transaction, SignatureVerifiesAgainstPreimage) {
  Fixture f;
  const Transaction tx = f.make_tx();
  EXPECT_TRUE(crypto::verify(f.provider_key.public_key(), tx.signed_preimage(),
                             tx.provider_sig));
}

TEST(Transaction, IdStableAcrossReEncoding) {
  Fixture f;
  const Transaction tx = f.make_tx();
  EXPECT_EQ(tx.id(), Transaction::decode(tx.encode()).id());
}

TEST(Transaction, IdIgnoresSignature) {
  // The id must identify the provider-signed content: two copies of the same
  // transaction carry the same id even if signature bytes were re-created.
  Fixture f;
  Transaction tx = f.make_tx();
  Transaction copy = tx;
  copy.provider_sig.bytes[0] ^= 0xff;  // corrupt (id should not change)
  EXPECT_EQ(tx.id(), copy.id());
}

TEST(Transaction, IdDistinguishesSeqTimestampPayloadProvider) {
  Fixture f;
  const Transaction base = f.make_tx(1);
  Transaction t = base;
  t.seq = 2;
  EXPECT_NE(base.id(), t.id());
  t = base;
  t.timestamp += 1;
  EXPECT_NE(base.id(), t.id());
  t = base;
  t.payload.push_back(0);
  EXPECT_NE(base.id(), t.id());
  t = base;
  t.provider = ProviderId(11);
  EXPECT_NE(base.id(), t.id());
}

TEST(Transaction, DecodeRejectsTruncation) {
  Fixture f;
  Bytes enc = f.make_tx().encode();
  enc.resize(enc.size() - 10);
  EXPECT_THROW(Transaction::decode(enc), DecodeError);
}

TEST(Transaction, DecodeRejectsTrailingGarbage) {
  Fixture f;
  Bytes enc = f.make_tx().encode();
  enc.push_back(0x00);
  EXPECT_THROW(Transaction::decode(enc), DecodeError);
}

TEST(LabeledTransaction, EncodeDecodeRoundTrip) {
  Fixture f;
  const Transaction tx = f.make_tx();
  const LabeledTransaction ltx =
      make_labeled(tx, Label::kInvalid, CollectorId(3), f.collector_key);
  const LabeledTransaction decoded = LabeledTransaction::decode(ltx.encode());
  EXPECT_EQ(decoded.tx, tx);
  EXPECT_EQ(decoded.label, Label::kInvalid);
  EXPECT_EQ(decoded.collector, CollectorId(3));
  EXPECT_EQ(decoded.collector_sig, ltx.collector_sig);
}

TEST(LabeledTransaction, SignatureCoversLabel) {
  Fixture f;
  const Transaction tx = f.make_tx();
  LabeledTransaction ltx = make_labeled(tx, Label::kValid, CollectorId(3), f.collector_key);
  ASSERT_TRUE(crypto::verify(f.collector_key.public_key(), ltx.signed_preimage(),
                             ltx.collector_sig));
  // Flipping the label invalidates the collector's signature.
  ltx.label = Label::kInvalid;
  EXPECT_FALSE(crypto::verify(f.collector_key.public_key(), ltx.signed_preimage(),
                              ltx.collector_sig));
}

TEST(LabeledTransaction, DecodeRejectsBadLabel) {
  Fixture f;
  const Transaction tx = f.make_tx();
  const LabeledTransaction ltx =
      make_labeled(tx, Label::kValid, CollectorId(3), f.collector_key);
  Bytes enc = ltx.encode();
  // The label byte sits right after the length-prefixed tx blob.
  const std::size_t label_pos = 4 + tx.encode().size();
  enc[label_pos] = 0;
  EXPECT_THROW(LabeledTransaction::decode(enc), DecodeError);
}

TEST(Label, OppositeFlips) {
  EXPECT_EQ(opposite(Label::kValid), Label::kInvalid);
  EXPECT_EQ(opposite(Label::kInvalid), Label::kValid);
}

TEST(TxIdHash, UsableInUnorderedMap) {
  Fixture f;
  std::unordered_map<TxId, int, TxIdHash> map;
  const Transaction a = f.make_tx(1);
  const Transaction b = f.make_tx(2);
  map[a.id()] = 1;
  map[b.id()] = 2;
  EXPECT_EQ(map.at(a.id()), 1);
  EXPECT_EQ(map.at(b.id()), 2);
}

}  // namespace
}  // namespace repchain::ledger
