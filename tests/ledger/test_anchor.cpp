// Cross-shard anchoring: anchor record codec, beacon monotonicity, and
// replica verification against the anchored head.
#include <gtest/gtest.h>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/keygen.hpp"
#include "ledger/anchor.hpp"
#include "ledger/block.hpp"
#include "ledger/chain.hpp"

namespace repchain::ledger {
namespace {

struct Fixture {
  explicit Fixture(std::uint64_t seed = 4242)
      : rng(seed),
        provider_key(crypto::random_seed(rng)),
        leader_key(crypto::random_seed(rng)) {}

  Block make_chain_block(BlockSerial serial, const crypto::Hash256& prev) {
    std::vector<TxRecord> txs;
    TxRecord rec;
    rec.tx = make_transaction(ProviderId(1), serial, serial * 10, to_bytes("p"),
                              provider_key);
    rec.label = Label::kValid;
    rec.status = TxStatus::kCheckedValid;
    txs.push_back(std::move(rec));
    return make_block(serial, serial, prev, GovernorId(0), std::move(txs),
                      leader_key);
  }

  ChainStore grow(std::size_t blocks) {
    ChainStore chain;
    for (BlockSerial s = 1; s <= blocks; ++s) {
      chain.append(make_chain_block(s, chain.head_hash()));
    }
    return chain;
  }

  Rng rng;
  crypto::SigningKey provider_key;
  crypto::SigningKey leader_key;
};

TEST(Anchor, RecordRoundTripsByteExactly) {
  Fixture f;
  const ChainStore chain = f.grow(3);
  const AnchorRecord rec = make_anchor(ShardId(2), 7, chain);
  EXPECT_EQ(rec.shard, ShardId(2));
  EXPECT_EQ(rec.round, 7u);
  EXPECT_EQ(rec.head_serial, 3u);
  EXPECT_EQ(rec.head_hash, chain.head_hash());
  const Bytes blob = rec.encode();
  EXPECT_EQ(AnchorRecord::decode(blob), rec);
  Bytes truncated(blob.begin(), blob.end() - 1);
  EXPECT_THROW((void)AnchorRecord::decode(truncated), DecodeError);
}

TEST(Anchor, EmptyChainAnchorsAsGenesisPredecessor) {
  const ChainStore empty;
  const AnchorRecord rec = make_anchor(ShardId(0), 1, empty);
  EXPECT_EQ(rec.head_serial, 0u);
  EXPECT_EQ(rec.head_hash, crypto::Hash256{});
}

TEST(Anchor, BeaconTracksLatestPerShard) {
  Fixture f;
  const ChainStore chain = f.grow(2);
  BeaconLog log;
  EXPECT_FALSE(log.latest(ShardId(0)).has_value());
  log.append(make_anchor(ShardId(0), 1, f.grow(1)));
  log.append(make_anchor(ShardId(1), 1, chain));
  log.append(make_anchor(ShardId(0), 2, chain));
  ASSERT_TRUE(log.latest(ShardId(0)).has_value());
  EXPECT_EQ(log.latest(ShardId(0))->head_serial, 2u);
  EXPECT_EQ(log.latest(ShardId(1))->round, 1u);
  EXPECT_EQ(log.size(), 3u);
}

TEST(Anchor, BeaconRejectsRegressions) {
  Fixture f;
  BeaconLog log;
  log.append(make_anchor(ShardId(0), 2, f.grow(2)));
  // Round must strictly advance per shard.
  EXPECT_THROW(log.append(make_anchor(ShardId(0), 2, f.grow(3))), ProtocolError);
  // Head serial must never shrink (a committee cannot anchor a rollback).
  EXPECT_THROW(log.append(make_anchor(ShardId(0), 3, f.grow(1))), ProtocolError);
  // Other shards are unaffected.
  EXPECT_NO_THROW(log.append(make_anchor(ShardId(1), 1, f.grow(1))));
}

TEST(Anchor, VerifyChecksReplicaAgainstAnchoredHead) {
  Fixture f;
  const ChainStore chain = f.grow(3);
  BeaconLog log;
  // Un-anchored shard: trivially ok.
  EXPECT_TRUE(log.verify(ShardId(0), chain));

  log.append(make_anchor(ShardId(0), 3, chain));
  EXPECT_TRUE(log.verify(ShardId(0), chain));

  // A replica that has not reached the anchored height fails.
  EXPECT_FALSE(log.verify(ShardId(0), f.grow(2)));

  // A replica on a different history fails: same height, different blocks.
  Fixture g(1717);  // different keys -> different blocks
  EXPECT_FALSE(log.verify(ShardId(0), g.grow(3)));

  // A longer replica extending the anchored prefix still verifies.
  EXPECT_TRUE(log.verify(ShardId(0), f.grow(5)));
}

TEST(Anchor, BeaconLogRoundTripsAndRevalidates) {
  Fixture f;
  BeaconLog log;
  log.append(make_anchor(ShardId(0), 1, f.grow(1)));
  log.append(make_anchor(ShardId(1), 1, f.grow(2)));
  log.append(make_anchor(ShardId(0), 2, f.grow(4)));
  const Bytes blob = log.encode();
  const BeaconLog back = BeaconLog::decode(blob);
  ASSERT_EQ(back.size(), 3u);
  EXPECT_EQ(back.records()[2], log.records()[2]);
  EXPECT_EQ(back.encode(), blob);

  EXPECT_FALSE(back.verify(ShardId(1), f.grow(1)));  // decoded log verifies too
  EXPECT_THROW((void)BeaconLog::decode(Bytes{1, 2, 3}), DecodeError);

  // A tampered log whose shard anchors regress is caught on the way in:
  // decode re-checks every record through append. The same anchor spliced in
  // twice is a non-advancing round.
  const AnchorRecord rec = make_anchor(ShardId(0), 2, f.grow(2));
  BinaryWriter w;
  w.u32(0x424E4352);  // the beacon magic
  w.u32(2);
  w.bytes(rec.encode());
  w.bytes(rec.encode());
  EXPECT_THROW((void)BeaconLog::decode(std::move(w).take()), ProtocolError);
}

}  // namespace
}  // namespace repchain::ledger
