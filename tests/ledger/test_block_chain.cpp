#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "crypto/keygen.hpp"
#include "ledger/block.hpp"
#include "ledger/chain.hpp"

namespace repchain::ledger {
namespace {

struct Fixture {
  Fixture()
      : rng(777),
        provider_key(crypto::random_seed(rng)),
        leader_key(crypto::random_seed(rng)) {}

  TxRecord make_record(std::uint64_t seq, TxStatus status = TxStatus::kCheckedValid) {
    TxRecord rec;
    rec.tx = make_transaction(ProviderId(1), seq, seq * 10, to_bytes("p"), provider_key);
    rec.label = status == TxStatus::kUncheckedInvalid ? Label::kInvalid : Label::kValid;
    rec.status = status;
    return rec;
  }

  Block make_chain_block(BlockSerial serial, const crypto::Hash256& prev,
                         std::size_t ntx = 3) {
    std::vector<TxRecord> txs;
    for (std::size_t i = 0; i < ntx; ++i) {
      txs.push_back(make_record(serial * 100 + i));
    }
    return make_block(serial, serial, prev, GovernorId(0), std::move(txs), leader_key);
  }

  Rng rng;
  crypto::SigningKey provider_key;
  crypto::SigningKey leader_key;
};

TEST(TxRecord, EncodeDecodeRoundTrip) {
  Fixture f;
  for (TxStatus s : {TxStatus::kCheckedValid, TxStatus::kUncheckedInvalid,
                     TxStatus::kArguedValid}) {
    const TxRecord rec = f.make_record(1, s);
    const TxRecord decoded = TxRecord::decode(rec.encode());
    EXPECT_EQ(decoded.tx, rec.tx);
    EXPECT_EQ(decoded.label, rec.label);
    EXPECT_EQ(decoded.status, s);
  }
}

TEST(TxRecord, UncheckedFlag) {
  Fixture f;
  EXPECT_FALSE(f.make_record(1, TxStatus::kCheckedValid).unchecked());
  EXPECT_TRUE(f.make_record(1, TxStatus::kUncheckedInvalid).unchecked());
  EXPECT_FALSE(f.make_record(1, TxStatus::kArguedValid).unchecked());
}

TEST(TxStatusName, AllNamed) {
  EXPECT_STREQ(tx_status_name(TxStatus::kCheckedValid), "checked-valid");
  EXPECT_STREQ(tx_status_name(TxStatus::kUncheckedInvalid), "unchecked-invalid");
  EXPECT_STREQ(tx_status_name(TxStatus::kArguedValid), "argued-valid");
}

TEST(Block, EncodeDecodeRoundTrip) {
  Fixture f;
  const Block b = f.make_chain_block(1, crypto::Hash256{});
  const Block decoded = Block::decode(b.encode());
  EXPECT_EQ(decoded.serial, b.serial);
  EXPECT_EQ(decoded.round, b.round);
  EXPECT_EQ(decoded.prev_hash, b.prev_hash);
  EXPECT_EQ(decoded.tx_root, b.tx_root);
  EXPECT_EQ(decoded.leader, b.leader);
  EXPECT_EQ(decoded.txs.size(), b.txs.size());
  EXPECT_EQ(decoded.hash(), b.hash());
}

TEST(Block, TxRootCommitsToTransactions) {
  Fixture f;
  Block b = f.make_chain_block(1, crypto::Hash256{});
  EXPECT_EQ(b.tx_root, b.compute_tx_root());
  b.txs[0].status = TxStatus::kArguedValid;  // mutate TXList
  EXPECT_NE(b.tx_root, b.compute_tx_root());
}

TEST(Block, LeaderSignatureVerifies) {
  Fixture f;
  const Block b = f.make_chain_block(1, crypto::Hash256{});
  EXPECT_TRUE(crypto::verify(f.leader_key.public_key(), b.signed_preimage(), b.leader_sig));
}

TEST(Block, HashChangesWithContent) {
  Fixture f;
  const Block a = f.make_chain_block(1, crypto::Hash256{}, 2);
  const Block b = f.make_chain_block(1, crypto::Hash256{}, 3);
  EXPECT_NE(a.hash(), b.hash());
}

TEST(Block, EmptyBlockWellFormed) {
  Fixture f;
  const Block b = make_block(1, 1, crypto::Hash256{}, GovernorId(0), {}, f.leader_key);
  EXPECT_EQ(b.txs.size(), 0u);
  EXPECT_EQ(Block::decode(b.encode()).hash(), b.hash());
}

TEST(Block, TxInclusionProofsVerify) {
  Fixture f;
  const Block b = f.make_chain_block(1, crypto::Hash256{}, 7);
  for (std::size_t i = 0; i < b.txs.size(); ++i) {
    const auto proof = b.prove_tx(i);
    EXPECT_TRUE(Block::verify_tx_inclusion(b.tx_root, b.txs[i], proof)) << i;
  }
}

TEST(Block, TxInclusionProofRejectsWrongRecord) {
  Fixture f;
  const Block b = f.make_chain_block(1, crypto::Hash256{}, 4);
  const auto proof = b.prove_tx(0);
  EXPECT_FALSE(Block::verify_tx_inclusion(b.tx_root, b.txs[1], proof));
  TxRecord tampered = b.txs[0];
  tampered.status = TxStatus::kArguedValid;
  EXPECT_FALSE(Block::verify_tx_inclusion(b.tx_root, tampered, proof));
}

TEST(Block, TxInclusionProofOutOfRangeThrows) {
  Fixture f;
  const Block b = f.make_chain_block(1, crypto::Hash256{}, 2);
  EXPECT_THROW((void)b.prove_tx(2), ConfigError);
}

TEST(ChainStore, AppendAndRetrieve) {
  Fixture f;
  ChainStore chain;
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(chain.head_hash(), crypto::Hash256{});

  const Block b1 = f.make_chain_block(1, chain.head_hash());
  chain.append(b1);
  const Block b2 = f.make_chain_block(2, chain.head_hash());
  chain.append(b2);

  EXPECT_EQ(chain.height(), 2u);
  ASSERT_TRUE(chain.retrieve(1).has_value());
  ASSERT_TRUE(chain.retrieve(2).has_value());
  EXPECT_EQ(chain.retrieve(1)->hash(), b1.hash());
  EXPECT_EQ(chain.retrieve(2)->hash(), b2.hash());
  EXPECT_FALSE(chain.retrieve(0).has_value());
  EXPECT_FALSE(chain.retrieve(3).has_value());
}

TEST(ChainStore, NoSkippingEnforced) {
  Fixture f;
  ChainStore chain;
  const Block b2 = f.make_chain_block(2, crypto::Hash256{});
  EXPECT_THROW(chain.append(b2), ProtocolError);

  chain.append(f.make_chain_block(1, chain.head_hash()));
  EXPECT_THROW(chain.append(f.make_chain_block(3, chain.head_hash())), ProtocolError);
}

TEST(ChainStore, ChainIntegrityEnforced) {
  Fixture f;
  ChainStore chain;
  chain.append(f.make_chain_block(1, chain.head_hash()));
  crypto::Hash256 wrong = chain.head_hash();
  wrong[0] ^= 1;
  EXPECT_THROW(chain.append(f.make_chain_block(2, wrong)), ProtocolError);
}

TEST(ChainStore, BadTxRootRejected) {
  Fixture f;
  ChainStore chain;
  Block b = f.make_chain_block(1, chain.head_hash());
  b.tx_root[5] ^= 0xff;
  EXPECT_THROW(chain.append(b), ProtocolError);
}

TEST(ChainStore, AuditPassesOnHonestChain) {
  Fixture f;
  ChainStore chain;
  for (BlockSerial s = 1; s <= 5; ++s) {
    chain.append(f.make_chain_block(s, chain.head_hash()));
  }
  EXPECT_TRUE(chain.audit());
}

TEST(ChainStore, SamePrefixAgreement) {
  Fixture f;
  ChainStore a, b;
  for (BlockSerial s = 1; s <= 3; ++s) {
    const Block blk = f.make_chain_block(s, a.head_hash());
    a.append(blk);
    b.append(blk);
  }
  EXPECT_TRUE(ChainStore::same_prefix(a, b));
  // One replica advances further: still in agreement on the common prefix.
  a.append(f.make_chain_block(4, a.head_hash()));
  EXPECT_TRUE(ChainStore::same_prefix(a, b));
  // Divergent block at the same height violates agreement.
  b.append(f.make_chain_block(4, b.head_hash(), 5));
  EXPECT_FALSE(ChainStore::same_prefix(a, b));
}

TEST(ChainStore, CountStatus) {
  Fixture f;
  ChainStore chain;
  std::vector<TxRecord> txs;
  txs.push_back(f.make_record(1, TxStatus::kCheckedValid));
  txs.push_back(f.make_record(2, TxStatus::kUncheckedInvalid));
  txs.push_back(f.make_record(3, TxStatus::kUncheckedInvalid));
  chain.append(make_block(1, 1, chain.head_hash(), GovernorId(0), std::move(txs),
                          f.leader_key));
  EXPECT_EQ(chain.count_status(TxStatus::kCheckedValid), 1u);
  EXPECT_EQ(chain.count_status(TxStatus::kUncheckedInvalid), 2u);
  EXPECT_EQ(chain.count_status(TxStatus::kArguedValid), 0u);
}

TEST(ChainStorePersistence, SaveLoadRoundTrip) {
  Fixture f;
  ChainStore chain;
  for (BlockSerial s = 1; s <= 4; ++s) {
    chain.append(f.make_chain_block(s, chain.head_hash()));
  }
  const auto path = std::filesystem::temp_directory_path() / "repchain_test_chain.bin";
  chain.save(path);
  const ChainStore loaded = ChainStore::load(path);
  EXPECT_EQ(loaded.height(), 4u);
  EXPECT_EQ(loaded.head_hash(), chain.head_hash());
  EXPECT_TRUE(loaded.audit());
  EXPECT_TRUE(ChainStore::same_prefix(chain, loaded));
  std::filesystem::remove(path);
}

TEST(ChainStorePersistence, EmptyChainRoundTrip) {
  ChainStore chain;
  const auto path = std::filesystem::temp_directory_path() / "repchain_empty_chain.bin";
  chain.save(path);
  const ChainStore loaded = ChainStore::load(path);
  EXPECT_TRUE(loaded.empty());
  std::filesystem::remove(path);
}

TEST(ChainStorePersistence, TamperedFileRejected) {
  Fixture f;
  ChainStore chain;
  for (BlockSerial s = 1; s <= 3; ++s) {
    chain.append(f.make_chain_block(s, chain.head_hash()));
  }
  const auto path = std::filesystem::temp_directory_path() / "repchain_tampered.bin";
  chain.save(path);

  // Flip one byte somewhere in the middle of the file.
  std::fstream file(path, std::ios::binary | std::ios::in | std::ios::out);
  file.seekp(200);
  char c;
  file.seekg(200);
  file.get(c);
  file.seekp(200);
  file.put(static_cast<char>(c ^ 0x01));
  file.close();

  EXPECT_THROW((void)ChainStore::load(path), Error);
  std::filesystem::remove(path);
}

TEST(ChainStorePersistence, MissingFileThrows) {
  EXPECT_THROW((void)ChainStore::load("/nonexistent/path/chain.bin"), ProtocolError);
}

TEST(ChainStorePersistence, BadMagicRejected) {
  const auto path = std::filesystem::temp_directory_path() / "repchain_badmagic.bin";
  std::ofstream out(path, std::ios::binary);
  out << "not a chain file at all, definitely longer than the magic";
  out.close();
  EXPECT_THROW((void)ChainStore::load(path), Error);
  std::filesystem::remove(path);
}

// --- Hostile chain files ----------------------------------------------------
//
// The on-disk layout is `str magic | u64 count | count * bytes(block)`; the
// magic string prefix occupies 4 + 17 bytes, so the count field sits at
// offset 21 and the first block's u32 length prefix at offset 29. Every
// malformed variant below must be rejected with DecodeError/ProtocolError —
// never an allocation blow-up, crash, or silent partial load.

struct HostileFile {
  // Each test gets its own scratch file: ctest runs cases of this suite
  // concurrently, and a shared path lets one test's rewrite/cleanup race
  // another's load.
  HostileFile()
      : path(std::filesystem::temp_directory_path() /
             (std::string("repchain_hostile_") +
              ::testing::UnitTest::GetInstance()->current_test_info()->name() +
              ".bin")) {
    Fixture f;
    ChainStore chain;
    for (BlockSerial s = 1; s <= 3; ++s) {
      chain.append(f.make_chain_block(s, chain.head_hash()));
    }
    chain.save(path);
    std::ifstream in(path, std::ios::binary);
    bytes.assign(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
  }
  ~HostileFile() { std::filesystem::remove(path); }

  void rewrite(const std::vector<char>& data) const {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
  }

  std::filesystem::path path;
  std::vector<char> bytes;
};

constexpr std::size_t kCountOffset = 4 + 17;       // u64 block count
constexpr std::size_t kFirstLenOffset = 21 + 8;    // first block's u32 length

TEST(ChainStorePersistence, TruncatedFilesRejected) {
  HostileFile h;
  // Cuts inside the magic, the count, a length prefix, and block payloads.
  for (const std::size_t cut :
       {std::size_t{1}, std::size_t{4}, kCountOffset - 1, kCountOffset + 3,
        kFirstLenOffset + 2, h.bytes.size() / 2, h.bytes.size() - 1}) {
    h.rewrite(std::vector<char>(h.bytes.begin(),
                                h.bytes.begin() + static_cast<long>(cut)));
    EXPECT_THROW((void)ChainStore::load(h.path), Error) << "cut at " << cut;
  }
}

TEST(ChainStorePersistence, OversizedCountRejected) {
  // A count field claiming ~2^64 blocks must fail the expect_count guard up
  // front instead of looping or reserving absurd memory.
  HostileFile h;
  auto data = h.bytes;
  for (std::size_t i = 0; i < 8; ++i) {
    data[kCountOffset + i] = static_cast<char>(0xff);
  }
  h.rewrite(data);
  EXPECT_THROW((void)ChainStore::load(h.path), DecodeError);
}

TEST(ChainStorePersistence, OversizedBlockLengthRejected) {
  // A block length prefix far past the end of the file must be caught by
  // the reader's bounds check, not trusted as an allocation size.
  HostileFile h;
  auto data = h.bytes;
  data[kFirstLenOffset + 0] = static_cast<char>(0xff);
  data[kFirstLenOffset + 1] = static_cast<char>(0xff);
  data[kFirstLenOffset + 2] = static_cast<char>(0xff);
  data[kFirstLenOffset + 3] = static_cast<char>(0x7f);
  h.rewrite(data);
  EXPECT_THROW((void)ChainStore::load(h.path), DecodeError);
}

TEST(ChainStorePersistence, HeaderByteFlipsRejected) {
  // Any flip in the structural header (magic, count, first length prefix)
  // must be rejected.
  HostileFile h;
  for (std::size_t i = 0; i < kFirstLenOffset + 4; ++i) {
    auto data = h.bytes;
    data[i] = static_cast<char>(data[i] ^ 0x20);
    h.rewrite(data);
    EXPECT_THROW((void)ChainStore::load(h.path), Error) << "flip at " << i;
  }
}

TEST(ChainStorePersistence, BodyByteFlipsNeverCrash) {
  // Flips in block bodies must either be detected (DecodeError from the
  // block decoder, ProtocolError from append's integrity checks) or — for
  // the rare bit that is not integrity-covered, like a signature byte the
  // loader does not re-verify — still yield a well-formed store.
  HostileFile h;
  std::size_t rejected = 0;
  for (std::size_t i = kFirstLenOffset; i < h.bytes.size(); i += 11) {
    auto data = h.bytes;
    data[i] = static_cast<char>(data[i] ^ 0x01);
    h.rewrite(data);
    try {
      const ChainStore loaded = ChainStore::load(h.path);
      EXPECT_EQ(loaded.height(), 3u);
    } catch (const Error&) {
      ++rejected;  // expected for integrity-covered bytes
    }
  }
  EXPECT_GT(rejected, 0u);
}

TEST(ChainStorePersistence, TrailingGarbageRejected) {
  HostileFile h;
  auto data = h.bytes;
  data.push_back(0x00);
  h.rewrite(data);
  EXPECT_THROW((void)ChainStore::load(h.path), DecodeError);
}

TEST(ChainStore, HeadOnEmptyThrows) {
  ChainStore chain;
  EXPECT_THROW((void)chain.head(), ProtocolError);
}

}  // namespace
}  // namespace repchain::ledger
