#include "baselines/raft.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "common/errors.hpp"

namespace repchain::baselines {
namespace {

struct Cluster {
  explicit Cluster(std::size_t m, std::uint64_t seed = 7)
      : rng(seed),
        net(queue, rng.derive(1), net::LatencyModel{1 * kMillisecond, 5 * kMillisecond}) {
    for (std::size_t i = 0; i < m; ++i) nodes.push_back(net.add_node());
    for (std::size_t i = 0; i < m; ++i) {
      raft.emplace_back(static_cast<std::uint32_t>(i), nodes[i], net, nodes,
                        rng.derive(100 + i));
      const std::size_t idx = raft.size() - 1;
      net.set_handler(nodes[i], [this, idx](const net::Message& msg) {
        raft[idx].on_message(msg);
      });
    }
    for (auto& r : raft) r.start();
  }

  /// Run until some node is leader (or the step budget runs out).
  RaftNode* elect(std::size_t max_steps = 200000) {
    for (std::size_t i = 0; i < max_steps && !queue.empty(); ++i) {
      queue.run(1);
      for (auto& r : raft) {
        if (r.role() == RaftNode::Role::kLeader) return &r;
      }
    }
    return nullptr;
  }

  void settle_for(SimDuration d) { queue.run_until(queue.now() + d); }

  std::size_t leader_count() {
    std::size_t count = 0;
    for (auto& r : raft) {
      if (r.role() == RaftNode::Role::kLeader) ++count;
    }
    return count;
  }

  net::EventQueue queue;
  Rng rng;
  net::SimNetwork net;
  std::vector<NodeId> nodes;
  std::deque<RaftNode> raft;
};

TEST(RaftMsg, RoundTrip) {
  RaftMsg m;
  m.type = RaftMsgType::kAppendEntries;
  m.term = 3;
  m.from = 1;
  m.prev_log_index = 4;
  m.prev_log_term = 2;
  m.leader_commit = 4;
  m.entries = {{3, to_bytes("a")}, {3, to_bytes("b")}};
  const RaftMsg d = RaftMsg::decode(m.encode());
  EXPECT_EQ(d.type, RaftMsgType::kAppendEntries);
  EXPECT_EQ(d.term, 3u);
  ASSERT_EQ(d.entries.size(), 2u);
  EXPECT_EQ(d.entries[1].payload, to_bytes("b"));
}

TEST(Raft, ElectsExactlyOneLeader) {
  Cluster c(5);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);
  // Let things settle: still exactly one leader in the cluster's max term.
  c.settle_for(300 * kMillisecond);
  EXPECT_EQ(c.leader_count(), 1u);
}

TEST(Raft, ReplicatesAndCommitsEntries) {
  Cluster c(3);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);

  EXPECT_TRUE(leader->submit(to_bytes("entry-1")));
  EXPECT_TRUE(leader->submit(to_bytes("entry-2")));
  c.settle_for(200 * kMillisecond);

  for (auto& r : c.raft) {
    ASSERT_GE(r.commit_index(), 2u) << "node " << r.id();
    const auto committed = r.committed();
    EXPECT_EQ(committed[0], to_bytes("entry-1"));
    EXPECT_EQ(committed[1], to_bytes("entry-2"));
  }
}

TEST(Raft, NonLeaderRejectsSubmit) {
  Cluster c(3);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);
  for (auto& r : c.raft) {
    if (&r != leader) EXPECT_FALSE(r.submit(to_bytes("x")));
  }
}

TEST(Raft, ToleratesMinorityCrash) {
  Cluster c(5);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);

  // Crash two non-leader nodes (minority of 5).
  std::size_t crashed = 0;
  for (auto& r : c.raft) {
    if (&r != leader && crashed < 2) {
      c.net.set_node_down(c.nodes[r.id()], true);
      ++crashed;
    }
  }
  EXPECT_TRUE(leader->submit(to_bytes("survives")));
  c.settle_for(300 * kMillisecond);
  EXPECT_GE(leader->commit_index(), 1u);
}

TEST(Raft, LeaderCrashTriggersReElection) {
  Cluster c(5);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);
  const std::uint32_t old_leader = leader->id();
  const std::uint64_t old_term = leader->term();

  c.net.set_node_down(c.nodes[old_leader], true);
  c.settle_for(600 * kMillisecond);

  RaftNode* new_leader = nullptr;
  for (auto& r : c.raft) {
    if (r.id() != old_leader && r.role() == RaftNode::Role::kLeader) new_leader = &r;
  }
  ASSERT_NE(new_leader, nullptr) << "no re-election happened";
  EXPECT_GT(new_leader->term(), old_term);
}

TEST(Raft, CommittedEntriesSurviveLeaderChange) {
  Cluster c(5);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);
  ASSERT_TRUE(leader->submit(to_bytes("durable")));
  c.settle_for(300 * kMillisecond);

  c.net.set_node_down(c.nodes[leader->id()], true);
  c.settle_for(600 * kMillisecond);

  RaftNode* new_leader = nullptr;
  for (auto& r : c.raft) {
    if (r.role() == RaftNode::Role::kLeader &&
        !(&r == leader)) {
      new_leader = &r;
    }
  }
  ASSERT_NE(new_leader, nullptr);
  // Leader-completeness: the committed entry is in the new leader's log.
  ASSERT_GE(new_leader->log().size(), 1u);
  EXPECT_EQ(new_leader->log()[0].payload, to_bytes("durable"));

  EXPECT_TRUE(new_leader->submit(to_bytes("after-failover")));
  c.settle_for(300 * kMillisecond);
  EXPECT_GE(new_leader->commit_index(), 2u);
  EXPECT_EQ(new_leader->committed()[0], to_bytes("durable"));
}

TEST(Raft, MajorityCrashHaltsProgress) {
  Cluster c(5);
  RaftNode* leader = c.elect();
  ASSERT_NE(leader, nullptr);

  std::size_t crashed = 0;
  for (auto& r : c.raft) {
    if (&r != leader && crashed < 3) {  // 3 of 5 down: majority lost
      c.net.set_node_down(c.nodes[r.id()], true);
      ++crashed;
    }
  }
  EXPECT_TRUE(leader->submit(to_bytes("stuck")));
  c.settle_for(300 * kMillisecond);
  EXPECT_EQ(leader->commit_index(), 0u);  // cannot commit without a majority
}

TEST(Raft, DeterministicAcrossSeeds) {
  // Same seed -> same leader and same term trajectory.
  auto run = [](std::uint64_t seed) {
    Cluster c(3, seed);
    RaftNode* leader = c.elect();
    return leader ? std::make_pair(leader->id(), leader->term())
                  : std::make_pair(std::uint32_t(99), std::uint64_t(0));
  };
  EXPECT_EQ(run(11), run(11));
}

}  // namespace
}  // namespace repchain::baselines
