#include "baselines/pbft.hpp"

#include <gtest/gtest.h>

#include <deque>

#include "common/errors.hpp"
#include "crypto/keygen.hpp"

namespace repchain::baselines {
namespace {

struct Cluster {
  explicit Cluster(std::size_t m, std::uint64_t seed = 55)
      : rng(seed),
        net(queue, rng.derive(1), net::LatencyModel{1 * kMillisecond, 5 * kMillisecond}),
        im(crypto::random_seed(rng)) {
    std::vector<crypto::SigningKey> keys;
    for (std::size_t i = 0; i < m; ++i) {
      keys.emplace_back(crypto::random_seed(rng));
      nodes.push_back(net.add_node());
      im.enroll(nodes.back(), identity::Role::kGovernor, keys.back().public_key());
    }
    for (std::size_t i = 0; i < m; ++i) {
      replicas.emplace_back(static_cast<std::uint32_t>(i), nodes[i],
                            std::move(keys[i]), net, im, nodes);
      const std::size_t idx = replicas.size() - 1;
      net.set_handler(nodes[i], [this, idx](const net::Message& msg) {
        replicas[idx].on_message(msg);
      });
    }
  }

  void settle() { queue.run(); }

  net::EventQueue queue;
  Rng rng;
  net::SimNetwork net;
  identity::IdentityManager im;
  std::vector<NodeId> nodes;
  std::deque<PbftReplica> replicas;
};

TEST(PbftMsg, RoundTrip) {
  Cluster c(4);
  PbftMsg m;
  m.phase = PbftPhase::kPrepare;
  m.view = 0;
  m.sequence = 7;
  m.digest[0] = 0xaa;
  m.payload = to_bytes("x");
  m.replica = 2;
  const PbftMsg d = PbftMsg::decode(m.encode());
  EXPECT_EQ(d.phase, PbftPhase::kPrepare);
  EXPECT_EQ(d.sequence, 7u);
  EXPECT_EQ(d.digest, m.digest);
  EXPECT_EQ(d.payload, m.payload);
  EXPECT_EQ(d.replica, 2u);
}

TEST(Pbft, QuorumSizes) {
  Cluster c(4);
  EXPECT_EQ(c.replicas[0].max_faulty(), 1u);
  EXPECT_EQ(c.replicas[0].quorum(), 3u);
  Cluster c7(7);
  EXPECT_EQ(c7.replicas[0].max_faulty(), 2u);
  EXPECT_EQ(c7.replicas[0].quorum(), 5u);
}

TEST(Pbft, AllHonestAgree) {
  Cluster c(4);
  c.replicas[0].propose(to_bytes("block-1"));
  c.settle();
  c.replicas[0].propose(to_bytes("block-2"));
  c.settle();

  for (auto& r : c.replicas) {
    ASSERT_EQ(r.delivered().size(), 2u) << "replica " << r.id();
    EXPECT_EQ(r.delivered()[0], to_bytes("block-1"));
    EXPECT_EQ(r.delivered()[1], to_bytes("block-2"));
  }
}

TEST(Pbft, NonPrimaryCannotPropose) {
  Cluster c(4);
  EXPECT_THROW(c.replicas[1].propose(to_bytes("x")), ProtocolError);
}

TEST(Pbft, ToleratesFSilentReplicas) {
  Cluster c(4);
  // One crashed replica (f = 1): the rest still commit.
  c.net.set_node_down(c.nodes[3], true);
  c.replicas[0].propose(to_bytes("resilient"));
  c.settle();
  for (std::size_t i = 0; i < 3; ++i) {
    ASSERT_EQ(c.replicas[i].delivered().size(), 1u) << "replica " << i;
    EXPECT_EQ(c.replicas[i].delivered()[0], to_bytes("resilient"));
  }
}

TEST(Pbft, StallsBeyondFSilentReplicas) {
  Cluster c(4);
  c.net.set_node_down(c.nodes[2], true);
  c.net.set_node_down(c.nodes[3], true);  // 2 > f = 1
  c.replicas[0].propose(to_bytes("doomed"));
  c.settle();
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_TRUE(c.replicas[i].delivered().empty());
  }
}

TEST(Pbft, EquivocatingPrimaryCannotSplitHonestReplicas) {
  Cluster c(4);
  c.replicas[0].propose_equivocating(to_bytes("alpha"), to_bytes("beta"));
  c.settle();

  // Safety: no two replicas deliver different payloads for the sequence.
  std::set<std::string> delivered;
  for (auto& r : c.replicas) {
    for (const auto& p : r.delivered()) delivered.insert(to_string(p));
  }
  EXPECT_LE(delivered.size(), 1u);
}

TEST(Pbft, ForgedMessagesIgnored) {
  Cluster c(4);
  // A message claiming to be replica 1 but signed with replica 2's key...
  // craft directly: replica 1's prepare with an invalid signature.
  PbftMsg fake;
  fake.phase = PbftPhase::kPrepare;
  fake.sequence = 1;
  fake.replica = 1;
  // default zero signature: invalid
  net::Message raw;
  raw.from = c.nodes[1];
  raw.to = c.nodes[0];
  raw.kind = net::MsgKind::kTest;
  raw.payload = fake.encode();
  c.replicas[0].on_message(raw);  // must not throw nor count

  c.replicas[0].propose(to_bytes("real"));
  c.settle();
  EXPECT_EQ(c.replicas[0].delivered().size(), 1u);
}

TEST(Pbft, MessageComplexityIsQuadratic) {
  // One committed payload costs ~3 all-to-all phases: O(m^2) messages —
  // the §4.1 comparison point against RepChain's O(m) leader dissemination.
  std::vector<std::pair<std::size_t, std::uint64_t>> counts;
  for (std::size_t m : {4u, 8u, 16u}) {
    Cluster c(m);
    c.net.reset_stats();
    c.replicas[0].propose(to_bytes("payload"));
    c.settle();
    counts.emplace_back(m, c.net.stats().messages_sent);
  }
  for (const auto& [m, msgs] : counts) {
    const double per_m2 = static_cast<double>(msgs) / static_cast<double>(m * m);
    EXPECT_GT(per_m2, 1.5) << "m=" << m;   // ~ pre-prepare + prepare + commit
    EXPECT_LT(per_m2, 3.5) << "m=" << m;
  }
  // Quadratic growth: quadrupling m grows messages ~16x (allow slack).
  const double ratio = static_cast<double>(counts[2].second) /
                       static_cast<double>(counts[0].second);
  EXPECT_GT(ratio, 10.0);
  EXPECT_LT(ratio, 24.0);
}

}  // namespace
}  // namespace repchain::baselines
