#include "baselines/policies.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "baselines/policy_simulator.hpp"
#include "common/errors.hpp"

namespace repchain::baselines {
namespace {

using ledger::Label;

reputation::ReputationParams params(double f = 0.5) {
  reputation::ReputationParams p;
  p.f = f;
  return p;
}

std::vector<reputation::Report> reports(std::initializer_list<Label> labels) {
  std::vector<reputation::Report> out;
  std::uint32_t c = 0;
  for (Label l : labels) out.push_back({CollectorId(c++), l});
  return out;
}

TEST(CheckAllPolicy, AlwaysChecks) {
  CheckAllPolicy p;
  Rng rng(1);
  for (int i = 0; i < 50; ++i) {
    const auto d = p.decide(ProviderId(0), reports({Label::kInvalid, Label::kInvalid}),
                            rng);
    EXPECT_TRUE(d.check);
  }
}

TEST(UniformPolicy, PlusOnePickAlwaysChecked) {
  UniformPolicy p(0.9);
  Rng rng(2);
  for (int i = 0; i < 100; ++i) {
    const auto d = p.decide(ProviderId(0), reports({Label::kValid}), rng);
    EXPECT_TRUE(d.check);
    EXPECT_EQ(d.chosen_label, Label::kValid);
  }
}

TEST(UniformPolicy, SingleMinusOneUncheckedAtRateF) {
  UniformPolicy p(0.6);
  Rng rng(3);
  int unchecked = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (!p.decide(ProviderId(0), reports({Label::kInvalid}), rng).check) ++unchecked;
  }
  EXPECT_NEAR(unchecked / static_cast<double>(n), 0.6, 0.03);
}

TEST(UniformPolicy, SelectionIsUniform) {
  UniformPolicy p(0.5);
  Rng rng(4);
  int plus = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const auto d =
        p.decide(ProviderId(0), reports({Label::kValid, Label::kInvalid}), rng);
    if (d.chosen_label == Label::kValid) ++plus;
  }
  EXPECT_NEAR(plus / static_cast<double>(n), 0.5, 0.02);
}

TEST(MajorityVotePolicy, MajorityValidChecks) {
  MajorityVotePolicy p(0.9);
  Rng rng(5);
  const auto d = p.decide(
      ProviderId(0), reports({Label::kValid, Label::kValid, Label::kInvalid}), rng);
  EXPECT_TRUE(d.check);
  EXPECT_EQ(d.chosen_label, Label::kValid);
}

TEST(MajorityVotePolicy, TieChecks) {
  MajorityVotePolicy p(0.9);
  Rng rng(6);
  const auto d = p.decide(ProviderId(0), reports({Label::kValid, Label::kInvalid}), rng);
  EXPECT_TRUE(d.check);
}

TEST(MajorityVotePolicy, MinusMajorityUncheckedAtRateF) {
  MajorityVotePolicy p(0.7);
  Rng rng(7);
  int unchecked = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    const auto d = p.decide(
        ProviderId(0), reports({Label::kInvalid, Label::kInvalid, Label::kValid}), rng);
    EXPECT_EQ(d.chosen_label, Label::kInvalid);
    if (!d.check) ++unchecked;
  }
  EXPECT_NEAR(unchecked / static_cast<double>(n), 0.7, 0.03);
}

TEST(ReputationPolicy, LearnsToIgnoreAdversary) {
  ReputationPolicy p(params(0.5), /*collectors=*/2, /*providers=*/1);
  Rng rng(8);
  // Collector 1 always wrong on unchecked reveals.
  const auto reps = reports({Label::kValid, Label::kInvalid});
  for (int i = 0; i < 50; ++i) {
    p.on_truth(ProviderId(0), reps, /*tx_valid=*/true, /*was_checked=*/false);
  }
  EXPECT_LT(p.table().weight(CollectorId(1), ProviderId(0)), 1e-3);
  // Selection now almost surely picks collector 0.
  int picked_plus = 0;
  for (int i = 0; i < 200; ++i) {
    if (p.decide(ProviderId(0), reps, rng).chosen_label == Label::kValid) ++picked_plus;
  }
  EXPECT_GE(picked_plus, 199);
}

// --- Simulator ----------------------------------------------------------------

PolicyWorkloadConfig workload(std::uint64_t seed = 1) {
  PolicyWorkloadConfig w;
  w.transactions = 4000;
  w.p_valid = 0.7;
  w.collectors = {SimCollector{1.0, 0.0, 0.0},   // perfect
                  SimCollector{0.7, 0.0, 0.0},   // noisy
                  SimCollector{1.0, 1.0, 0.0}};  // adversarial (always flips)
  w.seed = seed;
  return w;
}

TEST(PolicySimulator, RejectsEmptyConfig) {
  CheckAllPolicy p;
  PolicyWorkloadConfig w;
  w.collectors.clear();
  EXPECT_THROW((void)run_policy(p, w), ConfigError);
  w = workload();
  w.providers = 0;
  EXPECT_THROW((void)run_policy(p, w), ConfigError);
}

TEST(PolicySimulator, CheckAllHasZeroLossFullCost) {
  CheckAllPolicy p;
  const auto r = run_policy(p, workload());
  EXPECT_EQ(r.loss, 0.0);
  EXPECT_EQ(r.unchecked, 0u);
  EXPECT_EQ(r.validations, r.transactions);
}

TEST(PolicySimulator, ReputationBeatsUniformOnLossAtEqualF) {
  auto w = workload(42);
  ReputationPolicy rep(params(0.8), w.collectors.size(), 1);
  UniformPolicy uni(0.8);
  const auto rr = run_policy(rep, w);
  const auto ru = run_policy(uni, w);
  // Same workload, same f: reputation learns to draw from the perfect
  // collector, so its loss (valid txs buried) is much lower.
  EXPECT_LT(rr.loss, ru.loss * 0.7)
      << "reputation loss " << rr.loss << " vs uniform " << ru.loss;
}

TEST(PolicySimulator, ReputationSavesValidationsVsCheckAll) {
  auto w = workload(43);
  w.p_valid = 0.2;  // many invalid txs -> many -1 picks -> savings possible
  ReputationPolicy rep(params(0.8), w.collectors.size(), 1);
  CheckAllPolicy all;
  const auto rr = run_policy(rep, w);
  const auto ra = run_policy(all, w);
  EXPECT_LT(rr.validations, ra.validations * 0.85);
}

TEST(PolicySimulator, SMinTracksBestCollector) {
  // With a perfect collector present, S_min counts only its abstentions;
  // with no drops it is exactly 0.
  auto w = workload(44);
  ReputationPolicy rep(params(0.8), w.collectors.size(), 1);
  const auto r = run_policy(rep, w);
  EXPECT_EQ(r.s_min, 0.0);
}

TEST(PolicySimulator, TheoremBoundHoldsEndToEnd) {
  // E4's shape in miniature: governor loss <= S_min + O(sqrt((f+delta)N)).
  auto w = workload(45);
  w.transactions = 3000;
  ReputationPolicy rep(params(0.5), w.collectors.size(), 1);
  const auto r = run_policy(rep, w);
  const double bound =
      r.s_min + 16.0 * std::sqrt(static_cast<double>(r.unchecked + 1) *
                                 std::log(static_cast<double>(w.collectors.size())));
  EXPECT_LE(r.loss, bound) << "loss " << r.loss << " bound " << bound;
}

TEST(PolicySimulator, RevealLagOnlyDelaysLearning) {
  auto w = workload(46);
  ReputationPolicy immediate(params(0.8), w.collectors.size(), 1);
  const auto r0 = run_policy(immediate, w);

  w.reveal_lag = 50;
  ReputationPolicy lagged(params(0.8), w.collectors.size(), 1);
  const auto r50 = run_policy(lagged, w);

  // Lag hurts, but boundedly (U-latency discussion in §4.2).
  EXPECT_LE(r0.loss, r50.loss + 1e-9);
  EXPECT_LT(r50.loss, r0.loss + 2.0 * 50 + 100.0);
}

TEST(PolicySimulator, DeterministicPerSeed) {
  auto w = workload(47);
  ReputationPolicy a(params(0.5), w.collectors.size(), 1);
  ReputationPolicy b(params(0.5), w.collectors.size(), 1);
  const auto ra = run_policy(a, w);
  const auto rb = run_policy(b, w);
  EXPECT_EQ(ra.loss, rb.loss);
  EXPECT_EQ(ra.validations, rb.validations);
}

}  // namespace
}  // namespace repchain::baselines
