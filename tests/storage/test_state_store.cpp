// Storage-layer contracts: CRC-framed WAL scanning (torn tails vs genuine
// corruption), snapshot envelope integrity, and the MemoryStateStore /
// FileStateStore backends — including the crash artifacts a kill -9 can
// leave behind (partial tail frames, leftover snapshot.tmp, stale WAL after
// a snapshot rename). The invariant under test: no crash point between a
// wal_append and a snapshot rename may yield a store whose recovered chain
// fails ChainStore::audit().
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <memory>
#include <vector>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "common/serial.hpp"
#include "crypto/keygen.hpp"
#include "ledger/block.hpp"
#include "ledger/chain.hpp"
#include "storage/crc32.hpp"
#include "storage/file_state_store.hpp"
#include "storage/node_state_store.hpp"
#include "storage/wal_format.hpp"

namespace repchain::storage {
namespace {

Bytes payload(std::initializer_list<std::uint8_t> bytes) { return Bytes(bytes); }

/// Fresh scratch directory under the system temp dir, removed on scope exit.
struct ScratchDir {
  explicit ScratchDir(const char* tag)
      : path(std::filesystem::temp_directory_path() /
             (std::string("repchain_store_") + tag)) {
    std::filesystem::remove_all(path);
  }
  ~ScratchDir() { std::filesystem::remove_all(path); }
  std::filesystem::path path;
};

/// Builds signed blocks so WAL records can be replayed into a ChainStore.
struct BlockFactory {
  BlockFactory() : rng(31337), provider_key(crypto::random_seed(rng)),
                   leader_key(crypto::random_seed(rng)) {}

  ledger::Block make(BlockSerial serial, const crypto::Hash256& prev) {
    std::vector<ledger::TxRecord> txs;
    for (std::size_t i = 0; i < 2; ++i) {
      ledger::TxRecord rec;
      rec.tx = ledger::make_transaction(ProviderId(1), serial * 100 + i,
                                        serial, to_bytes("p"), provider_key);
      rec.label = ledger::Label::kValid;
      rec.status = ledger::TxStatus::kCheckedValid;
      txs.push_back(std::move(rec));
    }
    return ledger::make_block(serial, serial, prev, GovernorId(0),
                              std::move(txs), leader_key);
  }

  Rng rng;
  crypto::SigningKey provider_key;
  crypto::SigningKey leader_key;
};

// --- CRC ---------------------------------------------------------------------

TEST(Crc32, KnownVectors) {
  // IEEE CRC-32 of "123456789" is the classic check value.
  const Bytes check = to_bytes("123456789");
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(Bytes{}), 0u);
}

TEST(Crc32, SensitiveToEveryByte) {
  Bytes data = to_bytes("the quick brown fox");
  const std::uint32_t base = crc32(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(crc32(data), base) << "flip at " << i;
    data[i] ^= 0x01;
  }
}

// --- WAL framing -------------------------------------------------------------

TEST(WalFormat, RoundTripPreservesOrder) {
  Bytes wal;
  const std::vector<Bytes> records = {payload({1, 2, 3}), payload({}),
                                      payload({0xff}), to_bytes("block-4")};
  for (const Bytes& r : records) append_frame(wal, r);

  const WalScan scan = scan_wal(wal);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.clean_bytes, wal.size());
  ASSERT_EQ(scan.records.size(), records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(scan.records[i], records[i]) << i;
  }
}

TEST(WalFormat, EmptyLogIsClean) {
  const WalScan scan = scan_wal(Bytes{});
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.clean_bytes, 0u);
  EXPECT_FALSE(scan.torn_tail);
}

TEST(WalFormat, EveryTruncationPointRecoversCleanPrefix) {
  // A crash can cut the log at any byte. Whatever the cut, scanning must
  // return exactly the records whose frames fit the prefix, flag the torn
  // tail, and report clean_bytes at the last frame boundary.
  Bytes wal;
  std::vector<std::size_t> boundaries = {0};
  for (std::uint8_t i = 1; i <= 4; ++i) {
    append_frame(wal, payload({i, i, i}));
    boundaries.push_back(wal.size());
  }
  for (std::size_t cut = 0; cut <= wal.size(); ++cut) {
    const Bytes prefix(wal.begin(), wal.begin() + static_cast<long>(cut));
    const WalScan scan = scan_wal(prefix);
    std::size_t complete = 0;
    while (complete + 1 < boundaries.size() && boundaries[complete + 1] <= cut) {
      ++complete;
    }
    EXPECT_EQ(scan.records.size(), complete) << "cut at " << cut;
    EXPECT_EQ(scan.clean_bytes, boundaries[complete]) << "cut at " << cut;
    EXPECT_EQ(scan.torn_tail, cut != boundaries[complete]) << "cut at " << cut;
  }
}

TEST(WalFormat, CompleteFrameCrcMismatchThrows) {
  Bytes wal;
  append_frame(wal, to_bytes("first"));
  append_frame(wal, to_bytes("second"));
  // Flip a payload byte of the *first* (complete, non-tail) frame: that is
  // corruption, not a torn write, and must refuse to load.
  wal[9] ^= 0x01;
  EXPECT_THROW((void)scan_wal(wal), ProtocolError);
}

TEST(WalFormat, TornTailRecordsReplayIntoAuditableChain) {
  // End-to-end: blocks appended to a WAL, log cut mid-frame, survivors
  // replayed into a ChainStore — the result must always pass audit().
  BlockFactory f;
  ledger::ChainStore chain;
  Bytes wal;
  for (BlockSerial s = 1; s <= 3; ++s) {
    const ledger::Block b = f.make(s, chain.head_hash());
    chain.append(b);
    append_frame(wal, b.encode());
  }
  // Cut in the middle of the last frame.
  const Bytes torn(wal.begin(), wal.begin() + static_cast<long>(wal.size() - 7));
  const WalScan scan = scan_wal(torn);
  EXPECT_TRUE(scan.torn_tail);
  ASSERT_EQ(scan.records.size(), 2u);

  ledger::ChainStore recovered;
  for (const Bytes& rec : scan.records) {
    recovered.append(ledger::Block::decode(rec));
  }
  EXPECT_TRUE(recovered.audit());
  EXPECT_TRUE(ledger::ChainStore::same_prefix(chain, recovered));
}

// --- Snapshot envelope -------------------------------------------------------

TEST(SnapshotFormat, RoundTrip) {
  const Bytes body = to_bytes("governor checkpoint bytes");
  EXPECT_EQ(decode_snapshot(encode_snapshot(body)), body);
  EXPECT_EQ(decode_snapshot(encode_snapshot(Bytes{})), Bytes{});
}

TEST(SnapshotFormat, EveryByteFlipRejected) {
  const Bytes image = encode_snapshot(to_bytes("checkpoint"));
  for (std::size_t i = 0; i < image.size(); ++i) {
    Bytes bad = image;
    bad[i] ^= 0x01;
    EXPECT_THROW((void)decode_snapshot(bad), DecodeError) << "flip at " << i;
  }
}

TEST(SnapshotFormat, TruncationRejected) {
  const Bytes image = encode_snapshot(to_bytes("checkpoint"));
  for (std::size_t cut = 0; cut < image.size(); ++cut) {
    const Bytes prefix(image.begin(), image.begin() + static_cast<long>(cut));
    EXPECT_THROW((void)decode_snapshot(prefix), DecodeError) << "cut at " << cut;
  }
}

TEST(SnapshotFormat, TrailingGarbageRejected) {
  Bytes image = encode_snapshot(to_bytes("checkpoint"));
  image.push_back(0x00);
  EXPECT_THROW((void)decode_snapshot(image), DecodeError);
}

// --- MemoryStateStore --------------------------------------------------------

TEST(MemoryStateStore, WalAppendAndSnapshotContract) {
  MemoryStateStore store;
  EXPECT_EQ(store.wal_bytes(), 0u);
  EXPECT_EQ(store.snapshot_bytes(), 0u);
  EXPECT_FALSE(store.load_snapshot().has_value());

  store.wal_append(to_bytes("a"));
  store.wal_append(to_bytes("bb"));
  const auto records = store.wal_records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0], to_bytes("a"));
  EXPECT_EQ(records[1], to_bytes("bb"));
  EXPECT_GT(store.wal_bytes(), 0u);

  store.write_snapshot(to_bytes("snap"));
  EXPECT_EQ(store.wal_bytes(), 0u);  // snapshot truncates the log
  EXPECT_TRUE(store.wal_records().empty());
  ASSERT_TRUE(store.load_snapshot().has_value());
  EXPECT_EQ(*store.load_snapshot(), to_bytes("snap"));
  EXPECT_GT(store.snapshot_bytes(), 0u);
}

TEST(MemoryStateStore, TornRawWalTailDropped) {
  MemoryStateStore store;
  store.wal_append(to_bytes("kept"));
  store.wal_append(to_bytes("torn"));
  store.raw_wal().resize(store.raw_wal().size() - 3);  // crash mid-write
  const auto records = store.wal_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("kept"));
}

TEST(MemoryStateStore, CorruptRawSnapshotRefusesToLoad) {
  MemoryStateStore store;
  store.write_snapshot(to_bytes("snap"));
  (*store.raw_snapshot())[store.raw_snapshot()->size() / 2] ^= 0x40;
  EXPECT_THROW((void)store.load_snapshot(), DecodeError);
}

TEST(MemoryStateStore, CompactDropsCoveredPrefixKeepsTail) {
  MemoryStateStore store;
  store.wal_append(to_bytes("covered-1"));
  store.wal_append(to_bytes("covered-2"));
  store.wal_append(to_bytes("tail"));
  store.compact(to_bytes("ckpt"), 2);
  ASSERT_TRUE(store.load_snapshot().has_value());
  EXPECT_EQ(*store.load_snapshot(), to_bytes("ckpt"));
  const auto records = store.wal_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("tail"));
  // Appends after compaction land behind the surviving tail.
  store.wal_append(to_bytes("after"));
  EXPECT_EQ(store.wal_records().size(), 2u);
}

TEST(MemoryStateStore, CompactBeyondLogLengthClearsIt) {
  MemoryStateStore store;
  store.wal_append(to_bytes("only"));
  store.compact(to_bytes("ckpt"), 5);
  EXPECT_TRUE(store.wal_records().empty());
  EXPECT_EQ(*store.load_snapshot(), to_bytes("ckpt"));
}

// --- FileStateStore ----------------------------------------------------------

TEST(FileStateStore, PersistsAcrossReopen) {
  ScratchDir dir("reopen");
  {
    FileStateStore store(dir.path);
    store.wal_append(to_bytes("one"));
    store.wal_append(to_bytes("two"));
    store.write_snapshot(to_bytes("snap-1"));
    store.wal_append(to_bytes("three"));
  }
  FileStateStore reopened(dir.path);
  ASSERT_TRUE(reopened.load_snapshot().has_value());
  EXPECT_EQ(*reopened.load_snapshot(), to_bytes("snap-1"));
  const auto records = reopened.wal_records();
  ASSERT_EQ(records.size(), 1u);  // snapshot truncated "one"/"two"
  EXPECT_EQ(records[0], to_bytes("three"));
}

TEST(FileStateStore, LeftoverSnapshotTmpIgnoredAndRemoved) {
  ScratchDir dir("tmpfile");
  {
    FileStateStore store(dir.path);
    store.write_snapshot(to_bytes("committed"));
  }
  // Crash mid-snapshot-write: a half-written temp file exists alongside the
  // last committed snapshot.
  {
    std::ofstream tmp(dir.path / "snapshot.tmp", std::ios::binary);
    tmp << "half-written garbage";
  }
  FileStateStore reopened(dir.path);
  EXPECT_FALSE(std::filesystem::exists(dir.path / "snapshot.tmp"));
  ASSERT_TRUE(reopened.load_snapshot().has_value());
  EXPECT_EQ(*reopened.load_snapshot(), to_bytes("committed"));
}

TEST(FileStateStore, TornWalTailTruncatedOnOpen) {
  ScratchDir dir("torn");
  {
    FileStateStore store(dir.path);
    store.wal_append(to_bytes("complete"));
  }
  // Simulate a torn append: half a frame at the tail.
  {
    std::ofstream out(dir.path / "wal.bin",
                      std::ios::binary | std::ios::app);
    const char partial[] = {0x50, 0x00, 0x00, 0x00, 0x01};  // bogus header
    out.write(partial, sizeof(partial));
  }
  FileStateStore reopened(dir.path);
  const auto records = reopened.wal_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("complete"));
  // The torn bytes are physically gone; appends land on a clean boundary.
  reopened.wal_append(to_bytes("after"));
  const auto after = reopened.wal_records();
  ASSERT_EQ(after.size(), 2u);
  EXPECT_EQ(after[1], to_bytes("after"));
}

TEST(FileStateStore, CorruptCompleteFrameRefusesToOpen) {
  ScratchDir dir("corrupt");
  {
    FileStateStore store(dir.path);
    store.wal_append(to_bytes("first"));
    store.wal_append(to_bytes("second"));
  }
  // Flip a payload byte of the first frame (complete, CRC-covered).
  {
    std::fstream f(dir.path / "wal.bin",
                   std::ios::binary | std::ios::in | std::ios::out);
    f.seekg(8);
    char c;
    f.get(c);
    f.seekp(8);
    f.put(static_cast<char>(c ^ 0x01));
  }
  EXPECT_THROW(FileStateStore{dir.path}, ProtocolError);
}

TEST(FileStateStore, CompactPersistsAcrossReopen) {
  ScratchDir dir("compact");
  {
    FileStateStore store(dir.path);
    store.wal_append(to_bytes("covered-1"));
    store.wal_append(to_bytes("covered-2"));
    store.wal_append(to_bytes("tail"));
    store.compact(to_bytes("ckpt"), 2);
    EXPECT_FALSE(std::filesystem::exists(dir.path / "wal.tmp"));
    EXPECT_FALSE(std::filesystem::exists(dir.path / "snapshot.tmp"));
  }
  FileStateStore reopened(dir.path);
  ASSERT_TRUE(reopened.load_snapshot().has_value());
  EXPECT_EQ(*reopened.load_snapshot(), to_bytes("ckpt"));
  const auto records = reopened.wal_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("tail"));
  reopened.wal_append(to_bytes("after"));
  EXPECT_EQ(reopened.wal_records().size(), 2u);
}

TEST(FileStateStore, LeftoverWalTmpIgnoredAndRemoved) {
  // Crash mid-compaction, before the WAL rename: the half-rewritten temp log
  // must be discarded on open and the committed wal.bin stays authoritative.
  ScratchDir dir("waltmp");
  {
    FileStateStore store(dir.path);
    store.wal_append(to_bytes("committed"));
  }
  {
    std::ofstream tmp(dir.path / "wal.tmp", std::ios::binary);
    tmp << "half-written tail";
  }
  FileStateStore reopened(dir.path);
  EXPECT_FALSE(std::filesystem::exists(dir.path / "wal.tmp"));
  const auto records = reopened.wal_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("committed"));
}

TEST(FileStateStore, StaleWalAfterSnapshotRenameIsReadable) {
  // Crash window: snapshot.bin renamed into place but the WAL not yet
  // removed. Both must load; recovery (governor level) skips the stale
  // records by serial. Model it by writing the snapshot, then re-creating
  // the WAL image that preceded it.
  ScratchDir dir("stale");
  Bytes stale_wal;
  {
    FileStateStore store(dir.path);
    store.wal_append(to_bytes("covered-by-snapshot"));
    std::ifstream in(dir.path / "wal.bin", std::ios::binary);
    stale_wal.assign(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
    store.write_snapshot(to_bytes("snap"));
  }
  {
    std::ofstream out(dir.path / "wal.bin", std::ios::binary);
    out.write(reinterpret_cast<const char*>(stale_wal.data()),
              static_cast<long>(stale_wal.size()));
  }
  FileStateStore reopened(dir.path);
  ASSERT_TRUE(reopened.load_snapshot().has_value());
  EXPECT_EQ(*reopened.load_snapshot(), to_bytes("snap"));
  const auto records = reopened.wal_records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0], to_bytes("covered-by-snapshot"));
}

TEST(FileStateStore, KillBetweenAppendAndRenameNeverFailsAudit) {
  // The acceptance invariant: simulate every interruption point between a
  // WAL append and the snapshot rename by replaying the store's real on-disk
  // states, and check the recovered chain always audits clean.
  BlockFactory f;
  ledger::ChainStore chain;
  ScratchDir dir("killwin");

  // Build a store holding blocks 1..4 in the WAL (no snapshot yet), keeping
  // a byte-image of the WAL after each append.
  std::vector<Bytes> wal_images;
  {
    FileStateStore store(dir.path);
    for (BlockSerial s = 1; s <= 4; ++s) {
      const ledger::Block b = f.make(s, chain.head_hash());
      chain.append(b);
      store.wal_append(b.encode());
      std::ifstream in(dir.path / "wal.bin", std::ios::binary);
      wal_images.emplace_back(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
    }
  }

  const auto recover = [&](const std::filesystem::path& p) {
    FileStateStore store(p);
    ledger::ChainStore recovered;
    for (const Bytes& rec : store.wal_records()) {
      const ledger::Block b = ledger::Block::decode(rec);
      if (b.serial <= recovered.height()) continue;  // covered by snapshot
      recovered.append(b);
    }
    return recovered;
  };

  // Interruption states: after each append, plus every torn cut of the final
  // image (the in-flight 5th append that never completed).
  for (std::size_t i = 0; i < wal_images.size(); ++i) {
    ScratchDir state("killwin_state");
    std::filesystem::create_directories(state.path);
    std::ofstream(state.path / "wal.bin", std::ios::binary)
        .write(reinterpret_cast<const char*>(wal_images[i].data()),
               static_cast<long>(wal_images[i].size()));
    const ledger::ChainStore recovered = recover(state.path);
    EXPECT_TRUE(recovered.audit()) << "after append " << i + 1;
    EXPECT_EQ(recovered.height(), i + 1);
    EXPECT_TRUE(ledger::ChainStore::same_prefix(chain, recovered));
  }
  {
    // Torn tail of a 5th append at several cut points.
    const ledger::Block b5 = f.make(5, chain.head_hash());
    Bytes full = wal_images.back();
    append_frame(full, b5.encode());
    for (const std::size_t cut :
         {wal_images.back().size() + 1, wal_images.back().size() + 9,
          full.size() - 1}) {
      ScratchDir state("killwin_torn");
      std::filesystem::create_directories(state.path);
      std::ofstream(state.path / "wal.bin", std::ios::binary)
          .write(reinterpret_cast<const char*>(full.data()),
                 static_cast<long>(cut));
      const ledger::ChainStore recovered = recover(state.path);
      EXPECT_TRUE(recovered.audit()) << "torn cut " << cut;
      EXPECT_EQ(recovered.height(), 4u);  // the torn 5th block is dropped
    }
  }
}

TEST(FileStateStore, BackendsAgreeOnTheContract) {
  // Polymorphic smoke test: both backends behave identically through the
  // NodeStateStore interface.
  ScratchDir dir("contract");
  std::vector<std::unique_ptr<NodeStateStore>> stores;
  stores.push_back(std::make_unique<MemoryStateStore>());
  stores.push_back(std::make_unique<FileStateStore>(dir.path));
  for (const auto& store : stores) {
    store->wal_append(to_bytes("r1"));
    store->wal_append(to_bytes("r2"));
    EXPECT_EQ(store->wal_records().size(), 2u);
    store->write_snapshot(to_bytes("s"));
    EXPECT_EQ(store->wal_bytes(), 0u);
    EXPECT_TRUE(store->wal_records().empty());
    EXPECT_EQ(*store->load_snapshot(), to_bytes("s"));
    store->wal_append(to_bytes("r3"));
    EXPECT_EQ(store->wal_records().size(), 1u);
    store->wal_append(to_bytes("r4"));
    store->compact(to_bytes("s2"), 1);  // r3 covered, r4 survives
    EXPECT_EQ(*store->load_snapshot(), to_bytes("s2"));
    ASSERT_EQ(store->wal_records().size(), 1u);
    EXPECT_EQ(store->wal_records()[0], to_bytes("r4"));
  }
}

}  // namespace
}  // namespace repchain::storage
