#include "crypto/sc25519.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace repchain::crypto {
namespace {

ByteArray<32> from_hex_arr(const std::string& hex) {
  const Bytes b = from_hex(hex);
  ByteArray<32> out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

// L's little-endian byte encoding.
ByteArray<32> l_bytes() {
  return from_hex_arr(
      "edd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
}

Scalar random_scalar(Rng& rng) {
  ByteArray<64> wide{};
  const Bytes raw = rng.bytes(64);
  std::copy(raw.begin(), raw.end(), wide.begin());
  return sc_from_bytes_wide(wide);
}

TEST(Sc25519, ZeroProperties) {
  EXPECT_TRUE(sc_is_zero(sc_zero()));
  EXPECT_EQ(sc_to_bytes(sc_zero()), ByteArray<32>{});
}

TEST(Sc25519, LReducesToZero) {
  const Scalar l = sc_from_bytes(l_bytes());
  EXPECT_TRUE(sc_is_zero(l));
}

TEST(Sc25519, LIsNotCanonical) {
  EXPECT_FALSE(sc_is_canonical(l_bytes()));
  // L - 1 is canonical.
  auto lm1 = l_bytes();
  lm1[0] -= 1;
  EXPECT_TRUE(sc_is_canonical(lm1));
}

TEST(Sc25519, SmallValuesCanonical) {
  ByteArray<32> one{};
  one[0] = 1;
  EXPECT_TRUE(sc_is_canonical(one));
  EXPECT_TRUE(sc_is_canonical(ByteArray<32>{}));
}

TEST(Sc25519, RoundTrip) {
  Rng rng(42);
  for (int i = 0; i < 50; ++i) {
    const Scalar s = random_scalar(rng);
    const auto enc = sc_to_bytes(s);
    EXPECT_TRUE(sc_is_canonical(enc));
    EXPECT_TRUE(sc_equal(sc_from_bytes(enc), s));
  }
}

TEST(Sc25519, AddCommutative) {
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const Scalar a = random_scalar(rng), b = random_scalar(rng);
    EXPECT_TRUE(sc_equal(sc_add(a, b), sc_add(b, a)));
  }
}

TEST(Sc25519, AddZeroIdentity) {
  Rng rng(9);
  const Scalar a = random_scalar(rng);
  EXPECT_TRUE(sc_equal(sc_add(a, sc_zero()), a));
}

TEST(Sc25519, MulAddSmallValues) {
  // 3 * 4 + 5 = 17.
  ByteArray<32> b3{}, b4{}, b5{}, b17{};
  b3[0] = 3;
  b4[0] = 4;
  b5[0] = 5;
  b17[0] = 17;
  const Scalar r = sc_muladd(sc_from_bytes(b3), sc_from_bytes(b4), sc_from_bytes(b5));
  EXPECT_TRUE(sc_equal(r, sc_from_bytes(b17)));
}

TEST(Sc25519, MulAddDistributes) {
  // a*b + a*c == a*(b+c).
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    const Scalar a = random_scalar(rng), b = random_scalar(rng), c = random_scalar(rng);
    const Scalar lhs = sc_add(sc_muladd(a, b, sc_zero()), sc_muladd(a, c, sc_zero()));
    const Scalar rhs = sc_muladd(a, sc_add(b, c), sc_zero());
    EXPECT_TRUE(sc_equal(lhs, rhs));
  }
}

TEST(Sc25519, MulCommutative) {
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const Scalar a = random_scalar(rng), b = random_scalar(rng);
    EXPECT_TRUE(sc_equal(sc_muladd(a, b, sc_zero()), sc_muladd(b, a, sc_zero())));
  }
}

TEST(Sc25519, WideReductionMatchesNarrowForSmallInputs) {
  Rng rng(17);
  for (int i = 0; i < 20; ++i) {
    ByteArray<32> narrow{};
    Bytes raw = rng.bytes(32);
    std::copy(raw.begin(), raw.end(), narrow.begin());
    ByteArray<64> wide{};
    std::copy(narrow.begin(), narrow.end(), wide.begin());
    EXPECT_TRUE(sc_equal(sc_from_bytes(narrow), sc_from_bytes_wide(wide)));
  }
}

TEST(Sc25519, MulByOneIsIdentity) {
  Rng rng(19);
  ByteArray<32> one{};
  one[0] = 1;
  const Scalar s1 = sc_from_bytes(one);
  for (int i = 0; i < 20; ++i) {
    const Scalar a = random_scalar(rng);
    EXPECT_TRUE(sc_equal(sc_muladd(a, s1, sc_zero()), a));
  }
}

}  // namespace
}  // namespace repchain::crypto
