#include "crypto/x25519.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"

namespace repchain::crypto {
namespace {

ByteArray<32> arr(const std::string& hex) {
  const Bytes b = from_hex(hex);
  ByteArray<32> out{};
  std::copy(b.begin(), b.end(), out.begin());
  return out;
}

// RFC 7748 §5.2, first test vector.
TEST(X25519, Rfc7748Vector1) {
  const auto scalar =
      arr("a546e36bf0527c9d3b16154b82465edd62144c0ac1fc5a18506a2244ba449ac4");
  const auto u = arr("e6db6867583030db3594c1a424b15f7c726624ec26b3353b10a903a6d0ab1c4c");
  EXPECT_EQ(to_hex(view(x25519(scalar, u))),
            "c3da55379de9c6908e94ea4df28d084f32eccf03491c71f754b4075577a28552");
}

// RFC 7748 §6.1: the full Diffie-Hellman example.
TEST(X25519, Rfc7748DiffieHellmanExample) {
  X25519SecretKey alice;
  alice.bytes = arr("77076d0a7318a57d3c16c17251b26645df4c2f87ebc0992ab177fba51db92c2a");
  X25519SecretKey bob;
  bob.bytes = arr("5dab087e624a8a4b79e17f8b83800ee66f3bb1292618b6fd1c2f8b27ff88e0eb");

  const auto alice_pub = x25519_public(alice);
  const auto bob_pub = x25519_public(bob);
  EXPECT_EQ(to_hex(view(alice_pub.bytes)),
            "8520f0098930a754748b7ddcb43ef75a0dbf3a0d26381af4eba4a98eaa9b4e6a");
  EXPECT_EQ(to_hex(view(bob_pub.bytes)),
            "de9edb7d7b7dc1b4d35b61c2ece435373f8343c85b78674dadfc7e146f882b4f");

  const auto shared_a = x25519_shared(alice, bob_pub);
  const auto shared_b = x25519_shared(bob, alice_pub);
  EXPECT_EQ(shared_a, shared_b);
  EXPECT_EQ(to_hex(view(shared_a)),
            "4a5d9d5ba4ce2de1728e3bf480350f25e07e21c947d19e3376f09b3c1e161742");
}

TEST(X25519, SharedSecretsAgreeAcrossRandomPairs) {
  Rng rng(42);
  for (int i = 0; i < 5; ++i) {
    X25519SecretKey a, b;
    Bytes ra = rng.bytes(32), rb = rng.bytes(32);
    std::copy(ra.begin(), ra.end(), a.bytes.begin());
    std::copy(rb.begin(), rb.end(), b.bytes.begin());
    const auto shared_ab = x25519_shared(a, x25519_public(b));
    const auto shared_ba = x25519_shared(b, x25519_public(a));
    EXPECT_EQ(shared_ab, shared_ba) << "pair " << i;
    // Distinct pairs produce distinct secrets.
    X25519SecretKey c;
    Bytes rc = rng.bytes(32);
    std::copy(rc.begin(), rc.end(), c.bytes.begin());
    EXPECT_NE(x25519_shared(a, x25519_public(c)), shared_ab);
  }
}

TEST(X25519, CrossValidatesAgainstEdwardsImplementation) {
  // The Montgomery ladder and the (independently tested) Edwards double-and-
  // add must agree through the birational map u = (1+y)/(1-y): for clamped
  // k, X25519(k, 9) == u([k]B) computed on the Edwards side.
  Rng rng(77);
  for (int i = 0; i < 5; ++i) {
    ByteArray<32> k{};
    const Bytes raw = rng.bytes(32);
    std::copy(raw.begin(), raw.end(), k.begin());
    const ByteArray<32> clamped = x25519_clamp(k);

    // Montgomery side.
    ByteArray<32> base{};
    base[0] = 9;
    const ByteArray<32> mont_u = x25519(clamped, base);

    // Edwards side ([k]B == [k mod L]B since B has order L).
    const Point p = point_base_mul(sc_from_bytes(clamped));
    const Fe zinv = fe_invert(p.Z);
    const Fe y = fe_mul(p.Y, zinv);
    const Fe u = fe_mul(fe_add(fe_one(), y), fe_invert(fe_sub(fe_one(), y)));
    EXPECT_EQ(to_hex(view(mont_u)), to_hex(view(fe_to_bytes(u)))) << "k index " << i;
  }
}

TEST(X25519, ClampSetsExpectedBits) {
  ByteArray<32> k{};
  for (auto& b : k) b = 0xff;
  const auto c = x25519_clamp(k);
  EXPECT_EQ(c[0] & 0x07, 0);
  EXPECT_EQ(c[31] & 0x80, 0);
  EXPECT_EQ(c[31] & 0x40, 0x40);
}

TEST(X25519, DeriveAeadKeyEndToEnd) {
  // Two parties agree on a key and actually seal/open with it.
  Rng rng(99);
  X25519SecretKey a, b;
  Bytes ra = rng.bytes(32), rb = rng.bytes(32);
  std::copy(ra.begin(), ra.end(), a.bytes.begin());
  std::copy(rb.begin(), rb.end(), b.bytes.begin());

  const AeadKey ka = derive_aead_key(x25519_shared(a, x25519_public(b)),
                                     to_bytes("payload-sealing-v1"));
  const AeadKey kb = derive_aead_key(x25519_shared(b, x25519_public(a)),
                                     to_bytes("payload-sealing-v1"));
  EXPECT_EQ(ka.bytes, kb.bytes);

  AeadNonce nonce{};
  const Bytes sealed = aead_seal(ka, nonce, to_bytes("secret"), Bytes{});
  const auto opened = aead_open(kb, nonce, sealed, Bytes{});
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, to_bytes("secret"));

  // A different label yields a different (incompatible) key.
  const AeadKey other = derive_aead_key(x25519_shared(a, x25519_public(b)),
                                        to_bytes("different-context"));
  EXPECT_FALSE(aead_open(other, nonce, sealed, Bytes{}).has_value());
}

}  // namespace
}  // namespace repchain::crypto
