#include "crypto/merkle.hpp"

#include <gtest/gtest.h>

#include "common/errors.hpp"

namespace repchain::crypto {
namespace {

std::vector<Bytes> make_leaves(std::size_t n) {
  std::vector<Bytes> leaves;
  for (std::size_t i = 0; i < n; ++i) {
    leaves.push_back(to_bytes("leaf-" + std::to_string(i)));
  }
  return leaves;
}

TEST(Merkle, EmptyTreeHasZeroRoot) {
  MerkleTree t({});
  EXPECT_EQ(t.root(), Hash256{});
  EXPECT_EQ(t.leaf_count(), 0u);
}

TEST(Merkle, SingleLeafRootIsLeafHash) {
  const auto leaves = make_leaves(1);
  MerkleTree t(leaves);
  EXPECT_EQ(t.root(), MerkleTree::hash_leaf(leaves[0]));
}

TEST(Merkle, LeafAndNodeHashesAreDomainSeparated) {
  // hash_leaf(x) must never equal hash_node applied to the same bytes.
  const Bytes x(64, 0x42);
  Hash256 l{}, r{};
  std::copy(x.begin(), x.begin() + 32, l.begin());
  std::copy(x.begin() + 32, x.end(), r.begin());
  EXPECT_NE(MerkleTree::hash_leaf(x), MerkleTree::hash_node(l, r));
}

TEST(Merkle, RootChangesWithAnyLeaf) {
  auto leaves = make_leaves(8);
  MerkleTree base(leaves);
  for (std::size_t i = 0; i < leaves.size(); ++i) {
    auto mutated = leaves;
    mutated[i].push_back(0xff);
    MerkleTree t(mutated);
    EXPECT_NE(t.root(), base.root()) << "leaf " << i;
  }
}

TEST(Merkle, RootDependsOnOrder) {
  auto leaves = make_leaves(4);
  MerkleTree a(leaves);
  std::swap(leaves[0], leaves[3]);
  MerkleTree b(leaves);
  EXPECT_NE(a.root(), b.root());
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  for (std::size_t i = 0; i < n; ++i) {
    const auto proof = t.prove(i);
    EXPECT_TRUE(MerkleTree::verify(t.root(), leaves[i], proof)) << "leaf " << i;
  }
}

TEST_P(MerkleProofTest, ProofForWrongLeafFails) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  const auto proof = t.prove(0);
  EXPECT_FALSE(MerkleTree::verify(t.root(), to_bytes("not-a-leaf"), proof));
}

TEST_P(MerkleProofTest, TamperedProofFails) {
  const std::size_t n = GetParam();
  const auto leaves = make_leaves(n);
  MerkleTree t(leaves);
  auto proof = t.prove(n / 2);
  if (!proof.steps.empty()) {
    proof.steps[0].sibling[0] ^= 0x01;
    EXPECT_FALSE(MerkleTree::verify(t.root(), leaves[n / 2], proof));
  }
}

// Odd sizes exercise the duplicated-last-node path.
INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 15, 16, 17, 33));

TEST(Merkle, ProveOutOfRangeThrows) {
  MerkleTree t(make_leaves(4));
  EXPECT_THROW((void)t.prove(4), ConfigError);
}

TEST(Merkle, VerifyAgainstWrongRootFails) {
  const auto leaves = make_leaves(6);
  MerkleTree t(leaves);
  Hash256 wrong = t.root();
  wrong[31] ^= 0x80;
  EXPECT_FALSE(MerkleTree::verify(wrong, leaves[2], t.prove(2)));
}

}  // namespace
}  // namespace repchain::crypto
