#include "crypto/ed25519.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::crypto {
namespace {

Scalar scalar_from_u64(std::uint64_t x) {
  ByteArray<32> b{};
  for (int i = 0; i < 8; ++i) b[i] = static_cast<std::uint8_t>(x >> (8 * i));
  return sc_from_bytes(b);
}

TEST(Ed25519Group, BasePointOnCurve) {
  // -x^2 + y^2 == 1 + d*x^2*y^2 for the affine base point.
  const Point& b = point_base();
  const Fe zinv = fe_invert(b.Z);
  const Fe x = fe_mul(b.X, zinv);
  const Fe y = fe_mul(b.Y, zinv);
  const Fe lhs = fe_sub(fe_sq(y), fe_sq(x));
  const Fe rhs = fe_add(fe_one(), fe_mul(fe_edwards_d(), fe_mul(fe_sq(x), fe_sq(y))));
  EXPECT_TRUE(fe_equal(lhs, rhs));
}

TEST(Ed25519Group, BasePointHasEvenX) {
  const auto enc = point_compress(point_base());
  EXPECT_EQ(enc[31] & 0x80, 0);
}

TEST(Ed25519Group, IdentityLaws) {
  const Point id = point_identity();
  const Point& b = point_base();
  EXPECT_TRUE(point_is_identity(id));
  EXPECT_TRUE(point_equal(point_add(b, id), b));
  EXPECT_TRUE(point_equal(point_add(id, b), b));
}

TEST(Ed25519Group, NegationCancels) {
  const Point& b = point_base();
  EXPECT_TRUE(point_is_identity(point_add(b, point_neg(b))));
}

TEST(Ed25519Group, AdditionCommutative) {
  const Point p = point_base_mul(scalar_from_u64(5));
  const Point q = point_base_mul(scalar_from_u64(11));
  EXPECT_TRUE(point_equal(point_add(p, q), point_add(q, p)));
}

TEST(Ed25519Group, AdditionAssociative) {
  const Point p = point_base_mul(scalar_from_u64(3));
  const Point q = point_base_mul(scalar_from_u64(7));
  const Point r = point_base_mul(scalar_from_u64(13));
  EXPECT_TRUE(
      point_equal(point_add(point_add(p, q), r), point_add(p, point_add(q, r))));
}

TEST(Ed25519Group, ScalarMulMatchesRepeatedAddition) {
  const Point& b = point_base();
  Point acc = point_identity();
  for (std::uint64_t k = 0; k <= 16; ++k) {
    EXPECT_TRUE(point_equal(point_base_mul(scalar_from_u64(k)), acc)) << "k=" << k;
    acc = point_add(acc, b);
  }
}

TEST(Ed25519Group, ScalarMulDistributes) {
  // (a+b)P == aP + bP.
  const Scalar a = scalar_from_u64(123456789);
  const Scalar b = scalar_from_u64(987654321);
  const Point lhs = point_base_mul(sc_add(a, b));
  const Point rhs = point_add(point_base_mul(a), point_base_mul(b));
  EXPECT_TRUE(point_equal(lhs, rhs));
}

TEST(Ed25519Group, OrderLAnnihilatesBase) {
  // [L]B == identity, checked via [L-1]B + B.
  ByteArray<32> lm1 = {};
  const Bytes l_minus_1 =
      from_hex("ecd3f55c1a631258d69cf7a2def9de1400000000000000000000000000000010");
  std::copy(l_minus_1.begin(), l_minus_1.end(), lm1.begin());
  const Point p = point_scalar_mul(point_base(), sc_from_bytes(lm1));
  EXPECT_TRUE(point_is_identity(point_add(p, point_base())));
}

TEST(Ed25519Group, DoubleScalarMatchesTwoLadders) {
  Rng rng(777);
  for (int i = 0; i < 10; ++i) {
    ByteArray<64> wa{}, wb{};
    Bytes ra = rng.bytes(64), rb = rng.bytes(64);
    std::copy(ra.begin(), ra.end(), wa.begin());
    std::copy(rb.begin(), rb.end(), wb.begin());
    const Scalar a = sc_from_bytes_wide(wa);
    const Scalar b = sc_from_bytes_wide(wb);
    const Point p = point_base_mul(scalar_from_u64(9999 + i));

    const Point fast = point_double_scalar_mul(a, p, b);
    const Point slow = point_add(point_scalar_mul(p, a), point_base_mul(b));
    EXPECT_TRUE(point_equal(fast, slow)) << "i=" << i;
  }
}

TEST(Ed25519Group, DoubleScalarZeroEdges) {
  const Scalar zero = sc_zero();
  const Scalar five = scalar_from_u64(5);
  const Point p = point_base_mul(scalar_from_u64(3));
  EXPECT_TRUE(point_is_identity(point_double_scalar_mul(zero, p, zero)));
  EXPECT_TRUE(point_equal(point_double_scalar_mul(zero, p, five), point_base_mul(five)));
  EXPECT_TRUE(
      point_equal(point_double_scalar_mul(five, p, zero), point_scalar_mul(p, five)));
}

TEST(Ed25519Group, CompressDecompressRoundTrip) {
  for (std::uint64_t k : {1ULL, 2ULL, 3ULL, 99ULL, 0xdeadbeefULL}) {
    const Point p = point_base_mul(scalar_from_u64(k));
    const auto enc = point_compress(p);
    const auto q = point_decompress(enc);
    ASSERT_TRUE(q.has_value()) << "k=" << k;
    EXPECT_TRUE(point_equal(p, *q));
    EXPECT_EQ(point_compress(*q), enc);
  }
}

TEST(Ed25519Group, DecompressRejectsOffCurve) {
  // Brute scan: some encodings must be rejected (roughly half of y values
  // have no matching x).
  int rejected = 0;
  for (std::uint8_t y0 = 0; y0 < 50; ++y0) {
    ByteArray<32> enc{};
    enc[0] = y0;
    if (!point_decompress(enc)) ++rejected;
  }
  EXPECT_GT(rejected, 5);
}

TEST(Ed25519Group, DecompressRejectsMinusZeroX) {
  // y = 1 gives x = 0; the encoding with sign bit set must be rejected.
  ByteArray<32> enc{};
  enc[0] = 1;
  ASSERT_TRUE(point_decompress(enc).has_value());
  enc[31] |= 0x80;
  EXPECT_FALSE(point_decompress(enc).has_value());
}

TEST(Ed25519Sign, SignVerifyRoundTrip) {
  Rng rng(1001);
  for (int i = 0; i < 5; ++i) {
    const SigningKey key(random_seed(rng));
    const Bytes msg = to_bytes("message number " + std::to_string(i));
    const Signature sig = key.sign(msg);
    EXPECT_TRUE(verify(key.public_key(), msg, sig));
  }
}

TEST(Ed25519Sign, EmptyMessage) {
  Rng rng(1002);
  const SigningKey key(random_seed(rng));
  const Signature sig = key.sign(Bytes{});
  EXPECT_TRUE(verify(key.public_key(), Bytes{}, sig));
}

TEST(Ed25519Sign, DeterministicSignatures) {
  Rng rng(1003);
  const SigningKey key(random_seed(rng));
  const Bytes msg = to_bytes("determinism matters for the VRF");
  EXPECT_EQ(key.sign(msg), key.sign(msg));
}

TEST(Ed25519Sign, TamperedMessageRejected) {
  Rng rng(1004);
  const SigningKey key(random_seed(rng));
  Bytes msg = to_bytes("original payload");
  const Signature sig = key.sign(msg);
  msg[0] ^= 0x01;
  EXPECT_FALSE(verify(key.public_key(), msg, sig));
}

TEST(Ed25519Sign, TamperedSignatureRejected) {
  Rng rng(1005);
  const SigningKey key(random_seed(rng));
  const Bytes msg = to_bytes("payload");
  for (std::size_t byte : {0u, 31u, 32u, 63u}) {
    Signature sig = key.sign(msg);
    sig.bytes[byte] ^= 0x01;
    EXPECT_FALSE(verify(key.public_key(), msg, sig)) << "byte " << byte;
  }
}

TEST(Ed25519Sign, WrongKeyRejected) {
  Rng rng(1006);
  const SigningKey a(random_seed(rng));
  const SigningKey b(random_seed(rng));
  const Bytes msg = to_bytes("payload");
  EXPECT_FALSE(verify(b.public_key(), msg, a.sign(msg)));
}

TEST(Ed25519Sign, NonCanonicalSRejected) {
  Rng rng(1007);
  const SigningKey key(random_seed(rng));
  const Bytes msg = to_bytes("payload");
  Signature sig = key.sign(msg);
  // Force S >= L by setting the top byte to a value that pushes it over.
  sig.bytes[63] = 0xff;
  EXPECT_FALSE(verify(key.public_key(), msg, sig));
}

TEST(Ed25519Sign, DifferentSeedsDifferentKeys) {
  Rng rng(1008);
  const SigningKey a(random_seed(rng));
  const SigningKey b(random_seed(rng));
  EXPECT_NE(a.public_key(), b.public_key());
}

TEST(Ed25519Sign, SameSeedSameKey) {
  PrivateSeed seed;
  for (std::size_t i = 0; i < 32; ++i) seed.bytes[i] = static_cast<std::uint8_t>(i);
  const SigningKey a(seed), b(seed);
  EXPECT_EQ(a.public_key(), b.public_key());
  EXPECT_EQ(a.sign(to_bytes("x")), b.sign(to_bytes("x")));
}

TEST(Ed25519Sign, LongMessage) {
  Rng rng(1009);
  const SigningKey key(random_seed(rng));
  const Bytes msg = rng.bytes(10000);
  EXPECT_TRUE(verify(key.public_key(), msg, key.sign(msg)));
}

}  // namespace
}  // namespace repchain::crypto
