#include "crypto/vrf.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::crypto {
namespace {

TEST(Vrf, EvaluateVerifyRoundTrip) {
  Rng rng(2001);
  const SigningKey key(random_seed(rng));
  const Bytes alpha = to_bytes("round-1|gov-3|stake-0");
  const VrfResult r = vrf_evaluate(key, alpha);
  const auto out = vrf_verify(key.public_key(), alpha, r.proof);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, r.output);
}

TEST(Vrf, DeterministicOutput) {
  Rng rng(2002);
  const SigningKey key(random_seed(rng));
  const Bytes alpha = to_bytes("same input");
  EXPECT_EQ(vrf_evaluate(key, alpha).output, vrf_evaluate(key, alpha).output);
}

TEST(Vrf, DistinctInputsDistinctOutputs) {
  Rng rng(2003);
  const SigningKey key(random_seed(rng));
  EXPECT_NE(vrf_evaluate(key, to_bytes("a")).output,
            vrf_evaluate(key, to_bytes("b")).output);
}

TEST(Vrf, DistinctKeysDistinctOutputs) {
  Rng rng(2004);
  const SigningKey a(random_seed(rng));
  const SigningKey b(random_seed(rng));
  const Bytes alpha = to_bytes("shared input");
  EXPECT_NE(vrf_evaluate(a, alpha).output, vrf_evaluate(b, alpha).output);
}

TEST(Vrf, WrongKeyProofRejected) {
  Rng rng(2005);
  const SigningKey a(random_seed(rng));
  const SigningKey b(random_seed(rng));
  const Bytes alpha = to_bytes("input");
  const VrfResult r = vrf_evaluate(a, alpha);
  EXPECT_FALSE(vrf_verify(b.public_key(), alpha, r.proof).has_value());
}

TEST(Vrf, WrongInputProofRejected) {
  Rng rng(2006);
  const SigningKey key(random_seed(rng));
  const VrfResult r = vrf_evaluate(key, to_bytes("input-1"));
  EXPECT_FALSE(vrf_verify(key.public_key(), to_bytes("input-2"), r.proof).has_value());
}

TEST(Vrf, TamperedProofRejected) {
  Rng rng(2007);
  const SigningKey key(random_seed(rng));
  const Bytes alpha = to_bytes("input");
  VrfResult r = vrf_evaluate(key, alpha);
  r.proof.bytes[10] ^= 0x01;
  EXPECT_FALSE(vrf_verify(key.public_key(), alpha, r.proof).has_value());
}

TEST(Vrf, OutputToU64BigEndianPrefix) {
  Hash512 out{};
  out[0] = 0x01;
  out[7] = 0xff;
  EXPECT_EQ(vrf_output_to_u64(out), 0x01000000000000ffULL);
}

TEST(Vrf, OutputsLookUniform) {
  // Crude uniformity check: over many (key, input) pairs the leading bit of
  // the u64 projection should be ~50/50.
  Rng rng(2008);
  const SigningKey key(random_seed(rng));
  int high = 0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const VrfResult r = vrf_evaluate(key, to_bytes("input-" + std::to_string(i)));
    if (vrf_output_to_u64(r.output) >> 63) ++high;
  }
  EXPECT_GT(high, n / 4);
  EXPECT_LT(high, 3 * n / 4);
}

}  // namespace
}  // namespace repchain::crypto
