#include <gtest/gtest.h>

#include <string>

#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace repchain::crypto {
namespace {

Bytes msg(std::string_view s) { return to_bytes(s); }

// FIPS 180-4 / NIST CAVP known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(to_hex(view(Sha256::hash(msg("")))),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(to_hex(view(Sha256::hash(msg("abc")))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(to_hex(view(Sha256::hash(
                msg("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq")))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(msg(chunk));
  EXPECT_EQ(to_hex(view(h.finish())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes data = msg("the quick brown fox jumps over the lazy dog, repeatedly");
  Sha256 inc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    inc.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(inc.finish(), Sha256::hash(data));
}

TEST(Sha256, UnevenChunkingMatchesOneShot) {
  Bytes data;
  for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(i * 7));
  for (std::size_t split = 0; split <= data.size(); split += 37) {
    Sha256 h;
    h.update(BytesView(data.data(), split));
    h.update(BytesView(data.data() + split, data.size() - split));
    EXPECT_EQ(h.finish(), Sha256::hash(data)) << "split=" << split;
  }
}

TEST(Sha256, BoundarySizesDiffer) {
  // Messages straddling the 55/56/63/64-byte padding boundaries all hash
  // without error and produce distinct digests.
  std::set<std::string> seen;
  for (std::size_t n : {0u, 1u, 55u, 56u, 57u, 63u, 64u, 65u, 127u, 128u, 129u}) {
    const Bytes data(n, 0x5a);
    seen.insert(to_hex(view(Sha256::hash(data))));
  }
  EXPECT_EQ(seen.size(), 11u);
}

TEST(Sha256, ConcatHelper) {
  const Bytes a = msg("ab"), b = msg("c");
  EXPECT_EQ(sha256_concat({a, b}), Sha256::hash(msg("abc")));
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(to_hex(view(Sha512::hash(msg("")))),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
  EXPECT_EQ(to_hex(view(Sha512::hash(msg("abc")))),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
  EXPECT_EQ(to_hex(view(Sha512::hash(msg(
                "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmn"
                "hijklmnoijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu")))),
            "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
            "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionA) {
  Sha512 h;
  const std::string chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.update(msg(chunk));
  EXPECT_EQ(to_hex(view(h.finish())),
            "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
            "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  const Bytes data = msg("incremental hashing should match one-shot hashing exactly");
  Sha512 inc;
  for (std::size_t i = 0; i < data.size(); ++i) {
    inc.update(BytesView(&data[i], 1));
  }
  EXPECT_EQ(inc.finish(), Sha512::hash(data));
}

TEST(Sha512, BoundarySizesDiffer) {
  std::set<std::string> seen;
  for (std::size_t n : {0u, 1u, 111u, 112u, 113u, 127u, 128u, 129u, 255u, 256u}) {
    const Bytes data(n, 0xa5);
    seen.insert(to_hex(view(Sha512::hash(data))));
  }
  EXPECT_EQ(seen.size(), 10u);
}

}  // namespace
}  // namespace repchain::crypto
