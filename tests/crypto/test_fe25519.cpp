#include "crypto/fe25519.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace repchain::crypto {
namespace {

Fe random_fe(Rng& rng) {
  ByteArray<32> b{};
  const Bytes raw = rng.bytes(32);
  std::copy(raw.begin(), raw.end(), b.begin());
  b[31] &= 0x7f;
  return fe_from_bytes(b);
}

TEST(Fe25519, ZeroAndOne) {
  EXPECT_TRUE(fe_is_zero(fe_zero()));
  EXPECT_FALSE(fe_is_zero(fe_one()));
  EXPECT_TRUE(fe_equal(fe_mul(fe_one(), fe_one()), fe_one()));
  EXPECT_TRUE(fe_equal(fe_add(fe_zero(), fe_one()), fe_one()));
}

TEST(Fe25519, BytesRoundTrip) {
  Rng rng(123);
  for (int i = 0; i < 50; ++i) {
    const Fe f = random_fe(rng);
    const auto enc = fe_to_bytes(f);
    const Fe g = fe_from_bytes(enc);
    EXPECT_TRUE(fe_equal(f, g));
    EXPECT_EQ(fe_to_bytes(g), enc);
  }
}

TEST(Fe25519, CanonicalEncodingReducesP) {
  // p itself encodes to zero: bytes of p = 2^255 - 19.
  ByteArray<32> p_bytes{};
  p_bytes[0] = 0xed;
  for (int i = 1; i < 31; ++i) p_bytes[i] = 0xff;
  p_bytes[31] = 0x7f;
  const Fe f = fe_from_bytes(p_bytes);
  EXPECT_TRUE(fe_is_zero(f));
  EXPECT_EQ(fe_to_bytes(f), ByteArray<32>{});
}

TEST(Fe25519, AddSubInverse) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const Fe a = random_fe(rng);
    const Fe b = random_fe(rng);
    EXPECT_TRUE(fe_equal(fe_sub(fe_add(a, b), b), a));
    EXPECT_TRUE(fe_equal(fe_add(fe_sub(a, b), b), a));
  }
}

TEST(Fe25519, NegationIsAdditiveInverse) {
  Rng rng(11);
  for (int i = 0; i < 50; ++i) {
    const Fe a = random_fe(rng);
    EXPECT_TRUE(fe_is_zero(fe_add(a, fe_neg(a))));
  }
}

TEST(Fe25519, MulCommutativeAssociativeDistributive) {
  Rng rng(13);
  for (int i = 0; i < 30; ++i) {
    const Fe a = random_fe(rng), b = random_fe(rng), c = random_fe(rng);
    EXPECT_TRUE(fe_equal(fe_mul(a, b), fe_mul(b, a)));
    EXPECT_TRUE(fe_equal(fe_mul(fe_mul(a, b), c), fe_mul(a, fe_mul(b, c))));
    EXPECT_TRUE(
        fe_equal(fe_mul(a, fe_add(b, c)), fe_add(fe_mul(a, b), fe_mul(a, c))));
  }
}

TEST(Fe25519, SquareMatchesMul) {
  Rng rng(17);
  for (int i = 0; i < 50; ++i) {
    const Fe a = random_fe(rng);
    EXPECT_TRUE(fe_equal(fe_sq(a), fe_mul(a, a)));
  }
}

TEST(Fe25519, InvertIsMultiplicativeInverse) {
  Rng rng(19);
  for (int i = 0; i < 20; ++i) {
    Fe a = random_fe(rng);
    if (fe_is_zero(a)) a = fe_one();
    EXPECT_TRUE(fe_equal(fe_mul(a, fe_invert(a)), fe_one()));
  }
}

TEST(Fe25519, SmallIntegerArithmetic) {
  const Fe six = fe_from_u64(6);
  const Fe seven = fe_from_u64(7);
  EXPECT_TRUE(fe_equal(fe_mul(six, seven), fe_from_u64(42)));
  EXPECT_TRUE(fe_equal(fe_add(six, seven), fe_from_u64(13)));
}

TEST(Fe25519, LargeU64Load) {
  // 2^51 boundary straddling value loads correctly.
  const std::uint64_t big = (1ULL << 63) + 12345;
  const Fe f = fe_from_u64(big);
  const Fe viaAdd = [&] {
    Fe acc = fe_zero();
    const Fe two32 = fe_from_u64(1ULL << 32);
    Fe hi = fe_from_u64(big >> 32);
    acc = fe_mul(hi, two32);
    return fe_add(acc, fe_from_u64(big & 0xffffffffULL));
  }();
  EXPECT_TRUE(fe_equal(f, viaAdd));
}

TEST(Fe25519, SqrtM1SquaresToMinusOne) {
  const Fe s = fe_sqrtm1();
  EXPECT_TRUE(fe_equal(fe_sq(s), fe_neg(fe_one())));
}

TEST(Fe25519, EdwardsDMatchesDefinition) {
  // d * 121666 == -121665.
  const Fe lhs = fe_mul(fe_edwards_d(), fe_from_u64(121666));
  EXPECT_TRUE(fe_equal(lhs, fe_neg(fe_from_u64(121665))));
}

TEST(Fe25519, FermatLittleTheorem) {
  // a^(p-1) == 1 for a != 0 (via invert: a * a^(p-2)).
  Rng rng(23);
  Fe a = random_fe(rng);
  if (fe_is_zero(a)) a = fe_from_u64(2);
  const Fe a_inv = fe_invert(a);
  EXPECT_TRUE(fe_equal(fe_mul(a_inv, fe_mul(a, a)), a));
}

TEST(Fe25519, PowMatchesRepeatedMul) {
  const Fe a = fe_from_u64(3);
  ByteArray<32> exp{};
  exp[0] = 13;  // a^13
  Fe expected = fe_one();
  for (int i = 0; i < 13; ++i) expected = fe_mul(expected, a);
  EXPECT_TRUE(fe_equal(fe_pow(a, exp), expected));
}

TEST(Fe25519, IsNegativeMatchesLsb) {
  EXPECT_FALSE(fe_is_negative(fe_zero()));
  EXPECT_TRUE(fe_is_negative(fe_one()));
  EXPECT_FALSE(fe_is_negative(fe_from_u64(2)));
}

}  // namespace
}  // namespace repchain::crypto
