#include "crypto/hmac.hpp"

#include <gtest/gtest.h>

namespace repchain::crypto {
namespace {

// RFC 4231 test case 2 ("Jefe").
TEST(Hmac, Rfc4231Case2Sha256) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(view(hmac_sha256(key, data))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, Rfc4231Case2Sha512) {
  const Bytes key = to_bytes("Jefe");
  const Bytes data = to_bytes("what do ya want for nothing?");
  EXPECT_EQ(to_hex(view(hmac_sha512(key, data))),
            "164b7a7bfcf819e2e395fbe73b56e0a387bd64222e831fd610270cd7ea250554"
            "9758bf75c05a994a6d034f65f8f0e6fdcaeab1a34d4a6b4b636e070a38bce737");
}

// RFC 4231 test case 1 (20 bytes of 0x0b, "Hi There").
TEST(Hmac, Rfc4231Case1Sha256) {
  const Bytes key(20, 0x0b);
  const Bytes data = to_bytes("Hi There");
  EXPECT_EQ(to_hex(view(hmac_sha256(key, data))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(Hmac, KeyLongerThanBlockIsHashedFirst) {
  const Bytes long_key(200, 0xaa);
  const Bytes data = to_bytes("message");
  // Must not throw and must differ from using the truncated key directly.
  const auto with_long = hmac_sha256(long_key, data);
  const Bytes prefix(long_key.begin(), long_key.begin() + 64);
  const auto with_prefix = hmac_sha256(prefix, data);
  EXPECT_NE(to_hex(view(with_long)), to_hex(view(with_prefix)));
}

TEST(Hmac, DifferentKeysDifferentMacs) {
  const Bytes data = to_bytes("same message");
  EXPECT_NE(to_hex(view(hmac_sha256(to_bytes("k1"), data))),
            to_hex(view(hmac_sha256(to_bytes("k2"), data))));
}

TEST(Hmac, DifferentMessagesDifferentMacs) {
  const Bytes key = to_bytes("key");
  EXPECT_NE(to_hex(view(hmac_sha256(key, to_bytes("m1")))),
            to_hex(view(hmac_sha256(key, to_bytes("m2")))));
}

TEST(Hmac, DeriveKeyDeterministicAndLabelSeparated) {
  const Bytes master = to_bytes("master-secret");
  const auto k1 = derive_key(master, to_bytes("label-a"));
  const auto k1_again = derive_key(master, to_bytes("label-a"));
  const auto k2 = derive_key(master, to_bytes("label-b"));
  EXPECT_EQ(k1, k1_again);
  EXPECT_NE(to_hex(view(k1)), to_hex(view(k2)));
}

}  // namespace
}  // namespace repchain::crypto
