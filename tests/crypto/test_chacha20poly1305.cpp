#include "crypto/chacha20poly1305.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace repchain::crypto {
namespace {

AeadKey make_key(std::uint8_t seed = 0) {
  AeadKey k;
  for (std::size_t i = 0; i < 32; ++i) k.bytes[i] = static_cast<std::uint8_t>(seed + i);
  return k;
}

AeadNonce make_nonce(std::uint8_t seed = 0) {
  AeadNonce n;
  for (std::size_t i = 0; i < 12; ++i) n.bytes[i] = static_cast<std::uint8_t>(seed + i);
  return n;
}

// RFC 8439 §2.3.2: ChaCha20 block-function known-answer, exercised through
// the XOR interface (keystream = XOR with zeros).
TEST(ChaCha20, Rfc8439BlockFunctionVector) {
  AeadKey key;
  for (std::size_t i = 0; i < 32; ++i) key.bytes[i] = static_cast<std::uint8_t>(i);
  AeadNonce nonce{};
  const Bytes n = from_hex("000000090000004a00000000");
  std::copy(n.begin(), n.end(), nonce.bytes.begin());

  const Bytes keystream = chacha20_xor(key, nonce, 1, Bytes(64, 0));
  EXPECT_EQ(to_hex(keystream),
            "10f1e7e4d13b5915500fdd1fa32071c4c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2b5129cd1de164eb9cbd083e8a2503c4e");
}

// RFC 8439 §2.4.2: ChaCha20 encryption of the "sunscreen" plaintext.
TEST(ChaCha20, Rfc8439EncryptionVector) {
  AeadKey key;
  for (std::size_t i = 0; i < 32; ++i) key.bytes[i] = static_cast<std::uint8_t>(i);
  AeadNonce nonce{};
  const Bytes n = from_hex("000000000000004a00000000");
  std::copy(n.begin(), n.end(), nonce.bytes.begin());

  const Bytes plaintext = to_bytes(
      "Ladies and Gentlemen of the class of '99: If I could offer you "
      "only one tip for the future, sunscreen would be it.");
  const Bytes ct = chacha20_xor(key, nonce, 1, plaintext);
  EXPECT_EQ(to_hex(Bytes(ct.begin(), ct.begin() + 32)),
            "6e2e359a2568f98041ba0728dd0d6981e97e7aec1d4360c20a27afccfd9fae0b");
}

// RFC 8439 §2.5.2: Poly1305 known-answer.
TEST(Poly1305, Rfc8439Vector) {
  ByteArray<32> key{};
  const Bytes k = from_hex(
      "85d6be7857556d337f4452fe42d506a80103808afb0db2fd4abff6af4149f51b");
  std::copy(k.begin(), k.end(), key.begin());
  const Bytes msg = to_bytes("Cryptographic Forum Research Group");
  EXPECT_EQ(to_hex(view(poly1305(key, msg))), "a8061dc1305136c6c22b8baf0c0127a9");
}

TEST(Poly1305, EmptyMessageIsSOnly) {
  ByteArray<32> key{};
  for (std::size_t i = 16; i < 32; ++i) key[i] = static_cast<std::uint8_t>(i);
  // r = 0 and no blocks: tag == s.
  const auto tag = poly1305(key, Bytes{});
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(tag[i], key[16 + i]);
  }
}

TEST(Aead, SealOpenRoundTrip) {
  const AeadKey key = make_key(1);
  const AeadNonce nonce = make_nonce(2);
  const Bytes plaintext = to_bytes("confidential ride request: A -> B, fare 12");
  const Bytes aad = to_bytes("provider-7|seq-3");

  const Bytes sealed = aead_seal(key, nonce, plaintext, aad);
  EXPECT_EQ(sealed.size(), plaintext.size() + kAeadTagSize);
  const auto opened = aead_open(key, nonce, sealed, aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, EmptyPlaintextAndAad) {
  const AeadKey key = make_key(3);
  const AeadNonce nonce = make_nonce(4);
  const Bytes sealed = aead_seal(key, nonce, Bytes{}, Bytes{});
  EXPECT_EQ(sealed.size(), kAeadTagSize);
  const auto opened = aead_open(key, nonce, sealed, Bytes{});
  ASSERT_TRUE(opened.has_value());
  EXPECT_TRUE(opened->empty());
}

TEST(Aead, TamperedCiphertextRejected) {
  const AeadKey key = make_key(5);
  const AeadNonce nonce = make_nonce(6);
  const Bytes plaintext = to_bytes("payload");
  Bytes sealed = aead_seal(key, nonce, plaintext, Bytes{});
  for (std::size_t pos : {std::size_t{0}, sealed.size() - 1, sealed.size() / 2}) {
    Bytes mutated = sealed;
    mutated[pos] ^= 0x01;
    EXPECT_FALSE(aead_open(key, nonce, mutated, Bytes{}).has_value()) << pos;
  }
}

TEST(Aead, WrongAadRejected) {
  const AeadKey key = make_key(7);
  const AeadNonce nonce = make_nonce(8);
  const Bytes sealed = aead_seal(key, nonce, to_bytes("p"), to_bytes("aad-1"));
  EXPECT_FALSE(aead_open(key, nonce, sealed, to_bytes("aad-2")).has_value());
}

TEST(Aead, WrongKeyOrNonceRejected) {
  const Bytes sealed = aead_seal(make_key(9), make_nonce(10), to_bytes("p"), Bytes{});
  EXPECT_FALSE(aead_open(make_key(11), make_nonce(10), sealed, Bytes{}).has_value());
  EXPECT_FALSE(aead_open(make_key(9), make_nonce(12), sealed, Bytes{}).has_value());
}

TEST(Aead, TruncatedSealedRejected) {
  const AeadKey key = make_key(13);
  const AeadNonce nonce = make_nonce(14);
  EXPECT_FALSE(aead_open(key, nonce, Bytes(8, 0), Bytes{}).has_value());
}

TEST(Aead, LargeMessageRoundTrip) {
  Rng rng(99);
  const AeadKey key = make_key(15);
  const AeadNonce nonce = make_nonce(16);
  const Bytes plaintext = rng.bytes(10000);  // many keystream blocks
  const Bytes aad = rng.bytes(100);
  const auto opened = aead_open(key, nonce, aead_seal(key, nonce, plaintext, aad), aad);
  ASSERT_TRUE(opened.has_value());
  EXPECT_EQ(*opened, plaintext);
}

TEST(Aead, DistinctNoncesDistinctCiphertexts) {
  const AeadKey key = make_key(17);
  const Bytes plaintext = to_bytes("same plaintext");
  const Bytes a = aead_seal(key, make_nonce(1), plaintext, Bytes{});
  const Bytes b = aead_seal(key, make_nonce(2), plaintext, Bytes{});
  EXPECT_NE(a, b);
}

}  // namespace
}  // namespace repchain::crypto
