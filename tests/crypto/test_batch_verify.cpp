#include "crypto/batch_verify.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/keygen.hpp"

namespace repchain::crypto {
namespace {

std::vector<BatchItem> make_batch(Rng& rng, std::size_t n) {
  std::vector<BatchItem> items;
  for (std::size_t i = 0; i < n; ++i) {
    const SigningKey key(random_seed(rng));
    BatchItem item;
    item.pub = key.public_key();
    item.message = to_bytes("message-" + std::to_string(i));
    item.sig = key.sign(item.message);
    items.push_back(std::move(item));
  }
  return items;
}

TEST(BatchVerify, EmptyBatchPasses) {
  Rng rng(1);
  EXPECT_TRUE(verify_batch({}, rng));
}

TEST(BatchVerify, SingleValidSignature) {
  Rng rng(2);
  const auto items = make_batch(rng, 1);
  EXPECT_TRUE(verify_batch(items, rng));
}

TEST(BatchVerify, ManyValidSignatures) {
  Rng rng(3);
  for (std::size_t n : {2u, 5u, 16u, 33u}) {
    const auto items = make_batch(rng, n);
    EXPECT_TRUE(verify_batch(items, rng)) << "n=" << n;
  }
}

TEST(BatchVerify, SingleCorruptionFailsBatch) {
  Rng rng(4);
  for (std::size_t corrupt_at : {0u, 3u, 7u}) {
    auto items = make_batch(rng, 8);
    items[corrupt_at].message.push_back(0xff);
    EXPECT_FALSE(verify_batch(items, rng)) << "corrupt_at=" << corrupt_at;
  }
}

TEST(BatchVerify, WrongKeyFailsBatch) {
  Rng rng(5);
  auto items = make_batch(rng, 4);
  std::swap(items[0].pub, items[1].pub);
  EXPECT_FALSE(verify_batch(items, rng));
}

TEST(BatchVerify, MalformedSignatureFailsBatch) {
  Rng rng(6);
  auto items = make_batch(rng, 3);
  items[1].sig.bytes[63] = 0xff;  // non-canonical S
  EXPECT_FALSE(verify_batch(items, rng));
}

TEST(BatchVerify, ComplementaryCorruptionsDoNotCancel) {
  // Tamper two signatures so that with unit coefficients the errors would
  // cancel (S_0 += 1, S_1 -= 1 over the same key would sum identically);
  // random z_i must still catch it.
  Rng rng(7);
  const SigningKey key(random_seed(rng));
  const Bytes msg = to_bytes("same message");
  BatchItem a, b;
  a.pub = b.pub = key.public_key();
  a.message = b.message = msg;
  a.sig = b.sig = key.sign(msg);

  // S_a += 1 (mod L), S_b -= 1 (mod L), via byte-level add/sub with carry.
  auto bump = [](Signature& sig, int delta) {
    int carry = delta;
    for (std::size_t i = 32; i < 64 && carry != 0; ++i) {
      const int v = static_cast<int>(sig.bytes[i]) + carry;
      sig.bytes[i] = static_cast<std::uint8_t>((v + 256) % 256);
      carry = v < 0 ? -1 : (v > 255 ? 1 : 0);
    }
  };
  bump(a.sig, +1);
  bump(b.sig, -1);

  ASSERT_FALSE(verify(a.pub, a.message, a.sig));
  ASSERT_FALSE(verify(b.pub, b.message, b.sig));
  const std::vector<BatchItem> items = {a, b};
  int failures = 0;
  for (int trial = 0; trial < 10; ++trial) {
    if (!verify_batch(items, rng)) ++failures;
  }
  EXPECT_EQ(failures, 10);
}

TEST(BatchVerify, DetailedLocatesOffenders) {
  Rng rng(8);
  auto items = make_batch(rng, 6);
  items[2].message[0] ^= 1;
  items[5].sig.bytes[0] ^= 1;
  const auto result = verify_batch_detailed(items, rng);
  ASSERT_EQ(result.size(), 6u);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(result[i], i != 2 && i != 5) << i;
  }
}

TEST(BatchVerify, DetailedAllValidShortCircuits) {
  Rng rng(9);
  const auto items = make_batch(rng, 4);
  const auto result = verify_batch_detailed(items, rng);
  for (bool ok : result) EXPECT_TRUE(ok);
}

TEST(MultiScalarMul, MatchesIndependentLadders) {
  Rng rng(10);
  std::vector<std::pair<Scalar, Point>> terms;
  Point expected = point_identity();
  for (int i = 0; i < 5; ++i) {
    ByteArray<64> wide{};
    const Bytes raw = rng.bytes(64);
    std::copy(raw.begin(), raw.end(), wide.begin());
    const Scalar s = sc_from_bytes_wide(wide);
    ByteArray<32> pk{};
    pk[0] = static_cast<std::uint8_t>(i + 2);
    const Point p = point_base_mul(sc_from_bytes(pk));
    terms.emplace_back(s, p);
    expected = point_add(expected, point_scalar_mul(p, s));
  }
  EXPECT_TRUE(point_equal(point_multi_scalar_mul(terms), expected));
}

TEST(MultiScalarMul, EmptyIsIdentity) {
  EXPECT_TRUE(point_is_identity(point_multi_scalar_mul({})));
}

}  // namespace
}  // namespace repchain::crypto
