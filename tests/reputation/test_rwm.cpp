#include "reputation/rwm.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.hpp"
#include "common/rng.hpp"
#include "reputation/params.hpp"

namespace repchain::reputation {
namespace {

TEST(RwmGame, RejectsBadConstruction) {
  EXPECT_THROW(RwmGame(0, 0.9), ConfigError);
  EXPECT_THROW(RwmGame(4, 0.0), ConfigError);
  EXPECT_THROW(RwmGame(4, 1.0), ConfigError);
}

TEST(RwmGame, RejectsWrongAdviceSize) {
  RwmGame g(3, 0.9);
  const std::vector<Advice> advice(2, Advice::kCorrect);
  EXPECT_THROW((void)g.step(advice), ConfigError);
}

TEST(RwmGame, AllCorrectNoLoss) {
  RwmGame g(4, 0.9);
  const std::vector<Advice> advice(4, Advice::kCorrect);
  for (int t = 0; t < 100; ++t) {
    EXPECT_DOUBLE_EQ(g.step(advice), 0.0);
  }
  EXPECT_DOUBLE_EQ(g.cumulative_loss(), 0.0);
  EXPECT_DOUBLE_EQ(g.min_expert_loss(), 0.0);
}

TEST(RwmGame, AllWrongFullLoss) {
  RwmGame g(4, 0.9);
  const std::vector<Advice> advice(4, Advice::kWrong);
  EXPECT_DOUBLE_EQ(g.step(advice), 2.0);
  EXPECT_DOUBLE_EQ(g.cumulative_loss(), 2.0);
  EXPECT_DOUBLE_EQ(g.min_expert_loss(), 2.0);
}

TEST(RwmGame, ExpertLossAccounting) {
  RwmGame g(3, 0.9);
  (void)g.step(std::vector<Advice>{Advice::kCorrect, Advice::kWrong, Advice::kAbstain});
  const auto& losses = g.expert_losses();
  EXPECT_DOUBLE_EQ(losses[0], 0.0);
  EXPECT_DOUBLE_EQ(losses[1], 2.0);
  EXPECT_DOUBLE_EQ(losses[2], 1.0);
  EXPECT_EQ(g.rounds(), 1u);
}

TEST(RwmGame, WrongExpertWeightDecays) {
  RwmGame g(2, 0.9);
  const std::vector<Advice> advice = {Advice::kCorrect, Advice::kWrong};
  double prev = 1.0;
  for (int t = 0; t < 50; ++t) {
    (void)g.step(advice);
    const double w = g.relative_weight(1);
    EXPECT_LT(w, prev);
    prev = w;
  }
  EXPECT_DOUBLE_EQ(g.relative_weight(0), 1.0);
  EXPECT_LT(g.relative_weight(1), 0.01);
}

TEST(RwmGame, PerRoundLossShrinksAsBadExpertLosesWeight) {
  RwmGame g(2, 0.9);
  const std::vector<Advice> advice = {Advice::kCorrect, Advice::kWrong};
  const double first = g.step(advice);
  double last = first;
  for (int t = 0; t < 100; ++t) last = g.step(advice);
  EXPECT_LT(last, first / 10.0);
}

TEST(RwmGame, LossIsExpectedWeightFraction) {
  RwmGame g(4, 0.9);
  // 1 wrong among 4 equal-weight experts: L = 2 * 1/4 = 0.5.
  const std::vector<Advice> advice = {Advice::kCorrect, Advice::kCorrect,
                                      Advice::kCorrect, Advice::kWrong};
  EXPECT_DOUBLE_EQ(g.step(advice), 0.5);
}

TEST(RwmGame, AbstainersExcludedFromLoss) {
  RwmGame g(3, 0.9);
  // 1 correct, 1 wrong, 1 abstain: L = 2 * 1/(1+1) = 1, abstainer's weight
  // does not appear in the denominator.
  const std::vector<Advice> advice = {Advice::kCorrect, Advice::kWrong,
                                      Advice::kAbstain};
  EXPECT_DOUBLE_EQ(g.step(advice), 1.0);
}

TEST(RwmGame, TheoremBoundHoldsAdversarialPattern) {
  // Adversary makes the currently-heaviest expert wrong each round — the
  // classic worst case for weighted majority.
  const std::size_t r = 8;
  const std::size_t t_max = 2000;
  RwmGame g(r, theorem_optimal_beta(r, t_max));
  for (std::size_t t = 0; t < t_max; ++t) {
    std::vector<Advice> advice(r, Advice::kCorrect);
    // Expert with max relative weight errs.
    std::size_t heaviest = 0;
    for (std::size_t i = 1; i < r; ++i) {
      if (g.relative_weight(i) > g.relative_weight(heaviest)) heaviest = i;
    }
    advice[heaviest] = Advice::kWrong;
    (void)g.step(advice);
  }
  EXPECT_LE(g.cumulative_loss(), g.theorem_bound());
}

class RwmRegretSweep : public ::testing::TestWithParam<std::uint64_t> {};

// Stochastic adversary over several seeds: the explicit Theorem 1 bound
// L_T <= S_min + 2(log r/(1-beta) + 16(1-beta)T) must hold on every run.
TEST_P(RwmRegretSweep, TheoremBoundHoldsStochastic) {
  Rng rng(GetParam());
  const std::size_t r = 8;
  const std::size_t t_max = 1500;
  RwmGame g(r, theorem_optimal_beta(r, t_max));
  for (std::size_t t = 0; t < t_max; ++t) {
    std::vector<Advice> advice(r);
    for (std::size_t i = 0; i < r; ++i) {
      // Expert i errs with probability i/(r+2), abstains with prob 0.1.
      const double p_err = static_cast<double>(i) / (r + 2);
      if (rng.bernoulli(0.1)) {
        advice[i] = Advice::kAbstain;
      } else {
        advice[i] = rng.bernoulli(p_err) ? Advice::kWrong : Advice::kCorrect;
      }
    }
    (void)g.step(advice);
  }
  EXPECT_LE(g.cumulative_loss(), g.theorem_bound());
  // With a near-perfect expert present, regret is o(T): well under T/4 here.
  EXPECT_LE(g.regret(), static_cast<double>(t_max) / 4.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwmRegretSweep,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

TEST(RwmGame, RegretScalesSublinearly) {
  // Doubling T should grow regret by roughly sqrt(2), not 2 (O(sqrt T)).
  auto run = [](std::size_t t_max) {
    Rng rng(4242);
    const std::size_t r = 8;
    RwmGame g(r, theorem_optimal_beta(r, t_max));
    for (std::size_t t = 0; t < t_max; ++t) {
      std::vector<Advice> advice(r);
      for (std::size_t i = 0; i < r; ++i) {
        advice[i] = rng.bernoulli(i == 0 ? 0.02 : 0.4) ? Advice::kWrong
                                                       : Advice::kCorrect;
      }
      (void)g.step(advice);
    }
    return g.regret();
  };
  const double r1 = run(1000);
  const double r4 = run(4000);
  // sqrt scaling predicts ratio 2; linear would be 4. Allow generous slack.
  EXPECT_LT(r4 / r1, 3.0);
}

TEST(RwmGame, PaperOperatingPointHoldsBound) {
  // The paper's own worked numbers: r = 8, T = 4800 is the largest T where
  // beta = 1 - 4 sqrt(log r / T) <= 0.9 "holds, which is realistic".
  Rng rng(20260706);
  const std::size_t r = 8;
  const std::size_t t_max = 4800;
  RwmGame g(r, theorem_optimal_beta(r, t_max));
  for (std::size_t t = 0; t < t_max; ++t) {
    std::vector<Advice> advice(r);
    for (std::size_t i = 0; i < r; ++i) {
      advice[i] = rng.bernoulli(i == 0 ? 0.01 : 0.35) ? Advice::kWrong
                                                      : Advice::kCorrect;
    }
    (void)g.step(advice);
  }
  EXPECT_LE(g.cumulative_loss(), g.min_expert_loss() + sqrt_bound(r, t_max));
}

TEST(SqrtBound, MatchesFormula) {
  EXPECT_NEAR(sqrt_bound(8, 4800), 16.0 * std::sqrt(4800.0 * std::log(8.0)), 1e-9);
}

}  // namespace
}  // namespace repchain::reputation
