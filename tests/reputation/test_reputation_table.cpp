#include "reputation/reputation_table.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.hpp"
#include "common/rng.hpp"

namespace repchain::reputation {
namespace {

using ledger::Label;

ReputationParams default_params() {
  ReputationParams p;
  p.beta = 0.9;
  p.f = 0.5;
  p.mu = 1.1;
  p.nu = 1.5;
  return p;
}

/// Table with 3 collectors all linked to provider 0.
ReputationTable make_table() {
  ReputationTable t(default_params());
  for (std::uint32_t c = 0; c < 3; ++c) {
    t.link(CollectorId(c), ProviderId(0));
  }
  return t;
}

TEST(ReputationTable, InitialState) {
  ReputationTable t = make_table();
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(t.weight(CollectorId(c), ProviderId(0)), 1.0);
    EXPECT_EQ(t.misreport(CollectorId(c)), 0);
    EXPECT_EQ(t.forge(CollectorId(c)), 0);
  }
  EXPECT_EQ(t.collector_count(), 3u);
  EXPECT_EQ(t.collectors_for(ProviderId(0)).size(), 3u);
}

TEST(ReputationTable, LinkIdempotent) {
  ReputationTable t = make_table();
  t.link(CollectorId(0), ProviderId(0));
  EXPECT_EQ(t.collectors_for(ProviderId(0)).size(), 3u);
  EXPECT_TRUE(t.linked(CollectorId(0), ProviderId(0)));
  EXPECT_FALSE(t.linked(CollectorId(0), ProviderId(9)));
}

TEST(ReputationTable, UnknownCollectorThrows) {
  ReputationTable t = make_table();
  EXPECT_THROW((void)t.weight(CollectorId(9), ProviderId(0)), ProtocolError);
  EXPECT_THROW((void)t.misreport(CollectorId(9)), ProtocolError);
}

TEST(ReputationTable, UnlinkedProviderThrows) {
  ReputationTable t = make_table();
  EXPECT_THROW((void)t.weight(CollectorId(0), ProviderId(7)), ProtocolError);
}

TEST(ReputationTable, ForgeryPenalty) {
  ReputationTable t = make_table();
  t.punish_forgery(CollectorId(1));
  t.punish_forgery(CollectorId(1));
  EXPECT_EQ(t.forge(CollectorId(1)), -2);
  EXPECT_EQ(t.forge(CollectorId(0)), 0);
}

TEST(ReputationTable, CheckedUpdateAdjustsMisreport) {
  ReputationTable t = make_table();
  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  t.update_checked(ProviderId(0), reports, /*tx_valid=*/true);
  EXPECT_EQ(t.misreport(CollectorId(0)), +1);  // labeled correctly
  EXPECT_EQ(t.misreport(CollectorId(1)), -1);  // misreported
  EXPECT_EQ(t.misreport(CollectorId(2)), 0);   // discarded: unchanged (Alg. 3)

  // Weights never move on checked transactions.
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(t.weight(CollectorId(c), ProviderId(0)), 1.0);
  }
}

TEST(ReputationTable, RevealedUpdateAppliesGammaAndBeta) {
  ReputationTable t = make_table();
  // Collector 0 correct (+1 on a valid tx), collector 1 wrong, collector 2
  // discarded.
  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  const auto gamma = t.update_revealed(ProviderId(0), reports, /*tx_valid=*/true);
  ASSERT_TRUE(gamma.has_value());

  // Both reporters had weight 1 => L = 2*1/(1+1) = 1, gamma = 0.855.
  EXPECT_NEAR(*gamma, 0.855, 1e-12);
  EXPECT_DOUBLE_EQ(t.weight(CollectorId(0), ProviderId(0)), 1.0);
  EXPECT_NEAR(t.weight(CollectorId(1), ProviderId(0)), 0.855, 1e-12);
  EXPECT_NEAR(t.weight(CollectorId(2), ProviderId(0)), 0.9, 1e-12);
}

TEST(ReputationTable, RevealedUpdateNoWrongMassSkipsGamma) {
  ReputationTable t = make_table();
  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kValid},
  };
  const auto gamma = t.update_revealed(ProviderId(0), reports, true);
  EXPECT_FALSE(gamma.has_value());
  EXPECT_DOUBLE_EQ(t.weight(CollectorId(0), ProviderId(0)), 1.0);
  EXPECT_DOUBLE_EQ(t.weight(CollectorId(1), ProviderId(0)), 1.0);
  EXPECT_NEAR(t.weight(CollectorId(2), ProviderId(0)), 0.9, 1e-12);
}

TEST(ReputationTable, RevealedInvalidTruthFlipsRightAndWrong) {
  ReputationTable t = make_table();
  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},    // wrong: tx is invalid
      {CollectorId(1), Label::kInvalid},  // right
  };
  (void)t.update_revealed(ProviderId(0), reports, /*tx_valid=*/false);
  EXPECT_LT(t.weight(CollectorId(0), ProviderId(0)), 1.0);
  EXPECT_DOUBLE_EQ(t.weight(CollectorId(1), ProviderId(0)), 1.0);
}

TEST(ReputationTable, GammaReflectsCurrentWeights) {
  ReputationTable t = make_table();
  // Cut collector 1's weight first so W_wrong is small => L small => larger
  // penalty gap; gamma = max{(b-1)/L + (b+1)/2, lower}.
  const std::vector<Report> wrong1 = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  (void)t.update_revealed(ProviderId(0), wrong1, true);
  const double w1 = t.weight(CollectorId(1), ProviderId(0));
  const double expected_l = 2.0 * w1 / (1.0 + w1);
  const auto gamma = t.update_revealed(ProviderId(0), wrong1, true);
  ASSERT_TRUE(gamma.has_value());
  EXPECT_NEAR(*gamma, std::max((0.9 - 1.0) / expected_l + 0.95, (0.81 + 0.9) / 2.0),
              1e-12);
}

TEST(ReputationTable, ExpectedLossForMatchesDefinition) {
  ReputationTable t = make_table();
  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
      {CollectorId(2), Label::kInvalid},
  };
  // All weights 1: truth valid => W_right = 1, W_wrong = 2 => L = 4/3.
  EXPECT_NEAR(t.expected_loss_for(ProviderId(0), reports, true), 4.0 / 3.0, 1e-12);
  // Truth invalid => W_right = 2, W_wrong = 1 => L = 2/3.
  EXPECT_NEAR(t.expected_loss_for(ProviderId(0), reports, false), 2.0 / 3.0, 1e-12);
}

TEST(ReputationTable, SelectReporterProportionalToWeight) {
  ReputationTable t = make_table();
  // Discount collector 1 heavily.
  const std::vector<Report> wrong1 = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  for (int i = 0; i < 20; ++i) (void)t.update_revealed(ProviderId(0), wrong1, true);

  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  Rng rng(99);
  int chose0 = 0;
  const int n = 5000;
  double pr0 = 0.0;
  for (int i = 0; i < n; ++i) {
    const Selection sel = t.select_reporter(ProviderId(0), reports, rng);
    if (sel.chosen == CollectorId(0)) {
      ++chose0;
      pr0 = sel.pr_chosen;
      EXPECT_EQ(sel.label, Label::kValid);
    }
  }
  const double w1 = t.weight(CollectorId(1), ProviderId(0));
  const double expected_pr0 = 1.0 / (1.0 + w1);
  EXPECT_NEAR(pr0, expected_pr0, 1e-12);
  EXPECT_NEAR(static_cast<double>(chose0) / n, expected_pr0, 0.02);
}

TEST(ReputationTable, SelectReporterEmptyThrows) {
  ReputationTable t = make_table();
  Rng rng(1);
  EXPECT_THROW((void)t.select_reporter(ProviderId(0), {}, rng), ProtocolError);
}

TEST(ReputationTable, CheckProbabilityBounds) {
  ReputationTable t = make_table();
  // All +1: always checked.
  const std::vector<Report> all_valid = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kValid},
  };
  EXPECT_DOUBLE_EQ(t.check_probability(ProviderId(0), all_valid), 1.0);

  // All -1, equal weights: P = 1 - f * sum (1/n)^2 = 1 - 0.5 * 2 * 0.25.
  const std::vector<Report> all_invalid = {
      {CollectorId(0), Label::kInvalid},
      {CollectorId(1), Label::kInvalid},
  };
  EXPECT_NEAR(t.check_probability(ProviderId(0), all_invalid), 1.0 - 0.5 * 0.5, 1e-12);

  // Lemma 2: always >= 1 - f.
  const std::vector<Report> single_invalid = {{CollectorId(0), Label::kInvalid}};
  EXPECT_NEAR(t.check_probability(ProviderId(0), single_invalid), 1.0 - 0.5, 1e-12);
  EXPECT_GE(t.check_probability(ProviderId(0), single_invalid), 1.0 - 0.5 - 1e-12);
}

TEST(ReputationTable, LongHorizonNoUnderflow) {
  // 100k consecutive discounts would underflow linear doubles (0.9^100000);
  // log-space selection must still work and prefer the clean collector.
  ReputationTable t = make_table();
  const std::vector<Report> wrong1 = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  for (int i = 0; i < 100000; ++i) (void)t.update_revealed(ProviderId(0), wrong1, true);
  EXPECT_TRUE(std::isfinite(t.log_weight(CollectorId(1), ProviderId(0))));

  Rng rng(5);
  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  const Selection sel = t.select_reporter(ProviderId(0), reports, rng);
  EXPECT_EQ(sel.chosen, CollectorId(0));
  EXPECT_NEAR(sel.pr_chosen, 1.0, 1e-9);
}

TEST(ReputationTable, RevenueSharesSumToOne) {
  ReputationTable t = make_table();
  const auto shares = t.revenue_shares();
  ASSERT_EQ(shares.size(), 3u);
  double total = 0.0;
  for (const auto& [c, s] : shares) total += s;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Equal initial reputation => equal shares.
  for (const auto& [c, s] : shares) EXPECT_NEAR(s, 1.0 / 3.0, 1e-12);
}

TEST(ReputationTable, RevenuePunishesAllThreeMisbehaviors) {
  ReputationTable t = make_table();
  // Collector 1 misreports a checked tx; collector 2 forges; collector 0 has
  // a weight cut from a revealed mislabel... make collector 0 clean instead
  // and dirty the others across all three components.
  t.update_checked(ProviderId(0), std::vector<Report>{{CollectorId(1), Label::kInvalid}}, true);
  t.punish_forgery(CollectorId(2));
  const std::vector<Report> wrong2 = {
      {CollectorId(0), Label::kValid},
      {CollectorId(2), Label::kInvalid},
  };
  (void)t.update_revealed(ProviderId(0), wrong2, true);

  const auto shares = t.revenue_shares();
  double s0 = 0, s1 = 0, s2 = 0;
  for (const auto& [c, s] : shares) {
    if (c == CollectorId(0)) s0 = s;
    if (c == CollectorId(1)) s1 = s;
    if (c == CollectorId(2)) s2 = s;
  }
  EXPECT_GT(s0, s1);
  EXPECT_GT(s1, s2);  // forging + mislabeling worse than one misreport
}

TEST(ReputationTable, RevenueRewardsPositiveMisreportHistory) {
  ReputationTable t = make_table();
  for (int i = 0; i < 10; ++i) {
    t.update_checked(ProviderId(0), std::vector<Report>{{CollectorId(0), Label::kValid}}, true);
  }
  const auto shares = t.revenue_shares();
  double s0 = 0, s1 = 0;
  for (const auto& [c, s] : shares) {
    if (c == CollectorId(0)) s0 = s;
    if (c == CollectorId(1)) s1 = s;
  }
  // mu^10 advantage.
  EXPECT_NEAR(s0 / s1, std::pow(1.1, 10), 1e-9);
}

TEST(ReputationTable, ConcealPenaltyAblation) {
  // Algorithm 3 default: concealing a checked tx is free (tested above).
  // With the §4.2-prose ablation on, a non-reporting linked collector loses
  // misreport points, but fewer than a misreporter would.
  auto p = default_params();
  p.conceal_checked_penalty = 1;
  ReputationTable t(p);
  for (std::uint32_t c = 0; c < 3; ++c) t.link(CollectorId(c), ProviderId(0));

  const std::vector<Report> reports = {
      {CollectorId(0), Label::kValid},
      {CollectorId(1), Label::kInvalid},
  };
  t.update_checked(ProviderId(0), reports, /*tx_valid=*/true);
  EXPECT_EQ(t.misreport(CollectorId(0)), +1);  // correct
  EXPECT_EQ(t.misreport(CollectorId(1)), -1);  // misreported: cut of 2 vs correct
  EXPECT_EQ(t.misreport(CollectorId(2)), -1);  // concealed: cut of 1 (ablation)
}

TEST(ReputationTable, ConcealPenaltyRejectsNegative) {
  auto p = default_params();
  p.conceal_checked_penalty = -1;
  EXPECT_THROW(p.validate(), ConfigError);
}

TEST(ReputationTable, CheckpointRoundTrip) {
  ReputationTable t = make_table();
  // Dirty the state in all three components.
  t.punish_forgery(CollectorId(2));
  t.update_checked(ProviderId(0),
                   std::vector<Report>{{CollectorId(0), Label::kValid}}, true);
  const std::vector<Report> wrong1 = {{CollectorId(0), Label::kValid},
                                      {CollectorId(1), Label::kInvalid}};
  for (int i = 0; i < 5; ++i) (void)t.update_revealed(ProviderId(0), wrong1, true);

  const ReputationTable restored = ReputationTable::decode(t.encode());
  EXPECT_EQ(restored.collector_count(), t.collector_count());
  for (std::uint32_t c = 0; c < 3; ++c) {
    EXPECT_DOUBLE_EQ(restored.log_weight(CollectorId(c), ProviderId(0)),
                     t.log_weight(CollectorId(c), ProviderId(0)));
    EXPECT_EQ(restored.misreport(CollectorId(c)), t.misreport(CollectorId(c)));
    EXPECT_EQ(restored.forge(CollectorId(c)), t.forge(CollectorId(c)));
  }
  EXPECT_DOUBLE_EQ(restored.params().beta, t.params().beta);
  // Behavioural equivalence: identical revenue shares.
  const auto a = t.revenue_shares();
  const auto b = restored.revenue_shares();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].first, b[i].first);
    EXPECT_DOUBLE_EQ(a[i].second, b[i].second);
  }
}

TEST(ReputationTable, CheckpointEncodingIsCanonical) {
  // Same logical state built in different orders encodes identically.
  ReputationTable a(default_params());
  a.link(CollectorId(0), ProviderId(0));
  a.link(CollectorId(1), ProviderId(0));
  ReputationTable b(default_params());
  b.link(CollectorId(1), ProviderId(0));
  b.link(CollectorId(0), ProviderId(0));
  EXPECT_EQ(a.encode(), b.encode());
}

TEST(ReputationTable, CheckpointRejectsCorruption) {
  ReputationTable t = make_table();
  Bytes enc = t.encode();
  enc[0] ^= 1;  // magic
  EXPECT_THROW((void)ReputationTable::decode(enc), DecodeError);

  Bytes truncated = t.encode();
  truncated.resize(truncated.size() - 3);
  EXPECT_THROW((void)ReputationTable::decode(truncated), DecodeError);
}

TEST(ReputationTable, RegisterCollectorWithoutLinks) {
  ReputationTable t(default_params());
  t.register_collector(CollectorId(5));
  EXPECT_EQ(t.misreport(CollectorId(5)), 0);
  EXPECT_EQ(t.collector_count(), 1u);
  EXPECT_DOUBLE_EQ(t.log_revenue_weight(CollectorId(5)), 0.0);
}

// --- Composite-key index invariants ------------------------------------------
//
// The (collector, provider) index is an acceleration layer over the
// per-collector weight maps; these tests churn the table through every
// mutation class and assert the indexed lookups stay equivalent to a linear
// scan of the canonical per-provider membership lists, and stay coherent
// through encode/decode, copies, and moves (the index-rebuild paths).

/// Linear-scan reference for `linked`: walk the per-provider collector list.
bool linked_by_scan(const ReputationTable& t, CollectorId c, ProviderId p) {
  for (const CollectorId member : t.collectors_for(p)) {
    if (member == c) return true;
  }
  return false;
}

/// Assert index ≡ scan over the full (collector, provider) universe, and
/// that every linked pair's weight queries resolve without throwing and
/// agree between the log and linear representations.
void expect_index_matches_scan(const ReputationTable& t, std::uint32_t collectors,
                               std::uint32_t providers) {
  for (std::uint32_t c = 0; c < collectors; ++c) {
    for (std::uint32_t p = 0; p < providers; ++p) {
      const CollectorId cid(c);
      const ProviderId pid(p);
      ASSERT_EQ(t.linked(cid, pid), linked_by_scan(t, cid, pid))
          << "index/scan mismatch at (" << c << ", " << p << ")";
      if (t.linked(cid, pid)) {
        EXPECT_DOUBLE_EQ(t.weight(cid, pid), std::exp(t.log_weight(cid, pid)));
      } else {
        EXPECT_THROW((void)t.log_weight(cid, pid), ProtocolError);
      }
    }
  }
}

TEST(ReputationIndex, MatchesLinearScanUnderChurn) {
  constexpr std::uint32_t kCollectors = 5;
  constexpr std::uint32_t kProviders = 4;
  ReputationTable t(default_params());
  Rng rng(777);

  // Insert churn: a ragged link pattern (collector c skips provider c%4).
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    for (std::uint32_t p = 0; p < kProviders; ++p) {
      if (p == c % kProviders) continue;
      t.link(CollectorId(c), ProviderId(p));
    }
  }
  expect_index_matches_scan(t, kCollectors, kProviders);

  // Update churn: rounds of checked/revealed/forgery mutations.
  for (int round = 0; round < 20; ++round) {
    const ProviderId pid(rng.uniform(kProviders));
    std::vector<Report> reports;
    for (const CollectorId c : t.collectors_for(pid)) {
      if (rng.bernoulli(0.7)) {
        reports.push_back(Report{c, rng.bernoulli(0.5) ? ledger::Label::kValid
                                                       : ledger::Label::kInvalid});
      }
    }
    if (reports.empty()) continue;
    if (rng.bernoulli(0.5)) {
      t.update_checked(pid, reports, rng.bernoulli(0.5));
    } else {
      (void)t.update_revealed(pid, reports, rng.bernoulli(0.5));
    }
    if (rng.bernoulli(0.3)) t.punish_forgery(reports.front().collector);
  }
  expect_index_matches_scan(t, kCollectors, kProviders);

  // Decode churn: a persist/recover round trip must rebuild the index onto
  // the fresh table's own storage with identical lookups.
  const ReputationTable restored = ReputationTable::decode(t.encode());
  expect_index_matches_scan(restored, kCollectors, kProviders);
  for (std::uint32_t c = 0; c < kCollectors; ++c) {
    for (std::uint32_t p = 0; p < kProviders; ++p) {
      if (!t.linked(CollectorId(c), ProviderId(p))) continue;
      EXPECT_DOUBLE_EQ(restored.log_weight(CollectorId(c), ProviderId(p)),
                       t.log_weight(CollectorId(c), ProviderId(p)));
    }
  }
  EXPECT_EQ(restored.encode(), t.encode());
}

TEST(ReputationIndex, CopyRebuildsOntoOwnStorage) {
  ReputationTable t = make_table();
  const std::vector<Report> reports = {{CollectorId(0), ledger::Label::kInvalid},
                                       {CollectorId(1), ledger::Label::kValid}};
  (void)t.update_revealed(ProviderId(0), reports, /*tx_valid=*/true);

  ReputationTable copy(t);
  expect_index_matches_scan(copy, 3, 1);
  // Mutating the copy through its index must not touch the original (a
  // stale index would alias the source table's weight slots).
  const double before = t.log_weight(CollectorId(0), ProviderId(0));
  const std::vector<Report> again = {{CollectorId(0), ledger::Label::kInvalid}};
  (void)copy.update_revealed(ProviderId(0), again, /*tx_valid=*/true);
  EXPECT_DOUBLE_EQ(t.log_weight(CollectorId(0), ProviderId(0)), before);
  EXPECT_LT(copy.log_weight(CollectorId(0), ProviderId(0)), before);

  // Copy-assignment over a populated table rebuilds too.
  ReputationTable assigned(default_params());
  assigned.link(CollectorId(9), ProviderId(9));
  assigned = t;
  expect_index_matches_scan(assigned, 3, 1);
  EXPECT_FALSE(assigned.linked(CollectorId(9), ProviderId(9)));
  EXPECT_EQ(assigned.encode(), t.encode());

  // Moves steal the node-stable storage; lookups keep working.
  ReputationTable moved(std::move(assigned));
  expect_index_matches_scan(moved, 3, 1);
  EXPECT_EQ(moved.encode(), t.encode());
}

TEST(ReputationIndex, ExpulsionChurnRebuild) {
  // Governor-level expulsion rebuilds reputation state for the survivors
  // (the table itself has no removal API); the rebuilt table's index must
  // match a scan and carry over the surviving collectors' state exactly.
  ReputationTable t = make_table();
  t.punish_forgery(CollectorId(2));  // the collector about to be expelled
  const std::vector<Report> reports = {{CollectorId(0), ledger::Label::kInvalid},
                                       {CollectorId(1), ledger::Label::kValid}};
  (void)t.update_revealed(ProviderId(0), reports, /*tx_valid=*/true);

  ReputationTable survivors(t.params());
  for (std::uint32_t c = 0; c < 2; ++c) {
    survivors.link(CollectorId(c), ProviderId(0));
  }
  expect_index_matches_scan(survivors, 3, 1);
  EXPECT_FALSE(survivors.linked(CollectorId(2), ProviderId(0)));
  EXPECT_TRUE(linked_by_scan(t, CollectorId(2), ProviderId(0)));
}

}  // namespace
}  // namespace repchain::reputation
