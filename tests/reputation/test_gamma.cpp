#include "reputation/gamma.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/errors.hpp"
#include "reputation/params.hpp"

namespace repchain::reputation {
namespace {

TEST(ExpectedLoss, Bounds) {
  EXPECT_DOUBLE_EQ(expected_loss(1.0, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(expected_loss(0.0, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(expected_loss(1.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(expected_loss(3.0, 1.0), 0.5);
}

TEST(ExpectedLoss, EmptyMassIsZero) {
  EXPECT_DOUBLE_EQ(expected_loss(0.0, 0.0), 0.0);
}

TEST(ExpectedLoss, NegativeMassThrows) {
  EXPECT_THROW((void)expected_loss(-1.0, 1.0), ConfigError);
  EXPECT_THROW((void)expected_loss(1.0, -1.0), ConfigError);
}

TEST(GammaTx, MatchesPaperClosedForm) {
  // beta = 0.9, L = 1: max{(0.9-1)/1 + 0.95, (0.81+0.9)/2} = max{0.85, 0.855}.
  EXPECT_NEAR(gamma_tx(0.9, 1.0), 0.855, 1e-12);
  // beta = 0.9, L = 2: max{0.9, 0.855} = 0.9 (= beta, the upper end).
  EXPECT_NEAR(gamma_tx(0.9, 2.0), 0.9, 1e-12);
}

TEST(GammaTx, ZeroLossUsesLowerCandidate) {
  EXPECT_NEAR(gamma_tx(0.9, 0.0), (0.81 + 0.9) / 2.0, 1e-12);
}

TEST(GammaTx, RejectsBadArguments) {
  EXPECT_THROW((void)gamma_tx(0.0, 1.0), ConfigError);
  EXPECT_THROW((void)gamma_tx(1.0, 1.0), ConfigError);
  EXPECT_THROW((void)gamma_tx(0.9, -0.1), ConfigError);
  EXPECT_THROW((void)gamma_tx(0.9, 2.1), ConfigError);
}

/// Property sweep over (beta, L): the paper's inequality chain
/// beta^2 <= gamma <= beta <= (gamma-1)L/2 + 1 <= 1 must hold everywhere in
/// the feasible region (§3.4.2 claims such a gamma exists for each beta in
/// (0,1) and L < 2; at L = 2 gamma = beta and the chain closes with
/// equality).
class GammaFeasibility : public ::testing::TestWithParam<double> {};

TEST_P(GammaFeasibility, ChainHoldsAcrossLosses) {
  const double beta = GetParam();
  for (double loss = 0.01; loss <= 2.0; loss += 0.01) {
    const double g = gamma_tx(beta, loss);
    EXPECT_TRUE(gamma_feasible(beta, g, loss))
        << "beta=" << beta << " loss=" << loss << " gamma=" << g;
    // Theorem 1's proof additionally needs gamma >= 2(beta-1)/L + 1.
    EXPECT_GE(g, 2.0 * (beta - 1.0) / loss + 1.0 - 1e-12)
        << "beta=" << beta << " loss=" << loss;
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, GammaFeasibility,
                         ::testing::Values(0.1, 0.2, 0.3, 0.5, 0.7, 0.8, 0.9, 0.95,
                                           0.99));

TEST(GammaFeasible, DetectsViolations) {
  EXPECT_FALSE(gamma_feasible(0.9, 0.5, 1.0));   // gamma < beta^2
  EXPECT_FALSE(gamma_feasible(0.9, 0.95, 1.0));  // gamma > beta
  EXPECT_TRUE(gamma_feasible(0.9, 0.855, 1.0));
}

TEST(TheoremOptimalBeta, MatchesFormulaInRange) {
  // r=8, T=4800: 1 - 4*sqrt(log 8 / 4800) ~ 0.9167... clamps to 0.9.
  EXPECT_DOUBLE_EQ(theorem_optimal_beta(8, 4800), 0.9);
  // r=8, T=400: 1 - 4*sqrt(log 8 / 400) ~ 0.7118.
  EXPECT_NEAR(theorem_optimal_beta(8, 400), 1.0 - 4.0 * std::sqrt(std::log(8.0) / 400.0),
              1e-12);
}

TEST(TheoremOptimalBeta, ClampsLow) {
  // Tiny T forces the raw value negative; clamp at 0.1.
  EXPECT_DOUBLE_EQ(theorem_optimal_beta(8, 4), 0.1);
}

TEST(TheoremOptimalBeta, DegenerateInputsDefault) {
  EXPECT_DOUBLE_EQ(theorem_optimal_beta(1, 100), 0.9);
  EXPECT_DOUBLE_EQ(theorem_optimal_beta(8, 0), 0.9);
}

TEST(ReputationParams, ValidationCatchesBadValues) {
  ReputationParams p;
  p.validate();  // defaults are fine
  auto bad = p;
  bad.beta = 1.0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = p;
  bad.f = 0.0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = p;
  bad.mu = 1.0;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = p;
  bad.nu = 0.5;
  EXPECT_THROW(bad.validate(), ConfigError);
  bad = p;
  bad.argue_latency_u = 0;
  EXPECT_THROW(bad.validate(), ConfigError);
}

}  // namespace
}  // namespace repchain::reputation
