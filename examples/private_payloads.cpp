// Private payloads: sealing transaction contents so collectors route and
// label without reading business data, while governors (who hold the
// alliance payload key from the Identity Manager at enrollment) can decrypt
// what lands on the chain.
//
// The paper's related work (§2.3) flags privacy as a live concern for
// reputation systems; this demo shows the ChaCha20-Poly1305 extension
// composing with the protocol: the ledger stores ciphertext, the hierarchy
// is unchanged, and only key holders recover plaintext.

#include <cstdio>

#include "crypto/chacha20poly1305.hpp"
#include "crypto/hmac.hpp"
#include "sim/scenario.hpp"

using namespace repchain;

namespace {

/// Deterministic per-transaction nonce: provider id + sequence (never reused
/// under one key as long as providers number their transactions, which the
/// protocol already requires).
crypto::AeadNonce tx_nonce(ProviderId provider, std::uint64_t seq) {
  crypto::AeadNonce n{};
  for (int i = 0; i < 4; ++i) {
    n.bytes[i] = static_cast<std::uint8_t>(provider.value() >> (8 * i));
  }
  for (int i = 0; i < 8; ++i) {
    n.bytes[4 + i] = static_cast<std::uint8_t>(seq >> (8 * i));
  }
  return n;
}

}  // namespace

int main() {
  std::printf("Private payloads: sealed ride requests on the shared ledger\n\n");

  // The alliance payload key, distributed by the IM to providers and
  // governors at enrollment (derived from an enrollment master secret).
  const auto master = to_bytes("alliance-enrollment-master-secret");
  const crypto::Hash256 derived =
      crypto::derive_key(master, to_bytes("payload-sealing-v1"));
  crypto::AeadKey key;
  std::copy(derived.begin(), derived.end(), key.bytes.begin());

  sim::ScenarioConfig cfg;
  cfg.topology = {4, 2, 2, 2};
  cfg.rounds = 0;  // we drive rounds manually after seeding sealed txs
  cfg.txs_per_provider_per_round = 0;
  cfg.p_valid = 1.0;
  cfg.seed = 77;
  sim::Scenario scenario(cfg);

  // Each provider seals a confidential request and submits the ciphertext as
  // the transaction payload.
  const char* requests[] = {"ride: home -> airport, fare 42",
                            "ride: office -> clinic, fare 13",
                            "ride: hotel -> venue, fare 7",
                            "ride: depot -> port, fare 99"};
  for (std::uint32_t p = 0; p < 4; ++p) {
    auto& provider = scenario.providers()[p];
    const Bytes plaintext = to_bytes(requests[p]);
    const Bytes aad = to_bytes("provider-" + std::to_string(p));
    const Bytes sealed =
        crypto::aead_seal(key, tx_nonce(provider.id(), 0), plaintext, aad);
    (void)provider.submit(sealed, /*truly_valid=*/true);
  }
  scenario.queue().run();
  scenario.run_round();

  const auto& chain = scenario.governor(0).chain();
  std::printf("chain height %zu; inspecting block #1:\n\n", chain.height());

  for (const auto& rec : chain.head().txs) {
    const Bytes aad = to_bytes("provider-" + std::to_string(rec.tx.provider.value()));
    std::printf("  tx from provider %u\n", rec.tx.provider.value());
    std::printf("    on-ledger payload (what a collector saw): %s...\n",
                to_hex(BytesView(rec.tx.payload.data(),
                                 std::min<std::size_t>(16, rec.tx.payload.size())))
                    .c_str());
    const auto opened =
        crypto::aead_open(key, tx_nonce(rec.tx.provider, rec.tx.seq), rec.tx.payload,
                          aad);
    std::printf("    governor decrypts: %s\n",
                opened ? to_string(*opened).c_str() : "<authentication failed>");

    // A party without the key (or with a tampered copy) gets nothing.
    crypto::AeadKey wrong = key;
    wrong.bytes[0] ^= 1;
    const auto denied = crypto::aead_open(
        wrong, tx_nonce(rec.tx.provider, rec.tx.seq), rec.tx.payload, aad);
    std::printf("    outsider with wrong key: %s\n\n",
                denied ? "DECRYPTED (bug!)" : "rejected (tag mismatch)");
  }

  std::printf("Labels, signatures, screening and reputation all operated on the\n"
              "ciphertext: the hierarchy never needed the plaintext to do its job,\n"
              "and the tamper-evident ledger now carries confidential payloads.\n");
  return 0;
}
