// Use case §5.1 — car-sharing after a platform merger.
//
// Mapping (as in the paper):
//   users (riders)  -> providers: ride requests + payments are transactions;
//   drivers         -> collectors: label +1 if willing/able to serve, -1
//                      otherwise, and forward to the schedulers;
//   schedulers      -> governors: assign rides, maintain the shared ledger
//                      both merged platforms read, and keep per-driver
//                      reputation so untruthful drivers stop being trusted.
//
// The demo runs two driver pools: platform A's drivers are honest, one of
// platform B's drivers inflates its acceptance labels (claims rides it never
// serves — a misreporting collector). The schedulers' reputation mechanism
// identifies the dishonest driver without auditing every ride.

#include <cstdio>

#include "sim/scenario.hpp"

using namespace repchain;
using protocol::CollectorBehavior;

int main() {
  std::printf("Car-sharing alliance: 12 riders, 6 drivers (2 platforms), "
              "3 schedulers\n\n");

  sim::ScenarioConfig cfg;
  cfg.topology.providers = 12;  // riders
  cfg.topology.collectors = 6;  // drivers
  cfg.topology.governors = 3;   // schedulers (one per merged company + 1 neutral)
  cfg.topology.r = 2;           // each rider's request reaches 2 nearby drivers
  cfg.rounds = 15;
  cfg.txs_per_provider_per_round = 2;  // ride requests per rider per round
  cfg.p_valid = 0.75;  // 75% of requests are serviceable (valid)
  cfg.governor.rep.f = 0.6;  // schedulers verify a subset of contested rides
  cfg.reward_per_valid_tx = 10.0;  // fare share pool per served ride
  cfg.seed = 2026;

  // Drivers 0-4 honest (driver 1 is new and misjudges 15% of requests);
  // driver 5 (platform B) reports dishonestly half the time.
  cfg.behaviors = {CollectorBehavior::honest(),        CollectorBehavior::noisy(0.85),
                   CollectorBehavior::honest(),        CollectorBehavior::honest(),
                   CollectorBehavior::honest(),        CollectorBehavior::misreporting(0.5)};

  sim::Scenario scenario(cfg);
  scenario.run();

  const auto summary = scenario.summary();
  std::printf("after %zu dispatch rounds:\n", cfg.rounds);
  std::printf("  ride requests submitted     : %llu\n",
              static_cast<unsigned long long>(summary.txs_submitted));
  std::printf("  rides recorded on the ledger: %llu served, %llu contested-unchecked,"
              " %llu recovered by rider disputes\n",
              static_cast<unsigned long long>(summary.chain_valid_txs),
              static_cast<unsigned long long>(summary.chain_unchecked_txs),
              static_cast<unsigned long long>(summary.chain_argued_txs));
  std::printf("  ride audits the schedulers ran: %llu (%.0f%% of the check-everything"
              " cost)\n\n",
              static_cast<unsigned long long>(summary.validations_total),
              100.0 * static_cast<double>(summary.validations_total) /
                  static_cast<double>(summary.txs_submitted * cfg.topology.governors));

  std::printf("driver standing after the run (scheduler 0's reputation view):\n");
  const char* roster[] = {"A-1 honest", "A-2 new driver", "A-3 honest",
                          "A-4 honest", "B-1 honest",     "B-2 DISHONEST"};
  const auto& sched = scenario.governor(0);
  const auto shares = sched.revenue_shares();
  for (const auto& [driver, share] : shares) {
    std::printf("  driver %-14s fare share %6.2f%%   misreport score %+lld   "
                "earned %8.2f\n",
                roster[driver.value()], share * 100.0,
                static_cast<long long>(sched.reputation().misreport(driver)),
                scenario.collector_rewards()[driver.value()]);
  }

  std::printf("\nThe dishonest platform-B driver's reputation (and fare share)\n"
              "collapses, while the merged platforms never had to build a new\n"
              "central platform: the shared permissioned ledger holds every\n"
              "ride, traceably signed by rider and driver.\n");
  return 0;
}
