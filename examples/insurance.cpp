// Use case §5.2 — critical-illness insurance underwriting.
//
// Mapping (as in the paper):
//   potential policyholders -> providers: application materials (medical
//       history, smoking status, ...) are signed transactions;
//   independent agents      -> collectors: verify materials, label +1/-1,
//       fill the survey, sign and submit to the insurers;
//   insurance companies     -> governors: accept applications, spot-check a
//       fraction of surveys, and keep per-agent reputation.
//
// One agent colludes with applicants (labels bad materials valid to earn
// commissions); one is lazy and drops half the paperwork. The insurers'
// spot-checks (misreport counter) plus the argue channel for wrongly
// rejected applicants expose both, and a signed audit trail survives on the
// ledger.

#include <cstdio>

#include "sim/scenario.hpp"

using namespace repchain;
using protocol::CollectorBehavior;

int main() {
  std::printf("Insurance alliance: 10 applicants/round-pool, 5 independent "
              "agents, 4 insurers\n\n");

  sim::ScenarioConfig cfg;
  cfg.topology.providers = 10;  // policyholders
  cfg.topology.collectors = 5;  // independent agents
  cfg.topology.governors = 4;   // insurance companies
  cfg.topology.r = 2;           // each applicant files through 2 agents
  cfg.rounds = 15;
  cfg.txs_per_provider_per_round = 2;  // application documents per round
  cfg.p_valid = 0.6;  // 40% of applications contain disqualifying records
  cfg.governor.rep.f = 0.7;  // insurers re-examine only a fraction of rejections
  cfg.governor.rep.mu = 1.15;  // commission advantage of clean survey history
  cfg.seed = 11;

  // Agent 3 colludes: flips labels 60% of the time (sells bad applications
  // as good ones and vice versa). Agent 4 is negligent: loses half the
  // paperwork.
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::honest(),
                   CollectorBehavior::honest(), CollectorBehavior::misreporting(0.6),
                   CollectorBehavior::concealing(0.5)};

  sim::Scenario scenario(cfg);
  scenario.run();

  const auto summary = scenario.summary();
  std::printf("after %zu underwriting rounds:\n", cfg.rounds);
  std::printf("  applications filed            : %llu\n",
              static_cast<unsigned long long>(summary.txs_submitted));
  std::printf("  accepted on first review      : %llu\n",
              static_cast<unsigned long long>(summary.chain_valid_txs));
  std::printf("  provisionally rejected        : %llu (unchecked)\n",
              static_cast<unsigned long long>(summary.chain_unchecked_txs));
  std::printf("  recovered via applicant appeal: %llu (the argue channel)\n",
              static_cast<unsigned long long>(summary.chain_argued_txs));
  std::printf("  document audits performed     : %llu\n\n",
              static_cast<unsigned long long>(summary.validations_total));

  const char* roster[] = {"agent-1 (honest)", "agent-2 (honest)", "agent-3 (honest)",
                          "agent-4 COLLUDING", "agent-5 NEGLIGENT"};
  std::printf("agent standing (insurer 0's local reputation):\n");
  const auto& insurer = scenario.governor(0);
  for (const auto& [agent, share] : insurer.revenue_shares()) {
    double sum_log_w = 0.0;
    for (ProviderId p : scenario.directory().providers_of(agent)) {
      sum_log_w += insurer.reputation().log_weight(agent, p);
    }
    std::printf("  %-18s commission share %6.2f%%  survey score %+lld  "
                "trust(log w) %7.2f\n",
                roster[agent.value()], share * 100.0,
                static_cast<long long>(insurer.reputation().misreport(agent)),
                sum_log_w);
  }

  std::printf("\nagreement across all %zu insurers: %s — every accepted policy,\n"
              "rejection and appeal is on one tamper-proof ledger, signed by the\n"
              "applicant (no deniable evidence) and by the agent (no deniable\n"
              "survey), exactly the paper's accountability story.\n",
              scenario.governors().size(), summary.agreement ? "yes" : "NO");
  return 0;
}
