// Quickstart: stand up a small alliance (8 providers, 4 collectors,
// 3 governors), run a few rounds, and inspect the chain, the screening
// statistics and the reputation-driven revenue split.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "sim/scenario.hpp"

using namespace repchain;

int main() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 8;   // l
  cfg.topology.collectors = 4;  // n
  cfg.topology.governors = 3;   // m
  cfg.topology.r = 2;           // each provider talks to 2 collectors
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;           // 80% of generated transactions are valid
  cfg.governor.rep.f = 0.5;    // efficiency knob: skip up to half the -1 checks
  cfg.governor.rep.beta = 0.9; // the paper's practical discount
  cfg.seed = 7;

  std::printf("RepChain quickstart: l=%zu providers, n=%zu collectors, "
              "m=%zu governors, r=%zu (s=%zu)\n\n",
              cfg.topology.providers, cfg.topology.collectors, cfg.topology.governors,
              cfg.topology.r, cfg.topology.s());

  sim::Scenario scenario(cfg);
  scenario.run();

  const auto summary = scenario.summary();
  std::printf("after %zu rounds:\n", cfg.rounds);
  std::printf("  transactions submitted : %llu\n",
              static_cast<unsigned long long>(summary.txs_submitted));
  std::printf("  blocks on the chain    : %llu\n",
              static_cast<unsigned long long>(summary.blocks));
  std::printf("  checked-valid in chain : %llu\n",
              static_cast<unsigned long long>(summary.chain_valid_txs));
  std::printf("  unchecked in chain     : %llu\n",
              static_cast<unsigned long long>(summary.chain_unchecked_txs));
  std::printf("  validations paid       : %llu (vs %llu with check-everything)\n",
              static_cast<unsigned long long>(summary.validations_total),
              static_cast<unsigned long long>(summary.txs_submitted *
                                              cfg.topology.governors));
  std::printf("  agreement across governors: %s, chain audits: %s\n\n",
              summary.agreement ? "yes" : "NO",
              summary.chains_audit_ok ? "pass" : "FAIL");

  // Walk the chain with the public retrieve(s) API.
  const auto& chain = scenario.governor(0).chain();
  for (BlockSerial s = 1; s <= chain.height(); ++s) {
    const auto block = chain.retrieve(s);
    std::printf("  block #%llu: %zu txs, leader governor %u, hash %s...\n",
                static_cast<unsigned long long>(block->serial), block->txs.size(),
                block->leader.value(), to_hex(view(block->hash())).substr(0, 16).c_str());
  }

  std::printf("\nreputation-driven revenue split (leader's local view):\n");
  for (const auto& [collector, share] : scenario.governor(0).revenue_shares()) {
    std::printf("  collector %u: %.1f%%  (cumulative reward %.2f)\n", collector.value(),
                share * 100.0, scenario.collector_rewards()[collector.value()]);
  }
  return 0;
}
