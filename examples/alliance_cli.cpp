// alliance_cli — run a configurable RepChain scenario from the command line.
//
//   alliance_cli [--providers N] [--collectors N] [--governors N] [--r N]
//                [--rounds N] [--txs N] [--p-valid F] [--f F] [--beta F]
//                [--seed N] [--adversaries N] [--concealers N] [--forgers N]
//                [--equivocators N] [--gossip] [--visibility F] [--quiet]
//
// Remaining collectors are honest. Prints the scenario summary, per-governor
// screening statistics and the collector standings.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "sim/scenario.hpp"

using namespace repchain;
using protocol::CollectorBehavior;

namespace {

[[noreturn]] void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --providers N     providers l (default 8)\n"
      "  --collectors N    collectors n (default 4)\n"
      "  --governors N     governors m (default 3)\n"
      "  --r N             collectors per provider (default 2)\n"
      "  --rounds N        rounds to run (default 10)\n"
      "  --txs N           txs per provider per round (default 2)\n"
      "  --p-valid F       ground-truth valid fraction (default 0.8)\n"
      "  --f F             screening efficiency knob (default 0.5)\n"
      "  --beta F          reputation discount beta (default 0.9)\n"
      "  --seed N          scenario seed (default 1)\n"
      "  --adversaries N   label-inverting collectors (default 0)\n"
      "  --concealers N    collectors dropping 50%% of txs (default 0)\n"
      "  --forgers N       collectors forging 30%% extra txs (default 0)\n"
      "  --equivocators N  collectors equivocating across governors (default 0)\n"
      "  --gossip          enable equivocation-detection label gossip\n"
      "  --visibility F    fraction of collectors each governor sees (default 1)\n"
      "  --quiet           summary only\n",
      argv0);
  std::exit(2);
}

double parse_double(const char* s) { return std::strtod(s, nullptr); }
std::size_t parse_size(const char* s) {
  return static_cast<std::size_t>(std::strtoull(s, nullptr, 10));
}

}  // namespace

int main(int argc, char** argv) {
  sim::ScenarioConfig cfg;
  cfg.topology = {8, 4, 3, 2};
  cfg.rounds = 10;
  std::size_t adversaries = 0, concealers = 0, forgers = 0, equivocators = 0;
  bool quiet = false;

  for (int i = 1; i < argc; ++i) {
    auto need_value = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag);
        usage(argv[0]);
      }
      return argv[++i];
    };
    const std::string arg = argv[i];
    if (arg == "--providers") {
      cfg.topology.providers = parse_size(need_value("--providers"));
    } else if (arg == "--collectors") {
      cfg.topology.collectors = parse_size(need_value("--collectors"));
    } else if (arg == "--governors") {
      cfg.topology.governors = parse_size(need_value("--governors"));
    } else if (arg == "--r") {
      cfg.topology.r = parse_size(need_value("--r"));
    } else if (arg == "--rounds") {
      cfg.rounds = parse_size(need_value("--rounds"));
    } else if (arg == "--txs") {
      cfg.txs_per_provider_per_round = parse_size(need_value("--txs"));
    } else if (arg == "--p-valid") {
      cfg.p_valid = parse_double(need_value("--p-valid"));
    } else if (arg == "--f") {
      cfg.governor.rep.f = parse_double(need_value("--f"));
    } else if (arg == "--beta") {
      cfg.governor.rep.beta = parse_double(need_value("--beta"));
    } else if (arg == "--seed") {
      cfg.seed = parse_size(need_value("--seed"));
    } else if (arg == "--adversaries") {
      adversaries = parse_size(need_value("--adversaries"));
    } else if (arg == "--concealers") {
      concealers = parse_size(need_value("--concealers"));
    } else if (arg == "--forgers") {
      forgers = parse_size(need_value("--forgers"));
    } else if (arg == "--equivocators") {
      equivocators = parse_size(need_value("--equivocators"));
    } else if (arg == "--gossip") {
      cfg.enable_label_gossip = true;
    } else if (arg == "--visibility") {
      cfg.governor_visibility = parse_double(need_value("--visibility"));
    } else if (arg == "--quiet") {
      quiet = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      usage(argv[0]);
    }
  }

  const std::size_t bad = adversaries + concealers + forgers + equivocators;
  if (bad > cfg.topology.collectors) {
    std::fprintf(stderr, "more misbehaving collectors than collectors\n");
    return 2;
  }
  for (std::size_t i = 0; i < adversaries; ++i) {
    cfg.behaviors.push_back(CollectorBehavior::adversarial());
  }
  for (std::size_t i = 0; i < concealers; ++i) {
    cfg.behaviors.push_back(CollectorBehavior::concealing(0.5));
  }
  for (std::size_t i = 0; i < forgers; ++i) {
    cfg.behaviors.push_back(CollectorBehavior::forging(0.3));
  }
  for (std::size_t i = 0; i < equivocators; ++i) {
    cfg.behaviors.push_back(CollectorBehavior::equivocating());
  }
  while (!cfg.behaviors.empty() && cfg.behaviors.size() < cfg.topology.collectors) {
    cfg.behaviors.push_back(CollectorBehavior::honest());
  }

  try {
    sim::Scenario scenario(cfg);
    scenario.run();
    const auto s = scenario.summary();

    std::printf("l=%zu n=%zu m=%zu r=%zu s=%zu | rounds=%zu f=%.2f beta=%.2f seed=%llu\n",
                cfg.topology.providers, cfg.topology.collectors, cfg.topology.governors,
                cfg.topology.r, cfg.topology.s(), cfg.rounds, cfg.governor.rep.f,
                cfg.governor.rep.beta, static_cast<unsigned long long>(cfg.seed));
    std::printf("txs=%llu blocks=%llu valid=%llu unchecked=%llu argued=%llu "
                "validations=%llu\n",
                static_cast<unsigned long long>(s.txs_submitted),
                static_cast<unsigned long long>(s.blocks),
                static_cast<unsigned long long>(s.chain_valid_txs),
                static_cast<unsigned long long>(s.chain_unchecked_txs),
                static_cast<unsigned long long>(s.chain_argued_txs),
                static_cast<unsigned long long>(s.validations_total));
    std::printf("agreement=%s audit=%s messages=%llu (%llu dropped)\n",
                s.agreement ? "yes" : "NO", s.chains_audit_ok ? "pass" : "FAIL",
                static_cast<unsigned long long>(s.network.messages_sent),
                static_cast<unsigned long long>(s.network.messages_dropped));
    if (quiet) return s.agreement && s.chains_audit_ok ? 0 : 1;

    std::printf("\nper-governor screening:\n");
    for (auto& g : scenario.governors()) {
      const auto& st = g->screening_stats();
      std::printf("  governor %u: screened=%llu checked=%llu unchecked=%llu "
                  "mistakes=%llu forgeries=%llu equivocations=%llu\n",
                  g->id().value(), static_cast<unsigned long long>(st.screened),
                  static_cast<unsigned long long>(st.checked),
                  static_cast<unsigned long long>(st.unchecked),
                  static_cast<unsigned long long>(g->metrics().mistakes),
                  static_cast<unsigned long long>(g->metrics().forgeries_detected),
                  static_cast<unsigned long long>(g->metrics().equivocations_detected));
    }

    std::printf("\ncollector standings (governor 0):\n");
    for (const auto& [c, share] : scenario.governor(0).revenue_shares()) {
      std::printf("  collector %u: share=%6.2f%% misreport=%+lld forge=%+lld "
                  "reward=%.2f\n",
                  c.value(), share * 100.0,
                  static_cast<long long>(
                      scenario.governor(0).reputation().misreport(c)),
                  static_cast<long long>(
                      scenario.governor(0).reputation().forge(c)),
                  scenario.collector_rewards()[c.value()]);
    }
    return s.agreement && s.chains_audit_ok ? 0 : 1;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
