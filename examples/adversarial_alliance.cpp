// Stress demo: every misbehaviour the paper discusses, at once.
//
//   * a collector that inverts every label (misreporting),
//   * a collector that drops most transactions (concealing),
//   * a collector that fabricates transactions (forging — rejected by
//     signature verification, Almost No Creation),
//   * a collector that equivocates across governors (Byzantine),
//   * a governor that, when it wins leadership, proposes a corrupted stake
//     state (expelled via the 3-step consensus evidence path).
//
// The run demonstrates that safety (Agreement, Chain Integrity, No
// Skipping), liveness (Validity via argue) and the incentive story all
// survive simultaneously.

#include <cstdio>

#include "sim/scenario.hpp"

using namespace repchain;
using protocol::CollectorBehavior;

int main() {
  std::printf("Adversarial alliance: 8 providers, 5 collectors (4 bad), "
              "4 governors (one cheater)\n\n");

  sim::ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 5;
  cfg.topology.governors = 4;
  cfg.topology.r = 5;  // every provider reaches all collectors: max overlap
  cfg.rounds = 12;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.governor.rep.f = 0.6;
  cfg.governor_stakes = {4, 4, 4, 4};
  cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::adversarial(),
                   CollectorBehavior::concealing(0.8), CollectorBehavior::forging(0.5),
                   CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = true;  // catch the equivocator
  cfg.seed = 1337;

  sim::Scenario scenario(cfg);

  // Governor 3 cheats whenever it leads a stake round; a standing stake
  // transfer keeps the 3-step consensus active until an honest leader
  // commits it, so governor 3's first stake leadership exposes it.
  scenario.governor(3).set_cheat_stake_consensus(true);
  scenario.governor(1).submit_stake_transfer(GovernorId(2), 1);
  scenario.queue().run();

  scenario.run();

  const auto summary = scenario.summary();
  std::printf("safety under fire:\n");
  std::printf("  agreement across governors : %s\n", summary.agreement ? "yes" : "NO");
  std::printf("  chain audits (integrity + no skipping): %s\n",
              summary.chains_audit_ok ? "pass" : "FAIL");
  std::printf("  blocks: %llu, valid txs: %llu, unchecked: %llu, argued back in:"
              " %llu\n\n",
              static_cast<unsigned long long>(summary.blocks),
              static_cast<unsigned long long>(summary.chain_valid_txs),
              static_cast<unsigned long long>(summary.chain_unchecked_txs),
              static_cast<unsigned long long>(summary.chain_argued_txs));

  std::uint64_t forged = 0;
  for (auto& c : scenario.collectors()) forged += c.stats().forged;
  std::uint64_t detected = 0;
  for (auto& g : scenario.governors()) detected += g->metrics().forgeries_detected;
  std::printf("forgery: %llu fabricated uploads, %llu detections across governors "
              "(every copy rejected by signature)\n",
              static_cast<unsigned long long>(forged),
              static_cast<unsigned long long>(detected));

  std::uint64_t equivocations = 0;
  for (auto& g : scenario.governors()) {
    equivocations += g->metrics().equivocations_detected;
  }
  std::printf("equivocation: %llu conflicting-signature proofs found via label "
              "gossip\n",
              static_cast<unsigned long long>(equivocations));

  const auto& gov = scenario.governor(0);
  std::printf("\ncollector standing under governor 0:\n");
  const char* roster[] = {"honest", "inverter", "concealer", "forger", "equivocator"};
  for (const auto& [c, share] : gov.revenue_shares()) {
    std::printf("  %-12s share %6.2f%%  misreport %+lld  forge %+lld\n",
                roster[c.value()], share * 100.0,
                static_cast<long long>(gov.reputation().misreport(c)),
                static_cast<long long>(gov.reputation().forge(c)));
  }

  std::printf("\ncheating governor 3: ");
  bool expelled_everywhere = true;
  for (auto& g : scenario.governors()) {
    if (g->id() != GovernorId(3)) {
      expelled_everywhere = expelled_everywhere && g->expelled().contains(GovernorId(3));
    }
  }
  std::printf("%s\n", expelled_everywhere
                           ? "expelled by every honest governor (evidence broadcast)"
                           : "not elected stake leader this run (no cheat to expose)");
  return 0;
}
