// Seeded chaos soak for CI: each seed derives a randomized fault schedule
// (burst loss, duplication, bounded reordering, a delay spike, usually a
// partition and sometimes a crash/restart) whose every window heals by
// round `rounds - 3`, then runs the full protocol with reliable delivery
// and checks the hard invariants:
//
//   - agreement: all governor chains share a prefix at the end;
//   - audit: every replica's chain passes the integrity/no-skipping audit;
//   - tail liveness: the last two (fault-free) rounds both commit a block,
//     i.e. the cluster recovered from whatever the schedule threw at it.
//
// The schedule is a pure function of the seed, so a CI failure reproduces
// locally with `chaos_soak --base-seed=<seed> --chaos-seeds=1`. Exit code is
// the number of failing seeds (0 = all clean).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;

struct Options {
  std::uint64_t seeds = 4;
  std::uint64_t base_seed = 90001;
  std::size_t rounds = 10;
};

bool parse_u64(const char* arg, const char* prefix, std::uint64_t& out) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  out = std::strtoull(arg + n, nullptr, 10);
  return true;
}

/// Random half-open round window inside [2, heal): faults never touch round 1
/// (genesis stake setup) and always end before the fault-free tail.
struct Window {
  std::size_t from;
  std::size_t until;
};

Window draw_window(Rng& rng, std::size_t heal) {
  const std::size_t from = 2 + rng.uniform(2);  // 2 or 3
  const std::size_t until =
      from + 1 + rng.uniform(heal > from + 1 ? heal - from - 1 : 1);
  return {from, until < heal ? until : heal};
}

/// Derive this seed's fault plan. Every window ends by `heal`; probabilities
/// stay inside what the reliable channel and catch-up sync are specified to
/// mask (loss <= 20%, at most a minority-island partition).
sim::ScenarioConfig make_config(std::uint64_t seed, std::size_t rounds) {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = rounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = seed;

  const std::size_t heal = rounds - 3;
  Rng chaos = Rng(seed).derive(0xC4A05);

  {
    sim::LossSpec loss;
    const Window w = draw_window(chaos, heal);
    loss.from_round = w.from;
    loss.until_round = w.until;
    loss.probability = 0.05 + 0.15 * chaos.uniform01();
    cfg.faults.losses = {loss};
  }
  if (chaos.bernoulli(0.7)) {
    sim::DuplicationSpec dup;
    const Window w = draw_window(chaos, heal);
    dup.from_round = w.from;
    dup.until_round = w.until;
    dup.probability = 0.1 + 0.3 * chaos.uniform01();
    cfg.faults.duplications = {dup};
  }
  if (chaos.bernoulli(0.7)) {
    sim::ReorderSpec reorder;
    const Window w = draw_window(chaos, heal);
    reorder.from_round = w.from;
    reorder.until_round = w.until;
    reorder.probability = 0.1 + 0.2 * chaos.uniform01();
    reorder.max_extra = (2 + chaos.uniform(3)) * kMillisecond;
    cfg.faults.reorders = {reorder};
  }
  if (chaos.bernoulli(0.5)) {
    sim::DelaySpikeSpec spike;
    const Window w = draw_window(chaos, heal);
    spike.from_round = w.from;
    spike.until_round = w.until;
    spike.extra = (1 + chaos.uniform(2)) * kMillisecond;
    spike.jitter = 1 * kMillisecond;
    cfg.faults.delay_spikes = {spike};
  }
  if (chaos.bernoulli(0.7)) {
    sim::PartitionSpec part;
    const Window w = draw_window(chaos, heal);
    part.from_round = w.from;
    part.until_round = w.until;
    const std::size_t first = chaos.uniform(cfg.topology.governors);
    part.governors = {first};
    if (chaos.bernoulli(0.3)) {
      // Two-governor island: splits the 4-governor quorum, so the majority
      // side stalls until the heal — the watchdog + catch-up path under test.
      part.governors.push_back((first + 1) % cfg.topology.governors);
    }
    cfg.faults.partitions = {part};
  }
  if (chaos.bernoulli(0.3)) {
    sim::CrashPlan crash;
    crash.governor = chaos.uniform(cfg.topology.governors);
    crash.crash_round = 3;
    crash.restart_round = 4;
    cfg.crashes = {crash};
  }
  return cfg;
}

struct Verdict {
  bool ok = true;
  std::string why;
};

Verdict check(sim::Scenario& s, const sim::ScenarioConfig& cfg) {
  const auto sum = s.summary();
  Verdict v;
  if (!sum.agreement) {
    v.ok = false;
    v.why += " governors diverged;";
  }
  if (!sum.chains_audit_ok) {
    v.ok = false;
    v.why += " chain audit failed;";
  }
  for (Round r = static_cast<Round>(cfg.rounds) - 1;
       r <= static_cast<Round>(cfg.rounds); ++r) {
    if (!s.observer().commit_at(r)) {
      v.ok = false;
      v.why += " round " + std::to_string(r) + " stalled after heal;";
    }
  }
  return v;
}

/// Failure diagnostics: the derived fault plan plus each replica's final
/// height and sync counters, enough to reproduce and localize without rerun.
void dump_failure(const sim::ScenarioConfig& cfg, sim::Scenario& s) {
  for (const auto& l : cfg.faults.losses) {
    std::printf("    plan: loss p=%.3f rounds [%zu,%zu)\n", l.probability,
                l.from_round, l.until_round);
  }
  for (const auto& d : cfg.faults.duplications) {
    std::printf("    plan: dup p=%.3f rounds [%zu,%zu)\n", d.probability,
                d.from_round, d.until_round);
  }
  for (const auto& r : cfg.faults.reorders) {
    std::printf("    plan: reorder p=%.3f max_extra=%lluus rounds [%zu,%zu)\n",
                r.probability, static_cast<unsigned long long>(r.max_extra),
                r.from_round, r.until_round);
  }
  for (const auto& ds : cfg.faults.delay_spikes) {
    std::printf("    plan: spike extra=%lluus jitter=%lluus rounds [%zu,%zu)\n",
                static_cast<unsigned long long>(ds.extra),
                static_cast<unsigned long long>(ds.jitter), ds.from_round,
                ds.until_round);
  }
  for (const auto& p : cfg.faults.partitions) {
    std::printf("    plan: partition governors={");
    for (std::size_t g : p.governors) std::printf(" %zu", g);
    std::printf(" } rounds [%zu,%zu)\n", p.from_round, p.until_round);
  }
  for (const auto& c : cfg.crashes) {
    std::printf("    plan: crash governor %zu round %zu, restart round %zu\n",
                c.governor, c.crash_round, c.restart_round);
  }
  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    if (s.governors()[g] == nullptr) {
      std::printf("    governor %zu: dead\n", g);
      continue;
    }
    const auto& gov = s.governor(g);
    std::printf(
        "    governor %zu: height=%llu synced=%llu sync_timeouts=%llu\n", g,
        static_cast<unsigned long long>(gov.chain().height()),
        static_cast<unsigned long long>(gov.metrics().blocks_synced),
        static_cast<unsigned long long>(gov.metrics().sync_timeouts));
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (parse_u64(argv[i], "--chaos-seeds=", opt.seeds)) continue;
    if (parse_u64(argv[i], "--base-seed=", opt.base_seed)) continue;
    std::uint64_t rounds = 0;
    if (parse_u64(argv[i], "--rounds=", rounds)) {
      opt.rounds = static_cast<std::size_t>(rounds);
      continue;
    }
    std::fprintf(stderr,
                 "usage: chaos_soak [--chaos-seeds=N] [--base-seed=S] "
                 "[--rounds=R]\n");
    return 2;
  }
  if (opt.rounds < 6) {
    std::fprintf(stderr, "chaos_soak: --rounds must be >= 6 (fault windows "
                         "heal by rounds - 3)\n");
    return 2;
  }

  std::printf("chaos_soak: %llu seed(s) from %llu, %zu rounds each\n",
              static_cast<unsigned long long>(opt.seeds),
              static_cast<unsigned long long>(opt.base_seed), opt.rounds);

  int failures = 0;
  for (std::uint64_t i = 0; i < opt.seeds; ++i) {
    const std::uint64_t seed = opt.base_seed + i;
    const sim::ScenarioConfig cfg = make_config(seed, opt.rounds);
    sim::Scenario s(cfg);
    s.run();
    const Verdict v = check(s, cfg);
    const auto sum = s.summary();

    std::uint64_t retransmits = 0;
    for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
      if (s.governors()[g] != nullptr) {
        if (const auto* ch = s.governor(g).channel()) {
          retransmits += ch->stats().retransmits;
        }
      }
    }
    std::uint64_t drops = 0;
    if (const auto* fs = s.fault_stats()) {
      drops = fs->loss_drops + fs->partition_drops;
    }

    std::printf(
        "  seed %llu: blocks=%llu drops=%llu retransmits=%llu stalled=%llu "
        "partition=%s crash=%s -> %s%s\n",
        static_cast<unsigned long long>(seed),
        static_cast<unsigned long long>(sum.blocks),
        static_cast<unsigned long long>(drops),
        static_cast<unsigned long long>(retransmits),
        static_cast<unsigned long long>(sum.stalled_events),
        cfg.faults.partitions.empty()
            ? "no"
            : (cfg.faults.partitions[0].governors.size() == 2 ? "quorum-split"
                                                              : "minority"),
        cfg.crashes.empty() ? "no" : "yes", v.ok ? "OK" : "FAIL:",
        v.why.c_str());
    if (!v.ok) {
      dump_failure(cfg, s);
      ++failures;
    }
  }

  if (failures > 0) {
    std::printf("chaos_soak: %d of %llu seeds FAILED\n", failures,
                static_cast<unsigned long long>(opt.seeds));
  } else {
    std::printf("chaos_soak: all seeds clean\n");
  }
  return failures;
}
