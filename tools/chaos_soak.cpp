// Seeded chaos soak for CI: each seed derives a randomized fault schedule
// (burst loss, duplication, bounded reordering, a delay spike, usually a
// partition and sometimes a crash/restart) whose every window heals by
// round `rounds - 3`, then runs the full protocol with reliable delivery
// and checks the hard invariants:
//
//   - agreement: all governor chains share a prefix at the end;
//   - audit: every replica's chain passes the integrity/no-skipping audit;
//   - tail liveness: the last two (fault-free) rounds both commit a block,
//     i.e. the cluster recovered from whatever the schedule threw at it.
//
// `--byzantine` switches the fault model from omission to commission: each
// seed derives an in-protocol misbehavior plan (a Byzantine collector,
// usually an equivocating leader with outsized stake, sometimes a lying sync
// peer paired with an honest governor's crash/restart to force catch-up
// syncs against it, sometimes a double-spending provider) on an otherwise
// clean network, with the governors' Byzantine defenses on. Checks become:
//
//   - honest-prefix agreement: every *honest* governor pair shares a prefix
//     (an equivocator's self-committed fork is excluded, not forgiven);
//   - audit + tail liveness as above (windows end two rounds before the end);
//   - provable punishment: each attack that demonstrably fired (attack-side
//     counters) produced its paired detection — the equivocator expelled by
//     every honest replica, forged uploads and label equivocations counted,
//     lies to corroborating governors rejected, double-spends blacklisted —
//     and at least one kByzantineEvidence trace was emitted.
//
// The schedule is a pure function of the seed, so a CI failure reproduces
// locally with `chaos_soak [--byzantine] --base-seed=<seed>
// --chaos-seeds=1`. Exit code is the number of failing seeds (0 = all
// clean).

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;

struct Options {
  std::uint64_t seeds = 4;
  std::uint64_t base_seed = 90001;
  std::size_t rounds = 10;
  std::uint64_t jobs = 1;
  bool byzantine = false;
};

/// printf into a growing per-seed log. Seeds may run concurrently
/// (--jobs), so nothing inside a seed writes to stdout directly; the merged
/// logs are emitted in seed order, making the output identical for any job
/// count.
#if defined(__GNUC__)
__attribute__((format(printf, 2, 3)))
#endif
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, std::min(static_cast<std::size_t>(n), sizeof buf - 1));
}

bool parse_u64(const char* arg, const char* prefix, std::uint64_t& out) {
  const std::size_t n = std::strlen(prefix);
  if (std::strncmp(arg, prefix, n) != 0) return false;
  out = std::strtoull(arg + n, nullptr, 10);
  return true;
}

/// Random half-open round window inside [2, heal): faults never touch round 1
/// (genesis stake setup) and always end before the fault-free tail.
struct Window {
  std::size_t from;
  std::size_t until;
};

Window draw_window(Rng& rng, std::size_t heal) {
  const std::size_t from = 2 + rng.uniform(2);  // 2 or 3
  const std::size_t until =
      from + 1 + rng.uniform(heal > from + 1 ? heal - from - 1 : 1);
  return {from, until < heal ? until : heal};
}

/// Derive this seed's fault plan. Every window ends by `heal`; probabilities
/// stay inside what the reliable channel and catch-up sync are specified to
/// mask (loss <= 20%, at most a minority-island partition).
sim::ScenarioConfig make_config(std::uint64_t seed, std::size_t rounds) {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = rounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = seed;

  const std::size_t heal = rounds - 3;
  Rng chaos = Rng(seed).derive(0xC4A05);

  {
    sim::LossSpec loss;
    const Window w = draw_window(chaos, heal);
    loss.from_round = w.from;
    loss.until_round = w.until;
    loss.probability = 0.05 + 0.15 * chaos.uniform01();
    cfg.faults.losses = {loss};
  }
  if (chaos.bernoulli(0.7)) {
    sim::DuplicationSpec dup;
    const Window w = draw_window(chaos, heal);
    dup.from_round = w.from;
    dup.until_round = w.until;
    dup.probability = 0.1 + 0.3 * chaos.uniform01();
    cfg.faults.duplications = {dup};
  }
  if (chaos.bernoulli(0.7)) {
    sim::ReorderSpec reorder;
    const Window w = draw_window(chaos, heal);
    reorder.from_round = w.from;
    reorder.until_round = w.until;
    reorder.probability = 0.1 + 0.2 * chaos.uniform01();
    reorder.max_extra = (2 + chaos.uniform(3)) * kMillisecond;
    cfg.faults.reorders = {reorder};
  }
  if (chaos.bernoulli(0.5)) {
    sim::DelaySpikeSpec spike;
    const Window w = draw_window(chaos, heal);
    spike.from_round = w.from;
    spike.until_round = w.until;
    spike.extra = (1 + chaos.uniform(2)) * kMillisecond;
    spike.jitter = 1 * kMillisecond;
    cfg.faults.delay_spikes = {spike};
  }
  if (chaos.bernoulli(0.7)) {
    sim::PartitionSpec part;
    const Window w = draw_window(chaos, heal);
    part.from_round = w.from;
    part.until_round = w.until;
    const std::size_t first = chaos.uniform(cfg.topology.governors);
    part.governors = {first};
    if (chaos.bernoulli(0.3)) {
      // Two-governor island: splits the 4-governor quorum, so the majority
      // side stalls until the heal — the watchdog + catch-up path under test.
      part.governors.push_back((first + 1) % cfg.topology.governors);
    }
    cfg.faults.partitions = {part};
  }
  if (chaos.bernoulli(0.3)) {
    sim::CrashPlan crash;
    crash.governor = chaos.uniform(cfg.topology.governors);
    crash.crash_round = 3;
    crash.restart_round = 4;
    cfg.crashes = {crash};
  }
  return cfg;
}

/// Derive this seed's Byzantine plan: same topology and reliable delivery,
/// but a clean network — the adversary layer injects commission faults
/// inside the protocol and every deviation must be *caught*, not masked.
/// Windows end at rounds - 2 so the last two rounds prove recovery.
sim::ScenarioConfig make_byzantine_config(std::uint64_t seed, std::size_t rounds) {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = rounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = seed;

  const std::size_t heal = rounds - 2;
  Rng byz = Rng(seed).derive(0xB12A);

  // The would-be equivocator gets outsized stake so it actually wins
  // elections inside its window. Governor 0 stays honest: it is the
  // RoundObserver's watched replica, whose commits drive the tail-liveness
  // check.
  const std::size_t equivocator = 1 + byz.uniform(3);
  cfg.governor_stakes.assign(cfg.topology.governors, 1);
  cfg.governor_stakes[equivocator] = 5;

  {
    // A Byzantine collector is always on the board: targeted misreports,
    // forged uploads, and (half the time) cross-governor label equivocation.
    adversary::ByzantineCollectorSpec c;
    c.from_round = 2;
    c.until_round = heal;
    c.collector = byz.uniform(cfg.topology.collectors);
    c.flip_probability = 0.2 + 0.3 * byz.uniform01();
    c.forge_probability = 0.1 + 0.2 * byz.uniform01();
    c.equivocate = byz.bernoulli(0.5);
    if (byz.bernoulli(0.5)) {
      c.flip_by_provider = {
          {static_cast<std::uint32_t>(byz.uniform(cfg.topology.providers)), 0.9}};
    }
    cfg.adversary.byzantine_collectors = {c};
  }
  if (byz.bernoulli(0.7)) {
    adversary::EquivocatingLeaderSpec e;
    e.from_round = 2;
    e.until_round = heal;
    e.governor = equivocator;
    cfg.adversary.equivocating_leaders = {e};
  }
  if (byz.bernoulli(0.5)) {
    // A lying sync peer is only interesting if somebody syncs against it:
    // pair it with a crash/restart of the remaining honest governor, whose
    // catch-up runs inside the lying window and must corroborate its way
    // past the liar.
    std::size_t liar = 1 + byz.uniform(3);
    if (liar == equivocator) liar = 1 + (liar % 3);
    adversary::LyingSyncSpec l;
    l.from_round = 2;
    l.until_round = heal;
    l.governor = liar;
    cfg.adversary.lying_sync_peers = {l};
    sim::CrashPlan crash;
    crash.governor = 6 - equivocator - liar;  // the third of {1,2,3}
    crash.crash_round = 3;
    crash.restart_round = 4;
    cfg.crashes = {crash};
  }
  if (byz.bernoulli(0.5)) {
    adversary::DoubleSpendSpec d;
    d.from_round = 2;
    d.until_round = heal;
    d.provider = byz.uniform(cfg.topology.providers);
    d.probability = 0.3 + 0.3 * byz.uniform01();
    cfg.adversary.double_spenders = {d};
  }
  return cfg;
}

/// Topology indices of governors scripted to commit *chain-level* Byzantine
/// faults (equivocating leaders self-commit a fork, so they are excluded
/// from the honest-prefix check; a lying sync peer's own chain stays honest).
std::set<std::size_t> byzantine_governors(const sim::ScenarioConfig& cfg) {
  std::set<std::size_t> out;
  for (const auto& e : cfg.adversary.equivocating_leaders) out.insert(e.governor);
  return out;
}

struct Verdict {
  bool ok = true;
  std::string why;
};

/// Compact one-line fault/adversary mix, printed for every seed (pass or
/// fail) so a soak log shows at a glance what each seed actually exercised.
std::string plan_line(const sim::ScenarioConfig& cfg) {
  char buf[128];
  std::string out;
  const auto add = [&out](const char* text) {
    if (!out.empty()) out += ' ';
    out += text;
  };
  for (const auto& l : cfg.faults.losses) {
    std::snprintf(buf, sizeof buf, "loss[%zu,%zu)p=%.2f", l.from_round, l.until_round,
                  l.probability);
    add(buf);
  }
  for (const auto& d : cfg.faults.duplications) {
    std::snprintf(buf, sizeof buf, "dup[%zu,%zu)p=%.2f", d.from_round, d.until_round,
                  d.probability);
    add(buf);
  }
  for (const auto& r : cfg.faults.reorders) {
    std::snprintf(buf, sizeof buf, "reorder[%zu,%zu)p=%.2f", r.from_round,
                  r.until_round, r.probability);
    add(buf);
  }
  for (const auto& ds : cfg.faults.delay_spikes) {
    std::snprintf(buf, sizeof buf, "spike[%zu,%zu)+%lluus", ds.from_round,
                  ds.until_round, static_cast<unsigned long long>(ds.extra));
    add(buf);
  }
  for (const auto& p : cfg.faults.partitions) {
    std::string island;
    for (const std::size_t g : p.governors) {
      if (!island.empty()) island += ',';
      island += 'g' + std::to_string(g);
    }
    std::snprintf(buf, sizeof buf, "partition{%s}[%zu,%zu)", island.c_str(),
                  p.from_round, p.until_round);
    add(buf);
  }
  for (const auto& e : cfg.adversary.equivocating_leaders) {
    std::snprintf(buf, sizeof buf, "equiv-leader g%zu [%zu,%zu)", e.governor,
                  e.from_round, e.until_round);
    add(buf);
  }
  for (const auto& l : cfg.adversary.lying_sync_peers) {
    std::snprintf(buf, sizeof buf, "lying-sync g%zu [%zu,%zu)", l.governor,
                  l.from_round, l.until_round);
    add(buf);
  }
  for (const auto& c : cfg.adversary.byzantine_collectors) {
    std::snprintf(buf, sizeof buf, "byz-collector c%zu flip=%.2f forge=%.2f%s%s",
                  c.collector, c.flip_probability, c.forge_probability,
                  c.equivocate ? " equiv" : "",
                  c.flip_by_provider.empty() ? "" : " targeted");
    add(buf);
  }
  for (const auto& d : cfg.adversary.double_spenders) {
    std::snprintf(buf, sizeof buf, "double-spend p%zu p=%.2f [%zu,%zu)", d.provider,
                  d.probability, d.from_round, d.until_round);
    add(buf);
  }
  for (const auto& c : cfg.crashes) {
    std::snprintf(buf, sizeof buf, "crash g%zu @%zu->%zu", c.governor, c.crash_round,
                  c.restart_round);
    add(buf);
  }
  if (out.empty()) out = "clean";
  return out;
}

Verdict check(sim::Scenario& s, const sim::ScenarioConfig& cfg) {
  const auto sum = s.summary();
  Verdict v;
  if (!sum.agreement) {
    v.ok = false;
    v.why += " governors diverged;";
  }
  if (!sum.chains_audit_ok) {
    v.ok = false;
    v.why += " chain audit failed;";
  }
  for (Round r = static_cast<Round>(cfg.rounds) - 1;
       r <= static_cast<Round>(cfg.rounds); ++r) {
    if (!s.observer().commit_at(r)) {
      v.ok = false;
      v.why += " round " + std::to_string(r) + " stalled after heal;";
    }
  }
  return v;
}

/// Byzantine-mode verdict: safety among honest replicas plus the provable
/// punishment gates — every attack whose attack-side counters show it fired
/// must have produced its paired detection.
Verdict check_byzantine(sim::Scenario& s, const sim::ScenarioConfig& cfg) {
  Verdict v;
  const auto fail = [&v](const std::string& why) {
    v.ok = false;
    v.why += ' ';
    v.why += why;
    v.why += ';';
  };
  const std::set<std::size_t> byz = byzantine_governors(cfg);

  // Safety: honest replicas never fork, and every honest chain audits.
  const protocol::Governor* ref = nullptr;
  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    if (byz.contains(g) || s.governors()[g] == nullptr) continue;
    const auto& gov = s.governor(g);
    if (!gov.chain().audit()) fail("governor " + std::to_string(g) + " audit failed");
    if (ref == nullptr) {
      ref = &gov;
    } else if (!ledger::ChainStore::same_prefix(ref->chain(), gov.chain())) {
      fail("honest governors forked (governor " + std::to_string(g) + ")");
    }
  }

  // Tail liveness on the watched (honest) replica: the last two rounds lie
  // beyond every adversary window and must both commit.
  for (Round r = static_cast<Round>(cfg.rounds) - 1; r <= static_cast<Round>(cfg.rounds);
       ++r) {
    if (!s.observer().commit_at(r)) {
      fail("round " + std::to_string(r) + " stalled after heal");
    }
  }

  // Attack-side tallies: what the scripted adversaries actually did.
  std::uint64_t equivocations_sent = 0, lies_to_governors = 0;
  std::uint64_t detected_proposal_equiv = 0, lying_rejected = 0, double_spends = 0;
  std::uint64_t forgeries_detected = 0, label_equivocations = 0, evidence = 0;
  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    if (s.governors()[g] == nullptr) continue;
    const auto& m = s.governor(g).metrics();
    equivocations_sent += m.byzantine_equivocations_sent;
    lies_to_governors += m.byzantine_lies_to_governors;
    if (!byz.contains(g)) {
      detected_proposal_equiv += m.proposal_equivocations;
      lying_rejected += m.lying_sync_rejected;
      double_spends += m.double_spends_detected;
      forgeries_detected += m.forgeries_detected;
      label_equivocations += m.equivocations_detected;
      evidence += m.byzantine_evidence;
    }
  }
  std::uint64_t forged = 0, equivocated_uploads = 0;
  for (const auto& c : cfg.adversary.byzantine_collectors) {
    forged += s.collectors()[c.collector].stats().forged;
    equivocated_uploads += s.collectors()[c.collector].stats().equivocated;
  }
  std::uint64_t double_spends_submitted = 0;
  for (const auto& d : cfg.adversary.double_spenders) {
    double_spends_submitted += s.providers()[d.provider].double_spends_submitted();
  }

  // Provable punishment: detections must match the attacks that fired.
  if (equivocations_sent > 0) {
    if (detected_proposal_equiv == 0) fail("proposal equivocation undetected");
    for (const auto& e : cfg.adversary.equivocating_leaders) {
      const GovernorId accused(static_cast<std::uint32_t>(e.governor));
      for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
        if (byz.contains(g) || s.governors()[g] == nullptr) continue;
        if (!s.governor(g).expelled().contains(accused)) {
          fail("governor " + std::to_string(g) + " did not expel equivocator");
        }
      }
    }
  }
  if (lies_to_governors > 0 && lying_rejected == 0) {
    fail("lying sync peer served governors but was never rejected");
  }
  if (forged > 0 && forgeries_detected == 0) fail("forged uploads undetected");
  if (equivocated_uploads > 0 && label_equivocations == 0) {
    fail("label equivocation undetected");
  }
  if (double_spends_submitted > 0 && double_spends == 0) {
    fail("double spends undetected");
  }
  const bool any_attack = equivocations_sent + lies_to_governors + forged +
                              equivocated_uploads + double_spends_submitted >
                          0;
  if (any_attack && evidence == 0) fail("no kByzantineEvidence emitted");
  return v;
}

/// Failure diagnostics: the derived fault plan plus each replica's final
/// height and sync counters, enough to reproduce and localize without rerun.
void dump_failure(std::string& out, const sim::ScenarioConfig& cfg, sim::Scenario& s) {
  for (const auto& l : cfg.faults.losses) {
    appendf(out, "    plan: loss p=%.3f rounds [%zu,%zu)\n", l.probability,
            l.from_round, l.until_round);
  }
  for (const auto& d : cfg.faults.duplications) {
    appendf(out, "    plan: dup p=%.3f rounds [%zu,%zu)\n", d.probability,
            d.from_round, d.until_round);
  }
  for (const auto& r : cfg.faults.reorders) {
    appendf(out, "    plan: reorder p=%.3f max_extra=%lluus rounds [%zu,%zu)\n",
            r.probability, static_cast<unsigned long long>(r.max_extra),
            r.from_round, r.until_round);
  }
  for (const auto& ds : cfg.faults.delay_spikes) {
    appendf(out, "    plan: spike extra=%lluus jitter=%lluus rounds [%zu,%zu)\n",
            static_cast<unsigned long long>(ds.extra),
            static_cast<unsigned long long>(ds.jitter), ds.from_round,
            ds.until_round);
  }
  for (const auto& p : cfg.faults.partitions) {
    appendf(out, "    plan: partition governors={");
    for (std::size_t g : p.governors) appendf(out, " %zu", g);
    appendf(out, " } rounds [%zu,%zu)\n", p.from_round, p.until_round);
  }
  for (const auto& c : cfg.crashes) {
    appendf(out, "    plan: crash governor %zu round %zu, restart round %zu\n",
            c.governor, c.crash_round, c.restart_round);
  }
  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    if (s.governors()[g] == nullptr) {
      appendf(out, "    governor %zu: dead\n", g);
      continue;
    }
    const auto& gov = s.governor(g);
    std::string expelled;
    for (const auto id : gov.expelled()) {
      expelled += ' ';
      expelled += std::to_string(id.value());
    }
    appendf(out,
            "    governor %zu: height=%llu synced=%llu sync_timeouts=%llu "
            "prop_equiv=%llu evidence=%llu equiv_sent=%llu lies=%llu expelled={%s }\n",
            g, static_cast<unsigned long long>(gov.chain().height()),
            static_cast<unsigned long long>(gov.metrics().blocks_synced),
            static_cast<unsigned long long>(gov.metrics().sync_timeouts),
            static_cast<unsigned long long>(gov.metrics().proposal_equivocations),
            static_cast<unsigned long long>(gov.metrics().byzantine_evidence),
            static_cast<unsigned long long>(gov.metrics().byzantine_equivocations_sent),
            static_cast<unsigned long long>(gov.metrics().byzantine_lies_served),
            expelled.c_str());
  }
  for (const auto& rec : s.history()) {
    appendf(out, "    round %llu: leader=%s block_txs=%zu\n",
            static_cast<unsigned long long>(rec.round),
            rec.leader ? std::to_string(rec.leader->value()).c_str() : "-",
            rec.block_txs);
  }
}

/// One fully-isolated shard: build, run, check, and render the log for a
/// single seed. Everything it touches is local, so shards run on any worker
/// thread of a ParallelSweep without synchronization.
struct SeedResult {
  bool ok = true;
  std::string log;
};

SeedResult run_seed(const Options& opt, std::uint64_t index) {
  const std::uint64_t seed = opt.base_seed + index;
  const sim::ScenarioConfig cfg = opt.byzantine
                                      ? make_byzantine_config(seed, opt.rounds)
                                      : make_config(seed, opt.rounds);
  sim::Scenario s(cfg);
  s.run();
  const Verdict v = opt.byzantine ? check_byzantine(s, cfg) : check(s, cfg);
  const auto sum = s.summary();

  std::uint64_t retransmits = 0;
  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    if (s.governors()[g] != nullptr) {
      if (const auto* ch = s.governor(g).channel()) {
        retransmits += ch->stats().retransmits;
      }
    }
  }
  std::uint64_t drops = 0;
  if (const auto* fs = s.fault_stats()) {
    drops = fs->loss_drops + fs->partition_drops;
  }

  SeedResult result;
  result.ok = v.ok;
  appendf(result.log,
          "  seed %llu: blocks=%llu drops=%llu retransmits=%llu stalled=%llu "
          "evidence=%llu -> %s%s\n",
          static_cast<unsigned long long>(seed),
          static_cast<unsigned long long>(sum.blocks),
          static_cast<unsigned long long>(drops),
          static_cast<unsigned long long>(retransmits),
          static_cast<unsigned long long>(sum.stalled_events),
          static_cast<unsigned long long>(sum.byzantine_evidence),
          v.ok ? "OK" : "FAIL:", v.why.c_str());
  appendf(result.log, "    mix: %s\n", plan_line(cfg).c_str());
  if (!v.ok) dump_failure(result.log, cfg, s);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (parse_u64(argv[i], "--chaos-seeds=", opt.seeds)) continue;
    if (parse_u64(argv[i], "--base-seed=", opt.base_seed)) continue;
    if (parse_u64(argv[i], "--jobs=", opt.jobs)) continue;
    if (std::strcmp(argv[i], "--byzantine") == 0) {
      opt.byzantine = true;
      continue;
    }
    std::uint64_t rounds = 0;
    if (parse_u64(argv[i], "--rounds=", rounds)) {
      opt.rounds = static_cast<std::size_t>(rounds);
      continue;
    }
    std::fprintf(stderr,
                 "usage: chaos_soak [--byzantine] [--chaos-seeds=N] "
                 "[--base-seed=S] [--rounds=R] [--jobs=N]\n");
    return 2;
  }
  if (opt.rounds < 6) {
    std::fprintf(stderr, "chaos_soak: --rounds must be >= 6 (fault windows "
                         "heal by rounds - 3)\n");
    return 2;
  }

  std::printf("chaos_soak: %s%llu seed(s) from %llu, %zu rounds each\n",
              opt.byzantine ? "byzantine mode, " : "",
              static_cast<unsigned long long>(opt.seeds),
              static_cast<unsigned long long>(opt.base_seed), opt.rounds);

  // Shard the seeds over the worker pool; results are merged in seed order,
  // so stdout is byte-identical for any --jobs value (the jobs note goes to
  // stderr for exactly that reason).
  const sim::ParallelSweep sweep(static_cast<std::size_t>(opt.jobs));
  if (sweep.jobs() > 1) {
    std::fprintf(stderr, "chaos_soak: running %zu seed shards on %zu threads\n",
                 static_cast<std::size_t>(opt.seeds), sweep.jobs());
  }
  const std::vector<SeedResult> results = sweep.map<SeedResult>(
      static_cast<std::size_t>(opt.seeds),
      [&opt](std::size_t i) { return run_seed(opt, i); });

  int failures = 0;
  for (const SeedResult& result : results) {
    std::fputs(result.log.c_str(), stdout);
    if (!result.ok) ++failures;
  }

  if (failures > 0) {
    std::printf("chaos_soak: %d of %llu seeds FAILED\n", failures,
                static_cast<unsigned long long>(opt.seeds));
  } else {
    std::printf("chaos_soak: all seeds clean\n");
  }
  return failures;
}
