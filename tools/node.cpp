// One cluster governor process. Handed a canonical config blob, a governor
// index and the driver's loopback port, it rebuilds the deterministic
// SystemModel from the blob, constructs its governor, dials the driver and
// serves the lockstep RPC loop until shutdown (see src/cluster/). Spawned
// by cluster_driver; runnable by hand for debugging a single node.
//
//   node --config=<blob-file> --index=<governor index> --connect=<port>
//        [--state-dir=<dir>] [--incarnation=<n>]
//        [--free-run --peer-base=<port>]
//
// --state-dir attaches a durable FileStateStore (WAL + snapshots) so the
// chain survives a SIGKILL; --incarnation=<n> (n > 0) marks a restarted
// process: it replays its store before dialing and announces session
// resume in its welcome.
//
// --free-run switches from the lockstep RPC loop to the self-driving mode:
// the governor's rounds are armed on a real poll loop, protocol traffic
// travels peer-to-peer over a TCP mesh (this node listens on
// --peer-base + index and dials every lower-indexed peer), and the dialed
// driver port becomes a thin control/observation channel.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "cluster/free_node.hpp"
#include "cluster/node_host.hpp"
#include "sim/harness/spec_codec.hpp"

namespace {

using namespace repchain;

[[noreturn]] void die(const std::string& msg) {
  std::fprintf(stderr, "node: %s\n", msg.c_str());
  std::exit(2);
}

Bytes read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open config blob " + path);
  return Bytes((std::istreambuf_iterator<char>(in)),
               std::istreambuf_iterator<char>());
}

int dial(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) die(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    die(std::string("connect: ") + std::strerror(errno));
  }
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

}  // namespace

int main(int argc, char** argv) {
  std::string config_path;
  std::string state_dir;
  long index = -1;
  long port = -1;
  long incarnation = 0;
  long peer_base = 0;
  bool free_run = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--config=", 0) == 0) {
      config_path = arg.substr(9);
    } else if (arg.rfind("--index=", 0) == 0) {
      index = std::strtol(arg.c_str() + 8, nullptr, 10);
    } else if (arg.rfind("--connect=", 0) == 0) {
      port = std::strtol(arg.c_str() + 10, nullptr, 10);
    } else if (arg.rfind("--state-dir=", 0) == 0) {
      state_dir = arg.substr(12);
    } else if (arg.rfind("--incarnation=", 0) == 0) {
      incarnation = std::strtol(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--peer-base=", 0) == 0) {
      peer_base = std::strtol(arg.c_str() + 12, nullptr, 10);
    } else if (arg == "--free-run") {
      free_run = true;
    } else {
      die("unknown argument " + arg);
    }
  }
  if (config_path.empty() || index < 0 || port <= 0 || port > 65535 ||
      incarnation < 0) {
    die("usage: node --config=<blob-file> --index=<i> --connect=<port> "
        "[--state-dir=<dir>] [--incarnation=<n>] "
        "[--free-run --peer-base=<port>]");
  }
  if (incarnation > 0 && state_dir.empty()) {
    die("--incarnation requires --state-dir (nothing to recover from)");
  }
  if (free_run && (peer_base <= 0 || peer_base + index > 65535)) {
    die("--free-run requires --peer-base with room for every node's port");
  }

  try {
    const sim::ScenarioConfig config = sim::decode_config(read_file(config_path));
    if (free_run) {
      cluster::FreeNodeHost host(config, static_cast<std::size_t>(index),
                                 static_cast<std::uint16_t>(peer_base),
                                 state_dir,
                                 static_cast<std::uint32_t>(incarnation));
      host.run(dial(static_cast<std::uint16_t>(port)));
    } else {
      cluster::NodeHost host(config, static_cast<std::size_t>(index), state_dir,
                             static_cast<std::uint32_t>(incarnation));
      host.serve(dial(static_cast<std::uint16_t>(port)));
    }
  } catch (const std::exception& e) {
    die(e.what());
  }
  return 0;
}
