// Socket-level chaos intermediary. Sits between cluster processes and the
// driver (or between any two wire-protocol peers), splicing bytes in both
// directions while carrying the simulator's FaultSchedule semantics onto
// real TCP: scheduled forwarding stalls (DelayFault), partition windows
// that sever every connection and refuse new ones (PartitionFault), and a
// one-shot connection reset that first forwards a byte-level truncation of
// the stream — a partial frame followed by a hard close, exactly the
// failure the FrameReader/reconnect paths must absorb.
//
//   wire_proxy --listen=<port> --connect=<port>
//              [--stall=<period_ms>:<dur_ms>]   recurring stall windows
//              [--partition=<start_ms>:<dur_ms>] sever + refuse during window
//              [--reset-conn=<n>[@<bytes>]]     accepted connection #n: forward
//                                               only <bytes> (default 16), close
//
// Runs until killed. Faults are wall-clock scheduled on the PollLoop, the
// same timer seam TcpTransport's heartbeats ride in production.

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/errors.hpp"
#include "common/sim_time.hpp"
#include "runtime/poll_loop.hpp"

namespace {

using namespace repchain;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw NetError(std::string("fcntl: ") + std::strerror(errno));
  }
}

int listen_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    throw NetError(std::string("bind/listen: ") + std::strerror(errno));
  }
  set_nonblocking(fd);
  return fd;
}

int dial_loopback(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    throw NetError(std::string("upstream connect: ") + std::strerror(errno));
  }
  set_nonblocking(fd);
  return fd;
}

struct Options {
  std::uint16_t listen_port = 0;
  std::uint16_t connect_port = 0;
  // Recurring stalls: every stall_period, pause forwarding for stall_dur.
  SimDuration stall_period = 0;
  SimDuration stall_dur = 0;
  // One partition window severing every connection.
  SimDuration partition_start = 0;
  SimDuration partition_dur = 0;
  // Reset accepted connection #reset_conn after forwarding reset_bytes.
  long reset_conn = -1;
  std::size_t reset_bytes = 16;
};

class Proxy {
 public:
  explicit Proxy(Options opts) : opts_(opts) {}

  void run() {
    listen_fd_ = listen_loopback(opts_.listen_port);
    // Readiness announcement: supervising scripts wait for this line
    // instead of probing with a TCP connect — a probe would sit in the
    // listen backlog until the event loop accepts it, by which time the
    // upstream may be up, and a spliced probe would shift the fault
    // schedule's connection numbering.
    std::fprintf(stderr, "wire_proxy: listening on %u -> 127.0.0.1:%u\n",
                 opts_.listen_port, opts_.connect_port);
    loop_.watch(listen_fd_, POLLIN, [this](short) { on_accept(); });
    if (opts_.stall_period > 0) schedule_stall();
    if (opts_.partition_dur > 0) {
      loop_.schedule_at(opts_.partition_start, [this] {
        partitioned_ = true;
        std::fprintf(stderr, "wire_proxy: partition begins, severing %zu\n",
                     relays_.size() / 2);
        // Collect first: close_relay unwatches and erases map entries.
        std::vector<std::shared_ptr<Relay>> doomed;
        for (auto& [fd, r] : relays_) doomed.push_back(r);
        for (auto& r : doomed) close_relay(*r);
        loop_.schedule_at(opts_.partition_start + opts_.partition_dur,
                          [this] { partitioned_ = false; });
      });
    }
    // Serve forever (the supervising script kills the process).
    for (;;) loop_.run_until(loop_.now() + 3600 * kSecond);
  }

 private:
  // One spliced connection pair: a = accepted client, b = upstream dial.
  struct Relay {
    int a = -1;
    int b = -1;
    Bytes a_out;  // bytes awaiting write toward a
    Bytes b_out;  // bytes awaiting write toward b
    // >= 0: forward at most this many more bytes, then hard-close both.
    long truncate_budget = -1;
    bool closed = false;
  };

  void on_accept() {
    const int a = ::accept(listen_fd_, nullptr, nullptr);
    if (a < 0) return;
    if (partitioned_) {
      ::close(a);  // refused: the network is down
      return;
    }
    int b = -1;
    try {
      b = dial_loopback(opts_.connect_port);
    } catch (const NetError& e) {
      std::fprintf(stderr, "wire_proxy: %s\n", e.what());
      ::close(a);
      return;
    }
    // Spliced connections only: probes the upstream refused don't shift
    // the fault schedule's numbering.
    const std::size_t index = accepted_++;
    sockaddr_in peer{};
    socklen_t plen = sizeof(peer);
    (void)::getpeername(a, reinterpret_cast<sockaddr*>(&peer), &plen);
    std::fprintf(stderr, "wire_proxy: conn %zu spliced (client port %u)\n",
                 index, ntohs(peer.sin_port));
    set_nonblocking(a);
    auto relay = std::make_shared<Relay>();
    relay->a = a;
    relay->b = b;
    if (opts_.reset_conn >= 0 &&
        index == static_cast<std::size_t>(opts_.reset_conn)) {
      relay->truncate_budget = static_cast<long>(opts_.reset_bytes);
      std::fprintf(stderr,
                   "wire_proxy: conn %zu scheduled for truncation after "
                   "%zu bytes\n",
                   index, opts_.reset_bytes);
    }
    relays_[a] = relay;
    relays_[b] = relay;
    loop_.watch(a, POLLIN, [this, relay](short ev) { on_io(*relay, relay->a, ev); });
    loop_.watch(b, POLLIN, [this, relay](short ev) { on_io(*relay, relay->b, ev); });
  }

  void on_io(Relay& r, int fd, short revents) {
    if (r.closed) return;
    const bool is_a = fd == r.a;
    const int peer = is_a ? r.b : r.a;
    Bytes& toward_peer = is_a ? r.b_out : r.a_out;
    Bytes& toward_fd = is_a ? r.a_out : r.b_out;
    if ((revents & POLLOUT) != 0) flush(fd, toward_fd);
    if ((revents & POLLIN) != 0 && !stalled_) {
      std::uint8_t buf[65536];
      for (;;) {
        const ssize_t n = ::read(fd, buf, sizeof(buf));
        if (n > 0) {
          std::size_t take = static_cast<std::size_t>(n);
          if (r.truncate_budget >= 0) {
            take = std::min(take, static_cast<std::size_t>(r.truncate_budget));
            r.truncate_budget -= static_cast<long>(take);
          }
          toward_peer.insert(toward_peer.end(), buf, buf + take);
          if (r.truncate_budget == 0) {
            // Flush the truncated prefix so the peer sees a partial frame,
            // then reset: the byte-level chop the FrameReader must discard.
            flush(peer, toward_peer);
            close_relay(r);
            return;
          }
          continue;
        }
        if (n == 0) {  // half of the pair closed: tear the whole splice down
          flush(peer, toward_peer);
          close_relay(r);
          return;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_relay(r);
        return;
      }
    }
    if ((revents & (POLLERR | POLLHUP)) != 0) {
      flush(peer, toward_peer);
      close_relay(r);
      return;
    }
    flush(peer, toward_peer);
    if (r.closed) return;
    refresh_events(r);
  }

  /// Best-effort write of the pending buffer; keeps the unsent tail.
  void flush(int fd, Bytes& out) {
    std::size_t off = 0;
    while (off < out.size()) {
      const ssize_t n = ::write(fd, out.data() + off, out.size() - off);
      if (n > 0) {
        off += static_cast<std::size_t>(n);
        continue;
      }
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      break;  // peer reset: the reader side will observe it next poll
    }
    out.erase(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(off));
  }

  void refresh_events(Relay& r) {
    // During a stall nothing is read, so inbound bytes queue in the kernel
    // (backpressure) instead of the proxy — the stream stays lossless.
    const short in = stalled_ ? 0 : POLLIN;
    loop_.set_events(r.a, static_cast<short>(in | (r.a_out.empty() ? 0 : POLLOUT)));
    loop_.set_events(r.b, static_cast<short>(in | (r.b_out.empty() ? 0 : POLLOUT)));
  }

  void close_relay(Relay& r) {
    if (r.closed) return;
    r.closed = true;
    for (const int fd : {r.a, r.b}) {
      loop_.unwatch(fd);
      relays_.erase(fd);
      // SO_LINGER 0: close sends RST, a genuine connection reset rather
      // than an orderly FIN — the harsher failure mode.
      const linger lg{1, 0};
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
      ::close(fd);
    }
  }

  void schedule_stall() {
    loop_.schedule_at(loop_.now() + opts_.stall_period, [this] {
      stalled_ = true;
      for (auto& [fd, r] : relays_) refresh_events(*r);
      loop_.schedule_at(loop_.now() + opts_.stall_dur, [this] {
        stalled_ = false;
        for (auto& [fd, r] : relays_) refresh_events(*r);
      });
      schedule_stall();
    });
  }

  Options opts_;
  runtime::PollLoop loop_;
  int listen_fd_ = -1;
  std::size_t accepted_ = 0;
  bool stalled_ = false;
  bool partitioned_ = false;
  std::map<int, std::shared_ptr<Relay>> relays_;
};

bool parse_window(const std::string& spec, SimDuration& first,
                  SimDuration& second) {
  const std::size_t colon = spec.find(':');
  if (colon == std::string::npos) return false;
  first = std::strtoul(spec.substr(0, colon).c_str(), nullptr, 10) * kMillisecond;
  second = std::strtoul(spec.substr(colon + 1).c_str(), nullptr, 10) * kMillisecond;
  return first > 0 && second > 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--listen=", 0) == 0) {
      opts.listen_port = static_cast<std::uint16_t>(
          std::strtoul(arg.c_str() + 9, nullptr, 10));
    } else if (arg.rfind("--connect=", 0) == 0) {
      opts.connect_port = static_cast<std::uint16_t>(
          std::strtoul(arg.c_str() + 10, nullptr, 10));
    } else if (arg.rfind("--stall=", 0) == 0) {
      if (!parse_window(arg.substr(8), opts.stall_period, opts.stall_dur)) {
        std::fprintf(stderr, "bad --stall (want period_ms:dur_ms)\n");
        return 2;
      }
    } else if (arg.rfind("--partition=", 0) == 0) {
      if (!parse_window(arg.substr(12), opts.partition_start,
                        opts.partition_dur)) {
        std::fprintf(stderr, "bad --partition (want start_ms:dur_ms)\n");
        return 2;
      }
    } else if (arg.rfind("--reset-conn=", 0) == 0) {
      const std::string spec = arg.substr(13);
      const std::size_t at = spec.find('@');
      opts.reset_conn = std::strtol(spec.c_str(), nullptr, 10);
      if (at != std::string::npos) {
        opts.reset_bytes = std::strtoul(spec.c_str() + at + 1, nullptr, 10);
      }
    } else {
      std::fprintf(stderr,
                   "usage: wire_proxy --listen=<port> --connect=<port> "
                   "[--stall=p:d] [--partition=s:d] [--reset-conn=n[@bytes]]\n");
      return 2;
    }
  }
  if (opts.listen_port == 0 || opts.connect_port == 0) {
    std::fprintf(stderr, "wire_proxy: --listen and --connect are required\n");
    return 2;
  }
  try {
    Proxy proxy(opts);
    proxy.run();
  } catch (const std::exception& e) {
    std::fprintf(stderr, "wire_proxy: %s\n", e.what());
    return 1;
  }
  return 0;
}
