// Loopback cluster golden check, two modes.
//
// Lockstep (default): run a golden scenario twice — once fully in-process
// (the simulation the goldens pin) and once with every governor in its own
// `node` process speaking the versioned wire protocol over real TCP — and
// byte-compare the two runs' canonical summaries (sim::encode_run_result).
// The lockstep replay (src/cluster/) makes the comparison exact: any
// divergence, down to one ULP of a double, is a bug.
//
// Converge (--mode=converge): fault-tolerance golden. Nodes run with
// persisted state directories; the driver SIGKILLs one mid-round, respawns
// it against its on-disk WAL/snapshot as a higher incarnation, re-admits it
// via the session-resume welcome, and the run passes when every survivor
// plus the restarted node report an identical non-empty chain head
// (serial, hash, committed txs) — convergence instead of byte-identity.
//
//   cluster_driver [--scenario=mixed|gossip] [--artifact-dir=<dir>]
//                  [--mode=lockstep|converge]
//                  [--kill=<victim>@<kill_round>:<restart_round>]
//                  [--state-root=<dir>] [--listen-port=<port>]
//                  [--node-port=<port>] [--grace=<rounds>]
//
// --node-port points the children at a different dial port (a wire_proxy
// interposed between nodes and driver); admission still happens on the
// driver's own listener, which the proxy forwards to.
//
// On a mismatch the hexfloat renderings of both runs are written to
// <artifact-dir>/cluster_diff_<scenario>.txt (CI uploads them) and the exit
// code is the number of failing scenarios.

#include <libgen.h>

#include <cinttypes>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/driver.hpp"
#include "cluster/supervisor.hpp"
#include "cluster/sync_conn.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec_codec.hpp"

namespace {

using namespace repchain;

struct Golden {
  const char* name;
  sim::ScenarioConfig config;
};

sim::ScenarioConfig mixed_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.audit_probability = 0.6;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.9),
                   protocol::CollectorBehavior::misreporting(0.3),
                   protocol::CollectorBehavior::forging(0.2)};
  cfg.seed = 42;
  return cfg;
}

sim::ScenarioConfig gossip_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = true;
  cfg.seed = 2112;
  return cfg;
}

/// Directory holding this binary (so the sibling `node` binary is found
/// regardless of the working directory).
std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) throw NetError("cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return ::dirname(buf);
}

int listen_loopback(std::uint16_t& port_out, std::uint16_t want = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(want);  // 0 = ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    throw NetError(std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw NetError(std::string("getsockname: ") + std::strerror(errno));
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

std::string write_blob(const Bytes& blob, const char* name) {
  std::string path = "/tmp/repchain_" + std::string(name) + "_XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) throw NetError(std::string("mkstemp: ") + std::strerror(errno));
  ::close(fd);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  return path;
}

/// Run one golden over a real loopback cluster and return its RunResult.
sim::RunResult cluster_run(const Golden& golden) {
  sim::ScenarioConfig config = golden.config;
  sim::normalize_config(config);
  const crypto::Hash256 genesis = sim::config_genesis(config);
  const std::size_t governors = config.topology.governors;
  const std::string blob_path = write_blob(sim::encode_config(config), golden.name);
  const std::string node_bin = self_dir() + "/node";

  std::uint16_t port = 0;
  const int listen_fd = listen_loopback(port);

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < governors; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw NetError(std::string("fork: ") + std::strerror(errno));
    if (pid == 0) {
      ::close(listen_fd);
      const std::string cfg_arg = "--config=" + blob_path;
      const std::string idx_arg = "--index=" + std::to_string(i);
      const std::string port_arg = "--connect=" + std::to_string(port);
      ::execl(node_bin.c_str(), node_bin.c_str(), cfg_arg.c_str(),
              idx_arg.c_str(), port_arg.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec %s: %s\n", node_bin.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    children.push_back(pid);
  }

  // Admit each node: welcome exchange, then slot the connection by the
  // announced governor index (connection order is whatever the OS raced).
  std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
  const wire::Welcome local = cluster::driver_welcome(genesis);
  for (std::size_t admitted = 0; admitted < governors; ++admitted) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) throw NetError(std::string("accept: ") + std::strerror(errno));
    auto conn = std::make_unique<cluster::SyncConn>(fd);
    const wire::Welcome remote = cluster::handshake(*conn, local, genesis);
    if (remote.role != wire::Role::kNode) {
      throw wire::WireError(wire::ProtocolError::kBadRole,
                            "peer is not a cluster node");
    }
    if (remote.node_index >= governors || conns[remote.node_index] != nullptr) {
      throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                            "governor index " + std::to_string(remote.node_index));
    }
    conns[remote.node_index] = std::move(conn);
  }
  ::close(listen_fd);

  cluster::ClusterRun run(golden.config, std::move(conns));
  sim::RunResult result = run.run();

  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      throw NetError("node process exited abnormally (status " +
                     std::to_string(status) + ")");
    }
  }
  ::unlink(blob_path.c_str());
  return result;
}

/// Run one golden in convergence mode: supervised nodes with persisted
/// state, a SIGKILL + respawn per the crash plan, head-agreement verdict.
int converge_run(const Golden& golden, const cluster::CrashPlan& plan,
                 const std::string& artifact_dir, std::string state_root,
                 std::uint16_t listen_port, std::uint16_t node_port,
                 Round grace) {
  sim::ScenarioConfig config = golden.config;
  sim::normalize_config(config);
  const crypto::Hash256 genesis = sim::config_genesis(config);
  const std::size_t governors = config.topology.governors;
  const std::string blob_path =
      write_blob(sim::encode_config(config), golden.name);

  std::uint16_t port = 0;
  const int listen_fd = listen_loopback(port, listen_port);

  if (state_root.empty()) {
    state_root = "/tmp/repchain_state_XXXXXX";
    if (::mkdtemp(state_root.data()) == nullptr) {
      throw NetError(std::string("mkdtemp: ") + std::strerror(errno));
    }
  } else {
    // A fixed --state-root (the ctest entry reuses one under the build
    // dir) must start cold: a leftover chain from a previous run would
    // make the respawned node resume ahead of the survivors.
    std::error_code ec;
    std::filesystem::remove_all(state_root, ec);
  }

  cluster::ProcessSupervisor::Options sopts;
  sopts.node_bin = self_dir() + "/node";
  sopts.config_blob = blob_path;
  sopts.port = node_port != 0 ? node_port : port;
  sopts.state_root = state_root;
  sopts.log_dir = artifact_dir;
  cluster::ProcessSupervisor sup(sopts, governors);
  for (std::size_t i = 0; i < governors; ++i) sup.spawn(i);

  constexpr int kAdmitMs = 15'000;
  std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
  const wire::Welcome local = cluster::driver_welcome(genesis);
  for (std::size_t admitted = 0; admitted < governors; ++admitted) {
    wire::Welcome remote;
    auto conn =
        cluster::admit_node(listen_fd, local, genesis, governors, kAdmitMs,
                            &remote);
    if (conns[remote.node_index] != nullptr) {
      throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                            "governor index " +
                                std::to_string(remote.node_index) +
                                " admitted twice");
    }
    conns[remote.node_index] = std::move(conn);
  }
  // Listener stays open: the respawned node re-admits through it.

  cluster::ClusterRun run(golden.config, std::move(conns));
  run.set_supervision(
      plan, [&sup](std::size_t i) { sup.kill(i); },
      [&](std::size_t i, std::uint32_t incarnation) {
        sup.spawn(i, incarnation);
        wire::Welcome remote;
        auto conn = cluster::admit_node(listen_fd, local, genesis, governors,
                                        kAdmitMs, &remote);
        if (remote.node_index != i || !remote.resume ||
            remote.incarnation != incarnation) {
          throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                                "respawn admitted the wrong node or a "
                                "non-resuming welcome");
        }
        std::printf("%-8s respawned node %zu as incarnation %u "
                    "(recovered head serial %" PRIu64 ")\n",
                    golden.name, i, incarnation, remote.head_serial);
        return conn;
      });
  const cluster::ConvergenceReport report = run.run_converge(grace);
  ::close(listen_fd);

  for (std::size_t i = 0; i < governors; ++i) {
    const int status = sup.wait_exit(i);
    if (status != 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      std::fprintf(stderr, "%-8s node %zu exited abnormally (status %d)\n",
                   golden.name, i, status);
    }
  }
  ::unlink(blob_path.c_str());

  if (report.converged) {
    std::printf("%-8s CONVERGED  head serial %" PRIu64 " hash %.16s… "
                "%" PRIu64 " txs, %u rounds (kill@%" PRIu64 "us, "
                "rejoin@%" PRIu64 "us, %u restart attempts)\n",
                golden.name, report.head_serial, report.head_hash_hex.c_str(),
                report.committed_txs,
                static_cast<unsigned>(report.rounds_run), report.killed_at,
                report.rejoined_at, report.restart_attempts);
    return 0;
  }
  const std::string path =
      artifact_dir + "/cluster_diff_" + std::string(golden.name) + ".txt";
  std::ofstream out(path);
  out << "convergence FAILED after " << report.rounds_run << " rounds\n"
      << "victim " << plan.victim << " killed round " << plan.kill_round
      << " (t=" << report.killed_at << "us), restart round "
      << plan.restart_round << " (rejoin t=" << report.rejoined_at
      << "us, attempts " << report.restart_attempts << ")\n"
      << "last agreed head: serial " << report.head_serial << " hash "
      << report.head_hash_hex << "\n";
  std::fprintf(stderr, "%-8s DID NOT CONVERGE — report written to %s\n",
               golden.name, path.c_str());
  return 1;
}

/// Parse --kill=<victim>@<kill_round>:<restart_round>.
bool parse_kill(const std::string& spec, cluster::CrashPlan& plan) {
  const std::size_t at = spec.find('@');
  const std::size_t colon = spec.find(':', at == std::string::npos ? 0 : at);
  if (at == std::string::npos || colon == std::string::npos) return false;
  plan.victim = static_cast<std::size_t>(
      std::strtoul(spec.substr(0, at).c_str(), nullptr, 10));
  plan.kill_round = static_cast<Round>(
      std::strtoul(spec.substr(at + 1, colon - at - 1).c_str(), nullptr, 10));
  plan.restart_round = static_cast<Round>(
      std::strtoul(spec.substr(colon + 1).c_str(), nullptr, 10));
  return plan.kill_round > 0 && plan.restart_round > plan.kill_round;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  std::string artifact_dir = ".";
  std::string mode = "lockstep";
  std::string state_root;
  cluster::CrashPlan plan{1, 2, 4};  // default: kill node 1 in r2, back in r4
  long listen_port = 0;
  long node_port = 0;
  long grace = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scenario=", 0) == 0) {
      only = arg.substr(11);
    } else if (arg.rfind("--artifact-dir=", 0) == 0) {
      artifact_dir = arg.substr(15);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--kill=", 0) == 0) {
      if (!parse_kill(arg.substr(7), plan)) {
        std::fprintf(stderr, "bad --kill spec (want v@kill:restart, "
                             "restart > kill > 0)\n");
        return 2;
      }
    } else if (arg.rfind("--state-root=", 0) == 0) {
      state_root = arg.substr(13);
    } else if (arg.rfind("--listen-port=", 0) == 0) {
      listen_port = std::strtol(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--node-port=", 0) == 0) {
      node_port = std::strtol(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--grace=", 0) == 0) {
      grace = std::strtol(arg.c_str() + 8, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: cluster_driver [--scenario=mixed|gossip] "
                   "[--artifact-dir=<dir>] [--mode=lockstep|converge] "
                   "[--kill=v@k:r] [--state-root=<dir>] [--listen-port=<p>] "
                   "[--node-port=<p>] [--grace=<rounds>]\n");
      return 2;
    }
  }
  ::alarm(600);  // hard stop: a wedged cluster must not hang CI forever

  std::vector<Golden> goldens;
  if (only.empty() || only == "mixed") goldens.push_back({"mixed", mixed_config()});
  if (only.empty() || only == "gossip")
    goldens.push_back({"gossip", gossip_config()});
  if (goldens.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'\n", only.c_str());
    return 2;
  }

  if (mode == "converge") {
    int failures = 0;
    for (const Golden& golden : goldens) {
      try {
        if (plan.victim >= golden.config.topology.governors ||
            plan.kill_round > golden.config.rounds) {
          throw ConfigError("crash plan out of range for scenario " +
                            std::string(golden.name));
        }
        failures += converge_run(golden, plan, artifact_dir, state_root,
                                 static_cast<std::uint16_t>(listen_port),
                                 static_cast<std::uint16_t>(node_port),
                                 static_cast<Round>(grace));
      } catch (const std::exception& e) {
        ++failures;
        std::fprintf(stderr, "%-8s FAILED: %s\n", golden.name, e.what());
      }
    }
    return failures;
  }
  if (mode != "lockstep") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  int failures = 0;
  for (const Golden& golden : goldens) {
    try {
      const sim::RunResult simulated = sim::simulate_run(golden.config);
      const sim::RunResult socketed = cluster_run(golden);
      const Bytes a = sim::encode_run_result(simulated);
      const Bytes b = sim::encode_run_result(socketed);
      if (a == b) {
        std::printf("%-8s OK  (%zu bytes, %zu rounds, %" PRIu64 " messages)\n",
                    golden.name, a.size(), simulated.history.size(),
                    simulated.summary.network.messages_sent);
        continue;
      }
      ++failures;
      const std::string path =
          artifact_dir + "/cluster_diff_" + golden.name + ".txt";
      std::ofstream out(path);
      out << "=== simulated ===\n"
          << sim::render_run_result(simulated) << "\n=== socket replay ===\n"
          << sim::render_run_result(socketed);
      std::fprintf(stderr, "%-8s MISMATCH — diff written to %s\n", golden.name,
                   path.c_str());
    } catch (const std::exception& e) {
      ++failures;
      std::fprintf(stderr, "%-8s FAILED: %s\n", golden.name, e.what());
    }
  }
  return failures;
}
