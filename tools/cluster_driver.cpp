// Loopback cluster golden check, three modes.
//
// Lockstep (default): run a golden scenario twice — once fully in-process
// (the simulation the goldens pin) and once with every governor in its own
// `node` process speaking the versioned wire protocol over real TCP — and
// byte-compare the two runs' canonical summaries (sim::encode_run_result).
// The lockstep replay (src/cluster/) makes the comparison exact: any
// divergence, down to one ULP of a double, is a bug.
//
// Converge (--mode=converge): fault-tolerance golden. Nodes run with
// persisted state directories; the driver SIGKILLs victims mid-round per
// the crash schedule, respawns each against its on-disk WAL/snapshot as a
// higher incarnation, re-admits it via the session-resume welcome, and the
// run passes when every survivor plus the restarted nodes report an
// identical non-empty chain head (serial, hash, committed txs) —
// convergence instead of byte-identity.
//
// Free (--mode=free): free-running golden. Every node self-drives its
// rounds on a real monotonic clock and exchanges protocol traffic
// peer-to-peer (see src/cluster/free_run.hpp); the driver becomes an
// observer enforcing the statistical convergence contract. The same
// multi-victim crash schedule applies — including overlapping kills that
// transiently drop the committee below election quorum, which must stall
// safely (watchdog trips, no fork) and recover after the respawns.
//
//   cluster_driver [--scenario=mixed|gossip] [--artifact-dir=<dir>]
//                  [--mode=lockstep|converge|free]
//                  [--kill=<victim>@<kill_round>:<restart_round>]...
//                  [--state-root=<dir>] [--listen-port=<port>]
//                  [--node-port=<port>] [--peer-base=<port>]
//                  [--grace=<rounds>]
//
// --kill may repeat (one victim each; windows may overlap). --node-port
// points the children at a different dial port (a wire_proxy interposed
// between nodes and driver); admission still happens on the driver's own
// listener, which the proxy forwards to. --peer-base (free mode) sets the
// first port of the node-to-node mesh: node i listens on peer_base + i.
//
// On a mismatch the hexfloat renderings of both runs are written to
// <artifact-dir>/cluster_diff_<scenario>.txt (CI uploads them) and the exit
// code is the number of failing scenarios.

#include <libgen.h>

#include <cinttypes>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <filesystem>
#include <string>
#include <vector>

#include "cluster/driver.hpp"
#include "cluster/free_run.hpp"
#include "cluster/supervisor.hpp"
#include "cluster/sync_conn.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec_codec.hpp"

namespace {

using namespace repchain;

struct Golden {
  const char* name;
  sim::ScenarioConfig config;
};

sim::ScenarioConfig mixed_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.audit_probability = 0.6;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.9),
                   protocol::CollectorBehavior::misreporting(0.3),
                   protocol::CollectorBehavior::forging(0.2)};
  cfg.seed = 42;
  return cfg;
}

sim::ScenarioConfig gossip_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = true;
  cfg.seed = 2112;
  return cfg;
}

/// Directory holding this binary (so the sibling `node` binary is found
/// regardless of the working directory).
std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) throw NetError("cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return ::dirname(buf);
}

int listen_loopback(std::uint16_t& port_out, std::uint16_t want = 0) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(want);  // 0 = ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    throw NetError(std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw NetError(std::string("getsockname: ") + std::strerror(errno));
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

std::string write_blob(const Bytes& blob, const char* name) {
  std::string path = "/tmp/repchain_" + std::string(name) + "_XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) throw NetError(std::string("mkstemp: ") + std::strerror(errno));
  ::close(fd);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  return path;
}

/// Run one golden over a real loopback cluster and return its RunResult.
sim::RunResult cluster_run(const Golden& golden) {
  sim::ScenarioConfig config = golden.config;
  sim::normalize_config(config);
  const crypto::Hash256 genesis = sim::config_genesis(config);
  const std::size_t governors = config.topology.governors;
  const std::string blob_path = write_blob(sim::encode_config(config), golden.name);
  const std::string node_bin = self_dir() + "/node";

  std::uint16_t port = 0;
  const int listen_fd = listen_loopback(port);

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < governors; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw NetError(std::string("fork: ") + std::strerror(errno));
    if (pid == 0) {
      ::close(listen_fd);
      const std::string cfg_arg = "--config=" + blob_path;
      const std::string idx_arg = "--index=" + std::to_string(i);
      const std::string port_arg = "--connect=" + std::to_string(port);
      ::execl(node_bin.c_str(), node_bin.c_str(), cfg_arg.c_str(),
              idx_arg.c_str(), port_arg.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec %s: %s\n", node_bin.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    children.push_back(pid);
  }

  // Admit each node: welcome exchange, then slot the connection by the
  // announced governor index (connection order is whatever the OS raced).
  std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
  const wire::Welcome local = cluster::driver_welcome(genesis);
  for (std::size_t admitted = 0; admitted < governors; ++admitted) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) throw NetError(std::string("accept: ") + std::strerror(errno));
    auto conn = std::make_unique<cluster::SyncConn>(fd);
    const wire::Welcome remote = cluster::handshake(*conn, local, genesis);
    if (remote.role != wire::Role::kNode) {
      throw wire::WireError(wire::ProtocolError::kBadRole,
                            "peer is not a cluster node");
    }
    if (remote.node_index >= governors || conns[remote.node_index] != nullptr) {
      throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                            "governor index " + std::to_string(remote.node_index));
    }
    conns[remote.node_index] = std::move(conn);
  }
  ::close(listen_fd);

  cluster::ClusterRun run(golden.config, std::move(conns));
  sim::RunResult result = run.run();

  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      throw NetError("node process exited abnormally (status " +
                     std::to_string(status) + ")");
    }
  }
  ::unlink(blob_path.c_str());
  return result;
}

/// Render a crash schedule for log lines and failure artifacts.
std::string render_plans(const std::vector<cluster::CrashPlan>& plans) {
  std::string out;
  for (const cluster::CrashPlan& p : plans) {
    if (!out.empty()) out += ' ';
    out += std::to_string(p.victim) + '@' + std::to_string(p.kill_round) +
           ':' + std::to_string(p.restart_round);
  }
  return out.empty() ? "none" : out;
}

void print_degradation(const char* name, const cluster::DegradationReport& d,
                       std::size_t governors, std::uint32_t restart_attempts) {
  std::printf("%-8s degradation: min live %zu/%zu%s, %" PRIu64
              " stalls (span %" PRIu64 "us), %u restart attempts, "
              "recovered in %u rounds, %u spontaneous exits\n",
              name, d.min_live, governors,
              d.quorum_lost ? " (quorum lost)" : "", d.stalled_events,
              d.stall_last - d.stall_first, restart_attempts,
              static_cast<unsigned>(d.rounds_to_recover), d.spontaneous_exits);
}

/// Run one golden in convergence mode: supervised nodes with persisted
/// state, a SIGKILL + respawn per the crash schedule, head-agreement verdict.
int converge_run(const Golden& golden,
                 const std::vector<cluster::CrashPlan>& plans,
                 const std::string& artifact_dir, std::string state_root,
                 std::uint16_t listen_port, std::uint16_t node_port,
                 Round grace) {
  sim::ScenarioConfig config = golden.config;
  sim::normalize_config(config);
  const crypto::Hash256 genesis = sim::config_genesis(config);
  const std::size_t governors = config.topology.governors;
  const std::string blob_path =
      write_blob(sim::encode_config(config), golden.name);

  std::uint16_t port = 0;
  const int listen_fd = listen_loopback(port, listen_port);

  if (state_root.empty()) {
    state_root = "/tmp/repchain_state_XXXXXX";
    if (::mkdtemp(state_root.data()) == nullptr) {
      throw NetError(std::string("mkdtemp: ") + std::strerror(errno));
    }
  } else {
    // A fixed --state-root (the ctest entry reuses one under the build
    // dir) must start cold: a leftover chain from a previous run would
    // make the respawned node resume ahead of the survivors.
    std::error_code ec;
    std::filesystem::remove_all(state_root, ec);
  }

  cluster::ProcessSupervisor::Options sopts;
  sopts.node_bin = self_dir() + "/node";
  sopts.config_blob = blob_path;
  sopts.port = node_port != 0 ? node_port : port;
  sopts.state_root = state_root;
  sopts.log_dir = artifact_dir;
  cluster::ProcessSupervisor sup(sopts, governors);
  for (std::size_t i = 0; i < governors; ++i) sup.spawn(i);

  constexpr int kAdmitMs = 15'000;
  std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
  const wire::Welcome local = cluster::driver_welcome(genesis);
  for (std::size_t admitted = 0; admitted < governors; ++admitted) {
    wire::Welcome remote;
    auto conn =
        cluster::admit_node(listen_fd, local, genesis, governors, kAdmitMs,
                            &remote);
    if (conns[remote.node_index] != nullptr) {
      throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                            "governor index " +
                                std::to_string(remote.node_index) +
                                " admitted twice");
    }
    conns[remote.node_index] = std::move(conn);
  }
  // Listener stays open: the respawned node re-admits through it.

  cluster::ClusterRun run(golden.config, std::move(conns));
  run.set_supervision(
      plans, [&sup](std::size_t i) { sup.kill(i); },
      [&](std::size_t i, std::uint32_t incarnation) {
        sup.spawn(i, incarnation);
        wire::Welcome remote;
        auto conn = cluster::admit_node(listen_fd, local, genesis, governors,
                                        kAdmitMs, &remote);
        if (remote.node_index != i || !remote.resume ||
            remote.incarnation != incarnation) {
          throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                                "respawn admitted the wrong node or a "
                                "non-resuming welcome");
        }
        std::printf("%-8s respawned node %zu as incarnation %u "
                    "(recovered head serial %" PRIu64 ")\n",
                    golden.name, i, incarnation, remote.head_serial);
        return conn;
      });
  cluster::ConvergenceReport report = run.run_converge(grace);
  report.degradation.spontaneous_exits = sup.report().spontaneous_exits;
  ::close(listen_fd);

  for (std::size_t i = 0; i < governors; ++i) {
    const int status = sup.wait_exit(i);
    if (status != 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      std::fprintf(stderr, "%-8s node %zu exited abnormally (status %d)\n",
                   golden.name, i, status);
    }
  }
  ::unlink(blob_path.c_str());

  if (report.converged) {
    std::printf("%-8s CONVERGED  head serial %" PRIu64 " hash %.16s… "
                "%" PRIu64 " txs, %u rounds (kill@%" PRIu64 "us, "
                "rejoin@%" PRIu64 "us, %u restart attempts)\n",
                golden.name, report.head_serial, report.head_hash_hex.c_str(),
                report.committed_txs,
                static_cast<unsigned>(report.rounds_run), report.killed_at,
                report.rejoined_at, report.restart_attempts);
    print_degradation(golden.name, report.degradation, governors,
                      report.restart_attempts);
    return 0;
  }
  const std::string path =
      artifact_dir + "/cluster_diff_" + std::string(golden.name) + ".txt";
  std::ofstream out(path);
  out << "convergence FAILED after " << report.rounds_run << " rounds\n"
      << "crash schedule: " << render_plans(plans) << " (first kill t="
      << report.killed_at << "us, last rejoin t=" << report.rejoined_at
      << "us, attempts " << report.restart_attempts << ")\n"
      << "quorum_lost " << report.degradation.quorum_lost << " min_live "
      << report.degradation.min_live << " stalls "
      << report.degradation.stalled_events << "\n"
      << "last agreed head: serial " << report.head_serial << " hash "
      << report.head_hash_hex << "\n";
  std::fprintf(stderr, "%-8s DID NOT CONVERGE — report written to %s\n",
               golden.name, path.c_str());
  return 1;
}

/// Run one golden in free-running mode: every node self-drives rounds on a
/// real monotonic clock over a peer mesh while the observer injects the
/// workload, executes the crash schedule and enforces the statistical
/// convergence contract (see src/cluster/free_run.hpp).
int free_run(const Golden& golden,
             const std::vector<cluster::CrashPlan>& plans,
             const std::string& artifact_dir, std::string state_root,
             std::uint16_t listen_port, std::uint16_t node_port,
             std::uint16_t peer_base, Round grace) {
  sim::ScenarioConfig config = cluster::free_run_config(golden.config);
  sim::normalize_config(config);
  const crypto::Hash256 genesis = sim::config_genesis(config);
  const std::size_t governors = config.topology.governors;
  cluster::validate_crash_plans(plans, governors, config.rounds);
  if (peer_base == 0 || peer_base + governors > 65535) {
    throw ConfigError("--peer-base leaves no room for the node mesh");
  }
  const std::size_t quorum = cluster::election_quorum(governors);
  const std::size_t min_live =
      cluster::min_live_governors(plans, governors, config.rounds);
  if (min_live < quorum) {
    std::printf("%-8s schedule %s breaks quorum (min live %zu < %zu) — "
                "expecting a stall window\n",
                golden.name, render_plans(plans).c_str(), min_live, quorum);
  }
  const std::string blob_path =
      write_blob(sim::encode_config(config), golden.name);

  std::uint16_t port = 0;
  const int listen_fd = listen_loopback(port, listen_port);

  if (state_root.empty()) {
    state_root = "/tmp/repchain_state_XXXXXX";
    if (::mkdtemp(state_root.data()) == nullptr) {
      throw NetError(std::string("mkdtemp: ") + std::strerror(errno));
    }
  } else {
    std::error_code ec;
    std::filesystem::remove_all(state_root, ec);
  }

  cluster::ProcessSupervisor::Options sopts;
  sopts.node_bin = self_dir() + "/node";
  sopts.config_blob = blob_path;
  sopts.port = node_port != 0 ? node_port : port;
  sopts.state_root = state_root;
  sopts.log_dir = artifact_dir;
  sopts.extra_args = {"--free-run",
                      "--peer-base=" + std::to_string(peer_base)};
  cluster::ProcessSupervisor sup(sopts, governors);
  for (std::size_t i = 0; i < governors; ++i) sup.spawn(i);

  constexpr int kAdmitMs = 15'000;
  std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
  const wire::Welcome local = cluster::driver_welcome(genesis);
  for (std::size_t admitted = 0; admitted < governors; ++admitted) {
    wire::Welcome remote;
    auto conn = cluster::admit_node(listen_fd, local, genesis, governors,
                                    kAdmitMs, &remote);
    if (conns[remote.node_index] != nullptr) {
      throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                            "governor index " +
                                std::to_string(remote.node_index) +
                                " admitted twice");
    }
    conns[remote.node_index] = std::move(conn);
  }
  // Listener stays open: respawned victims re-admit through it.

  cluster::FreeRunDriver::Options fopts;
  fopts.peer_base = peer_base;
  fopts.grace_rounds = grace;
  cluster::FreeRunDriver driver(config, std::move(conns), fopts);
  if (!plans.empty()) {
    driver.set_supervision(
        plans, [&sup](std::size_t i) { sup.kill(i); },
        [&](std::size_t i, std::uint32_t incarnation) {
          sup.spawn(i, incarnation);
          wire::Welcome remote;
          auto conn = cluster::admit_node(listen_fd, local, genesis,
                                          governors, kAdmitMs, &remote);
          if (remote.node_index != i || !remote.resume ||
              remote.incarnation != incarnation) {
            throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                                  "respawn admitted the wrong node or a "
                                  "non-resuming welcome");
          }
          std::printf("%-8s respawned node %zu as incarnation %u "
                      "(recovered head serial %" PRIu64 ")\n",
                      golden.name, i, incarnation, remote.head_serial);
          return conn;
        });
  }
  cluster::FreeRunReport report = driver.run();
  report.degradation.spontaneous_exits = sup.report().spontaneous_exits;
  ::close(listen_fd);

  for (std::size_t i = 0; i < governors; ++i) {
    const int status = sup.wait_exit(i);
    if (status != 0 && (!WIFEXITED(status) || WEXITSTATUS(status) != 0)) {
      std::fprintf(stderr, "%-8s node %zu exited abnormally (status %d)\n",
                   golden.name, i, status);
    }
  }
  ::unlink(blob_path.c_str());

  if (report.ok()) {
    std::printf("%-8s FREE-RUN CONVERGED  head serial %" PRIu64
                " hash %.16s… %" PRIu64 " txs in [%" PRIu64 ", %" PRIu64
                "] (ref %" PRIu64 "), %u rounds (converged r%u)\n",
                golden.name, report.head_serial, report.head_hash_hex.c_str(),
                report.committed_txs, report.tolerance_lo,
                report.tolerance_hi, report.reference_txs,
                static_cast<unsigned>(report.rounds_run),
                static_cast<unsigned>(report.converged_round));
    if (!plans.empty()) {
      print_degradation(golden.name, report.degradation, governors,
                        report.restart_attempts);
    }
    return 0;
  }
  const std::string path =
      artifact_dir + "/free_run_" + std::string(golden.name) + ".txt";
  std::ofstream out(path);
  out << "free-run contract FAILED after " << report.rounds_run
      << " rounds (converged " << report.converged << " monotone "
      << report.monotone_ok << " prefix " << report.prefix_ok
      << " txs_in_tolerance " << report.txs_in_tolerance << ")\n"
      << "crash schedule: " << render_plans(plans) << " (first kill t="
      << report.killed_at << "us, last rejoin t=" << report.rejoined_at
      << "us, attempts " << report.restart_attempts << ")\n"
      << "quorum_lost " << report.degradation.quorum_lost << " min_live "
      << report.degradation.min_live << " stalls "
      << report.degradation.stalled_events << " stall_span "
      << (report.degradation.stall_last - report.degradation.stall_first)
      << "us rounds_to_recover " << report.degradation.rounds_to_recover
      << " spontaneous_exits " << report.degradation.spontaneous_exits
      << "\n"
      << "head: serial " << report.head_serial << " hash "
      << report.head_hash_hex << " committed " << report.committed_txs
      << " reference " << report.reference_txs << " band ["
      << report.tolerance_lo << ", " << report.tolerance_hi << "]\n";
  for (std::size_t i = 0; i < report.node_stats.size(); ++i) {
    const cluster::FreeRunStats& s = report.node_stats[i];
    out << "node " << i << ": head serial " << s.head.serial << " txs "
        << s.head.committed_txs << " incarnation " << s.head.incarnation
        << " round " << s.current_round << " started " << s.rounds_started
        << " stalls " << s.stalled_events << " watchdog " << s.watchdog_trips
        << " delivery_failures " << s.delivery_failures << " reconnects "
        << s.reconnects << " accepted " << s.blocks_accepted << " synced "
        << s.blocks_synced << "\n";
  }
  std::fprintf(stderr, "%-8s FREE-RUN FAILED — report written to %s\n",
               golden.name, path.c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  std::string artifact_dir = ".";
  std::string mode = "lockstep";
  std::string state_root;
  std::vector<cluster::CrashPlan> kills;  // one --kill each; may overlap
  long listen_port = 0;
  long node_port = 0;
  // Mesh base port: PID-derived default keeps concurrent local runs apart;
  // ctest entries pin it explicitly (with a port resource lock).
  long peer_base = 20000 + (static_cast<long>(::getpid()) * 131) % 20000;
  long grace = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scenario=", 0) == 0) {
      only = arg.substr(11);
    } else if (arg.rfind("--artifact-dir=", 0) == 0) {
      artifact_dir = arg.substr(15);
    } else if (arg.rfind("--mode=", 0) == 0) {
      mode = arg.substr(7);
    } else if (arg.rfind("--kill=", 0) == 0) {
      cluster::CrashPlan plan;
      if (!cluster::parse_crash_plan(arg.substr(7), plan)) {
        std::fprintf(stderr, "bad --kill spec (want v@kill:restart, "
                             "restart > kill > 0)\n");
        return 2;
      }
      kills.push_back(plan);
    } else if (arg.rfind("--state-root=", 0) == 0) {
      state_root = arg.substr(13);
    } else if (arg.rfind("--listen-port=", 0) == 0) {
      listen_port = std::strtol(arg.c_str() + 14, nullptr, 10);
    } else if (arg.rfind("--node-port=", 0) == 0) {
      node_port = std::strtol(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--peer-base=", 0) == 0) {
      peer_base = std::strtol(arg.c_str() + 12, nullptr, 10);
    } else if (arg.rfind("--grace=", 0) == 0) {
      grace = std::strtol(arg.c_str() + 8, nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: cluster_driver [--scenario=mixed|gossip] "
                   "[--artifact-dir=<dir>] [--mode=lockstep|converge|free] "
                   "[--kill=v@k:r]... [--state-root=<dir>] "
                   "[--listen-port=<p>] [--node-port=<p>] "
                   "[--peer-base=<p>] [--grace=<rounds>]\n");
      return 2;
    }
  }
  if (peer_base <= 0 || peer_base > 65535 - 64) {
    std::fprintf(stderr, "--peer-base out of range\n");
    return 2;
  }
  ::alarm(600);  // hard stop: a wedged cluster must not hang CI forever

  std::vector<Golden> goldens;
  if (only.empty() || only == "mixed") goldens.push_back({"mixed", mixed_config()});
  if (only.empty() || only == "gossip")
    goldens.push_back({"gossip", gossip_config()});
  if (goldens.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'\n", only.c_str());
    return 2;
  }

  if (mode == "converge" || mode == "free") {
    // Converge keeps its historical default schedule; free mode with no
    // --kill is the zero-fault contract check.
    if (mode == "converge" && kills.empty()) kills.push_back({1, 2, 4});
    int failures = 0;
    for (const Golden& golden : goldens) {
      try {
        cluster::validate_crash_plans(kills, golden.config.topology.governors,
                                      golden.config.rounds);
        failures +=
            mode == "free"
                ? free_run(golden, kills, artifact_dir, state_root,
                           static_cast<std::uint16_t>(listen_port),
                           static_cast<std::uint16_t>(node_port),
                           static_cast<std::uint16_t>(peer_base),
                           static_cast<Round>(grace))
                : converge_run(golden, kills, artifact_dir, state_root,
                               static_cast<std::uint16_t>(listen_port),
                               static_cast<std::uint16_t>(node_port),
                               static_cast<Round>(grace));
      } catch (const std::exception& e) {
        ++failures;
        std::fprintf(stderr, "%-8s FAILED: %s\n", golden.name, e.what());
      }
    }
    return failures;
  }
  if (mode != "lockstep") {
    std::fprintf(stderr, "unknown mode '%s'\n", mode.c_str());
    return 2;
  }

  int failures = 0;
  for (const Golden& golden : goldens) {
    try {
      const sim::RunResult simulated = sim::simulate_run(golden.config);
      const sim::RunResult socketed = cluster_run(golden);
      const Bytes a = sim::encode_run_result(simulated);
      const Bytes b = sim::encode_run_result(socketed);
      if (a == b) {
        std::printf("%-8s OK  (%zu bytes, %zu rounds, %" PRIu64 " messages)\n",
                    golden.name, a.size(), simulated.history.size(),
                    simulated.summary.network.messages_sent);
        continue;
      }
      ++failures;
      const std::string path =
          artifact_dir + "/cluster_diff_" + golden.name + ".txt";
      std::ofstream out(path);
      out << "=== simulated ===\n"
          << sim::render_run_result(simulated) << "\n=== socket replay ===\n"
          << sim::render_run_result(socketed);
      std::fprintf(stderr, "%-8s MISMATCH — diff written to %s\n", golden.name,
                   path.c_str());
    } catch (const std::exception& e) {
      ++failures;
      std::fprintf(stderr, "%-8s FAILED: %s\n", golden.name, e.what());
    }
  }
  return failures;
}
