// Loopback cluster golden check: run a golden scenario twice — once fully
// in-process (the simulation the goldens pin) and once with every governor
// in its own `node` process speaking the versioned wire protocol over real
// TCP — and byte-compare the two runs' canonical summaries
// (sim::encode_run_result). The lockstep replay (src/cluster/) makes the
// comparison exact: any divergence, down to one ULP of a double, is a bug.
//
//   cluster_driver [--scenario=mixed|gossip] [--artifact-dir=<dir>]
//
// On a mismatch the hexfloat renderings of both runs are written to
// <artifact-dir>/cluster_diff_<scenario>.txt (CI uploads them) and the exit
// code is the number of failing scenarios.

#include <libgen.h>

#include <cinttypes>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "cluster/driver.hpp"
#include "cluster/sync_conn.hpp"
#include "sim/harness/run_codec.hpp"
#include "sim/harness/spec_codec.hpp"

namespace {

using namespace repchain;

struct Golden {
  const char* name;
  sim::ScenarioConfig config;
};

sim::ScenarioConfig mixed_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 8;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 3;
  cfg.topology.r = 2;
  cfg.rounds = 5;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.audit_probability = 0.6;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.9),
                   protocol::CollectorBehavior::misreporting(0.3),
                   protocol::CollectorBehavior::forging(0.2)};
  cfg.seed = 42;
  return cfg;
}

sim::ScenarioConfig gossip_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 3;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = 4;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.8;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::equivocating()};
  cfg.enable_label_gossip = true;
  cfg.seed = 2112;
  return cfg;
}

/// Directory holding this binary (so the sibling `node` binary is found
/// regardless of the working directory).
std::string self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) throw NetError("cannot resolve /proc/self/exe");
  buf[n] = '\0';
  return ::dirname(buf);
}

int listen_loopback(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // ephemeral
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    throw NetError(std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw NetError(std::string("getsockname: ") + std::strerror(errno));
  }
  port_out = ntohs(addr.sin_port);
  return fd;
}

std::string write_blob(const Bytes& blob, const char* name) {
  std::string path = "/tmp/repchain_" + std::string(name) + "_XXXXXX";
  const int fd = ::mkstemp(path.data());
  if (fd < 0) throw NetError(std::string("mkstemp: ") + std::strerror(errno));
  ::close(fd);
  std::ofstream out(path, std::ios::binary);
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
  return path;
}

/// Run one golden over a real loopback cluster and return its RunResult.
sim::RunResult cluster_run(const Golden& golden) {
  sim::ScenarioConfig config = golden.config;
  sim::normalize_config(config);
  const crypto::Hash256 genesis = sim::config_genesis(config);
  const std::size_t governors = config.topology.governors;
  const std::string blob_path = write_blob(sim::encode_config(config), golden.name);
  const std::string node_bin = self_dir() + "/node";

  std::uint16_t port = 0;
  const int listen_fd = listen_loopback(port);

  std::vector<pid_t> children;
  for (std::size_t i = 0; i < governors; ++i) {
    const pid_t pid = ::fork();
    if (pid < 0) throw NetError(std::string("fork: ") + std::strerror(errno));
    if (pid == 0) {
      ::close(listen_fd);
      const std::string cfg_arg = "--config=" + blob_path;
      const std::string idx_arg = "--index=" + std::to_string(i);
      const std::string port_arg = "--connect=" + std::to_string(port);
      ::execl(node_bin.c_str(), node_bin.c_str(), cfg_arg.c_str(),
              idx_arg.c_str(), port_arg.c_str(), static_cast<char*>(nullptr));
      std::fprintf(stderr, "exec %s: %s\n", node_bin.c_str(), std::strerror(errno));
      ::_exit(127);
    }
    children.push_back(pid);
  }

  // Admit each node: welcome exchange, then slot the connection by the
  // announced governor index (connection order is whatever the OS raced).
  std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
  const wire::Welcome local = cluster::driver_welcome(genesis);
  for (std::size_t admitted = 0; admitted < governors; ++admitted) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) throw NetError(std::string("accept: ") + std::strerror(errno));
    auto conn = std::make_unique<cluster::SyncConn>(fd);
    const wire::Welcome remote = cluster::handshake(*conn, local, genesis);
    if (remote.role != wire::Role::kNode) {
      throw wire::WireError(wire::ProtocolError::kBadRole,
                            "peer is not a cluster node");
    }
    if (remote.node_index >= governors || conns[remote.node_index] != nullptr) {
      throw wire::WireError(wire::ProtocolError::kBadNodeIndex,
                            "governor index " + std::to_string(remote.node_index));
    }
    conns[remote.node_index] = std::move(conn);
  }
  ::close(listen_fd);

  cluster::ClusterRun run(golden.config, std::move(conns));
  sim::RunResult result = run.run();

  for (const pid_t pid : children) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      throw NetError("node process exited abnormally (status " +
                     std::to_string(status) + ")");
    }
  }
  ::unlink(blob_path.c_str());
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string only;
  std::string artifact_dir = ".";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--scenario=", 0) == 0) {
      only = arg.substr(11);
    } else if (arg.rfind("--artifact-dir=", 0) == 0) {
      artifact_dir = arg.substr(15);
    } else {
      std::fprintf(stderr,
                   "usage: cluster_driver [--scenario=mixed|gossip] "
                   "[--artifact-dir=<dir>]\n");
      return 2;
    }
  }
  ::alarm(600);  // hard stop: a wedged cluster must not hang CI forever

  std::vector<Golden> goldens;
  if (only.empty() || only == "mixed") goldens.push_back({"mixed", mixed_config()});
  if (only.empty() || only == "gossip")
    goldens.push_back({"gossip", gossip_config()});
  if (goldens.empty()) {
    std::fprintf(stderr, "unknown scenario '%s'\n", only.c_str());
    return 2;
  }

  int failures = 0;
  for (const Golden& golden : goldens) {
    try {
      const sim::RunResult simulated = sim::simulate_run(golden.config);
      const sim::RunResult socketed = cluster_run(golden);
      const Bytes a = sim::encode_run_result(simulated);
      const Bytes b = sim::encode_run_result(socketed);
      if (a == b) {
        std::printf("%-8s OK  (%zu bytes, %zu rounds, %" PRIu64 " messages)\n",
                    golden.name, a.size(), simulated.history.size(),
                    simulated.summary.network.messages_sent);
        continue;
      }
      ++failures;
      const std::string path =
          artifact_dir + "/cluster_diff_" + golden.name + ".txt";
      std::ofstream out(path);
      out << "=== simulated ===\n"
          << sim::render_run_result(simulated) << "\n=== socket replay ===\n"
          << sim::render_run_result(socketed);
      std::fprintf(stderr, "%-8s MISMATCH — diff written to %s\n", golden.name,
                   path.c_str());
    } catch (const std::exception& e) {
      ++failures;
      std::fprintf(stderr, "%-8s FAILED: %s\n", golden.name, e.what());
    }
  }
  return failures;
}
