// Experiments E2 (Lemma 2) and E3 (Theorem 3).
//
// E2: for every transaction, P[unchecked] <= f. We sweep f through the full
// protocol (Scenario) and through the policy simulator, printing the
// measured unchecked fraction next to the bound f.
//
// E3: P[more than (f+delta)N transactions unchecked] <= exp(-2 delta^2 N).
// We estimate the left side over many seeded runs and print it against the
// Hoeffding bound.
//
// Expected shape: measured fraction always <= f (strictly below it when
// multiple collectors report, because P_checked = 1 - f*sum Pr_i^2); the
// empirical tail never exceeds the Hoeffding bound.

#include <cmath>
#include <cstdio>

#include "baselines/policies.hpp"
#include "baselines/policy_simulator.hpp"
#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

void full_protocol_sweep(bench::JsonReport& json) {
  bench::section("E2a: unchecked fraction vs f — full protocol");
  bench::note("8 providers x 4 collectors x 3 governors, honest collectors,\n"
              "all-invalid workload (every report is -1, the worst case for\n"
              "Lemma 2). Fraction measured over governor 0's screening.");
  Table table({"f", "screened", "unchecked", "fraction", "bound f"});
  table.print_header();
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {8, 4, 3, 2};
    cfg.rounds = 8;
    cfg.txs_per_provider_per_round = 4;
    cfg.p_valid = 0.0;  // every label is -1
    cfg.governor.rep.f = f;
    cfg.seed = 77;
    sim::Scenario s(cfg);
    s.run();
    const auto& st = s.governor(0).screening_stats();
    const double frac = static_cast<double>(st.unchecked) /
                        static_cast<double>(st.screened);
    table.row({fmt(f, 1), std::to_string(st.screened), std::to_string(st.unchecked),
               fmt(frac, 3), fmt(f, 1)});
    json.row("protocol_sweep", {{"f", bench::jf(f, 1)},
                                {"screened", bench::ju(st.screened)},
                                {"unchecked", bench::ju(st.unchecked)},
                                {"fraction", bench::jf(frac, 3)}});
  }
}

void simulator_sweep(bench::JsonReport& json) {
  bench::section("E2b: unchecked fraction vs f — policy simulator, mixed workload");
  bench::note("3 collectors (perfect/noisy-0.7/adversarial), p_valid = 0.5,\n"
              "N = 20000 transactions per point.");
  Table table({"f", "unchecked frac", "bound f"});
  table.print_header();
  for (double f : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    reputation::ReputationParams params;
    params.f = f;
    baselines::ReputationPolicy policy(params, 3, 1);
    baselines::PolicyWorkloadConfig w;
    w.transactions = 20000;
    w.p_valid = 0.5;
    w.collectors = {{1.0, 0.0, 0.0}, {0.7, 0.0, 0.0}, {1.0, 1.0, 0.0}};
    w.seed = 99;
    const auto r = run_policy(policy, w);
    const double frac = static_cast<double>(r.unchecked) / r.transactions;
    table.row({fmt(f, 1), fmt(frac, 3), fmt(f, 1)});
    json.row("simulator_sweep", {{"f", bench::jf(f, 1)},
                                 {"fraction", bench::jf(frac, 3)}});
  }
}

void hoeffding_tail(bench::JsonReport& json) {
  bench::section("E3: Hoeffding tail — P[unchecked > (f+delta)N] vs exp(-2 delta^2 N)");
  bench::note("f = 0.5, single always-invalid reporter (P[unchecked] = f\n"
              "exactly, the extreme point of Lemma 2); 400 seeded runs per N.");
  Table table({"N", "delta", "empirical", "hoeffding"});
  table.print_header();
  const double f = 0.5;
  for (std::size_t n : {200u, 800u, 3200u}) {
    for (double delta : {0.02, 0.05, 0.1}) {
      int exceed = 0;
      const int runs = 400;
      for (int s = 0; s < runs; ++s) {
        // Bernoulli(f) per transaction: the single-reporter -1 case.
        Rng rng(10'000 + s);
        std::size_t unchecked = 0;
        for (std::size_t t = 0; t < n; ++t) {
          if (rng.bernoulli(f)) ++unchecked;
        }
        if (static_cast<double>(unchecked) > (f + delta) * static_cast<double>(n)) {
          ++exceed;
        }
      }
      const double empirical = static_cast<double>(exceed) / runs;
      const double bound = std::exp(-2.0 * delta * delta * static_cast<double>(n));
      table.row({std::to_string(n), fmt(delta, 2), fmt(empirical, 4), fmt(bound, 4)});
      json.row("hoeffding", {{"n", bench::ju(n)},
                             {"delta", bench::jf(delta, 2)},
                             {"empirical", bench::jf(empirical, 4)},
                             {"bound", bench::jf(bound, 4)}});
    }
  }
}

}  // namespace

int main() {
  std::printf("bench_unchecked — E2 (Lemma 2) and E3 (Theorem 3)\n");
  bench::JsonReport json("unchecked", 77);
  full_protocol_sweep(json);
  simulator_sweep(json);
  hoeffding_tail(json);
  json.write();
  return 0;
}
