// Experiment E6 (§4.2 incentives): a collector's revenue is proportional to
//   prod_u w_{i,k_u} * mu^misreport * nu^forge,
// so all three misbehaviour classes — misreporting, concealing, forging —
// cut into revenue, and honest work maximizes it.
//
// We run cohorts of identical collectors differing only in behaviour and
// print cumulative protocol rewards plus the reputation components under
// governor 0.
//
// Expected shape: honest >> noisy > concealing > misreporting; the forger's
// revenue collapses fastest (nu^forge with forge << 0).

#include <cstdio>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using protocol::CollectorBehavior;
using repchain::bench::fmt;
using repchain::bench::Table;

void cohorts(bench::JsonReport& json) {
  bench::section("E6a: cumulative rewards by behaviour cohort");
  bench::note("6 collectors: honest, noisy(0.8), misreporting(0.5),\n"
              "concealing(0.5), forging(0.3), adversarial; 12 providers, r = 4,\n"
              "20 rounds, audits reveal all unchecked truths.");
  sim::ScenarioConfig cfg;
  cfg.topology = {12, 6, 3, 4};
  cfg.rounds = 20;
  cfg.txs_per_provider_per_round = 2;
  cfg.p_valid = 0.7;
  cfg.governor.rep.f = 0.6;
  cfg.behaviors = {CollectorBehavior::honest(),          CollectorBehavior::noisy(0.8),
                   CollectorBehavior::misreporting(0.5), CollectorBehavior::concealing(0.5),
                   CollectorBehavior::forging(0.3),      CollectorBehavior::adversarial()};
  cfg.seed = 4242;
  sim::Scenario s(cfg);
  s.run();

  const char* names[] = {"honest",     "noisy-0.8", "misreport-0.5",
                         "conceal-0.5", "forge-0.3", "adversarial"};
  const auto& g = s.governor(0);
  Table table({"collector", "reward", "share", "misreport", "forge", "sum log w"});
  table.print_header();
  const auto shares = g.revenue_shares();
  for (std::size_t c = 0; c < 6; ++c) {
    const CollectorId id(static_cast<std::uint32_t>(c));
    double share = 0.0;
    for (const auto& [cid, sh] : shares) {
      if (cid == id) share = sh;
    }
    double sum_log_w = 0.0;
    for (ProviderId p : s.directory().providers_of(id)) {
      sum_log_w += g.reputation().log_weight(id, p);
    }
    table.row({names[c], fmt(s.collector_rewards()[c], 1), fmt(share, 4),
               std::to_string(g.reputation().misreport(id)),
               std::to_string(g.reputation().forge(id)), fmt(sum_log_w, 2)});
    json.row("cohorts", {{"collector", bench::js(names[c])},
                         {"reward", bench::jf(s.collector_rewards()[c], 1)},
                         {"share", bench::jf(share, 4)},
                         {"misreport", bench::ju(g.reputation().misreport(id))},
                         {"forge", bench::ju(g.reputation().forge(id))},
                         {"sum_log_w", bench::jf(sum_log_w, 2)}});
  }
}

void mu_nu_sweep(bench::JsonReport& json) {
  bench::section("E6b ablation: mu, nu steer how hard misreports/forgeries bite");
  bench::note("Same scenario (honest vs misreporting vs forging), sweeping mu/nu;\n"
              "reporting the honest collector's revenue share under governor 0.");
  Table table({"mu", "nu", "honest", "misreporter", "forger"});
  table.print_header();
  for (double mu : {1.05, 1.2}) {
    for (double nu : {1.2, 2.0}) {
      sim::ScenarioConfig cfg;
      cfg.topology = {6, 3, 2, 2};
      cfg.rounds = 12;
      cfg.txs_per_provider_per_round = 2;
      cfg.governor.rep.f = 0.6;
      cfg.governor.rep.mu = mu;
      cfg.governor.rep.nu = nu;
      cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::misreporting(0.6),
                       CollectorBehavior::forging(0.4)};
      cfg.seed = 999;
      sim::Scenario s(cfg);
      s.run();
      const auto shares = s.governor(0).revenue_shares();
      double sh[3] = {0, 0, 0};
      for (const auto& [cid, share] : shares) sh[cid.value()] = share;
      table.row({fmt(mu, 2), fmt(nu, 2), fmt(sh[0], 4), fmt(sh[1], 4), fmt(sh[2], 4)});
      json.row("mu_nu_sweep", {{"mu", bench::jf(mu, 2)},
                               {"nu", bench::jf(nu, 2)},
                               {"honest_share", bench::jf(sh[0], 4)},
                               {"misreporter_share", bench::jf(sh[1], 4)},
                               {"forger_share", bench::jf(sh[2], 4)}});
    }
  }
  bench::note("\nLarger mu widens the gap against misreporters; larger nu\n"
              "crushes forgers harder — the paper's mu, nu > 1 requirement.");
}

void conceal_ablation() {
  bench::section("E6c ablation: conceal_checked_penalty (Alg. 3 vs §4.2 prose)");
  bench::note("The paper's prose says concealing a checked tx costs reputation\n"
              "(less than misreporting); Algorithm 3 only touches reporters.\n"
              "Sweeping the penalty with a heavy concealer in the cohort.");
  Table table({"penalty", "honest", "concealer", "misreporter"});
  table.print_header();
  for (std::int64_t penalty : {0L, 1L}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {6, 3, 2, 2};
    cfg.rounds = 12;
    cfg.txs_per_provider_per_round = 2;
    cfg.governor.rep.f = 0.6;
    cfg.governor.rep.conceal_checked_penalty = penalty;
    cfg.behaviors = {CollectorBehavior::honest(), CollectorBehavior::concealing(0.7),
                     CollectorBehavior::misreporting(0.6)};
    cfg.seed = 777;
    sim::Scenario s(cfg);
    s.run();
    const auto shares = s.governor(0).revenue_shares();
    double sh[3] = {0, 0, 0};
    for (const auto& [cid, share] : shares) sh[cid.value()] = share;
    table.row({std::to_string(penalty), fmt(sh[0], 4), fmt(sh[1], 4), fmt(sh[2], 4)});
  }
  bench::note("\nWith the penalty on, the concealer's share drops further while\n"
              "remaining above the misreporter's — the ordering the prose asks for.");
}

}  // namespace

int main() {
  std::printf("bench_incentives — E6 / §4.2: revenue punishes all misbehaviour\n");
  bench::JsonReport json("incentives", 4242);
  cohorts(json);
  mu_nu_sweep(json);
  conceal_ablation();
  json.write();
  return 0;
}
