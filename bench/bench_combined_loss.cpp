// Experiment E4 (Theorem 4): end-to-end, with at least one well-behaved
// collector per provider, the governor's loss on unchecked transactions
// satisfies L <= S + O(sqrt((f+delta)N)) with overwhelming probability.
//
// We sweep N through the policy simulator (exact protocol screening +
// reputation updates, abstracted networking) with an adversarial cohort and
// report L, S_min, the number of unchecked transactions T_u, and the bound
// S_min + 16*sqrt(T_u log r). A full-protocol spot check follows.
//
// Expected shape: L stays below the bound at every N; L - S_min grows like
// sqrt(N), not N.

#include <cmath>
#include <cstdio>

#include "baselines/policies.hpp"
#include "baselines/policy_simulator.hpp"
#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

void simulator_sweep(bench::JsonReport& json) {
  bench::section("E4a: L vs S_min + 16 sqrt(T_u log r) — N sweep (policy simulator)");
  bench::note("r = 4 collectors: perfect, noisy(0.8), adversarial, concealing(0.5);\n"
              "f = 0.5, p_valid = 0.6, 5 seeds per N.");
  Table table({"N", "f", "L", "S_min", "T_u", "bound", "L<=bound"});
  table.print_header();
  for (std::size_t n : {500u, 1000u, 2000u, 4000u, 8000u}) {
    double loss = 0.0, s_min = 0.0, t_u = 0.0;
    const int seeds = 5;
    for (int s = 0; s < seeds; ++s) {
      reputation::ReputationParams params;
      params.f = 0.5;
      baselines::ReputationPolicy policy(params, 4, 1);
      baselines::PolicyWorkloadConfig w;
      w.transactions = n;
      w.p_valid = 0.6;
      w.collectors = {{1.0, 0.0, 0.0},
                      {0.8, 0.0, 0.0},
                      {1.0, 1.0, 0.0},
                      {1.0, 0.0, 0.5}};
      w.seed = 500 + s;
      const auto r = run_policy(policy, w);
      loss += r.loss;
      s_min += r.s_min;
      t_u += static_cast<double>(r.unchecked);
    }
    loss /= seeds;
    s_min /= seeds;
    t_u /= seeds;
    const double bound = s_min + 16.0 * std::sqrt(t_u * std::log(4.0));
    table.row({std::to_string(n), "0.5", fmt(loss, 1), fmt(s_min, 1), fmt(t_u, 0),
               fmt(bound, 1), loss <= bound ? "yes" : "NO"});
    json.row("n_sweep", {{"n", bench::ju(n)},
                         {"loss", bench::jf(loss, 1)},
                         {"s_min", bench::jf(s_min, 1)},
                         {"t_u", bench::jf(t_u, 0)},
                         {"bound", bench::jf(bound, 1)},
                         {"within_bound", loss <= bound ? "true" : "false"}});
  }
}

void full_protocol_check(bench::JsonReport& json) {
  bench::section("E4b: full-protocol spot check (networked scenario)");
  bench::note("6 providers x 3 collectors (honest, honest, misreporting-0.8),\n"
              "r = 2, f = 0.7, audits reveal unchecked truths each round.\n"
              "Loss and expected loss are governor 0's metrics.");
  Table table({"rounds", "N", "unchecked", "mistakes", "L realized", "L expected"});
  table.print_header();
  for (std::size_t rounds : {4u, 8u, 16u, 32u}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {6, 3, 3, 2};
    cfg.rounds = rounds;
    cfg.txs_per_provider_per_round = 3;
    cfg.p_valid = 0.6;
    cfg.governor.rep.f = 0.7;
    cfg.behaviors = {protocol::CollectorBehavior::honest(),
                     protocol::CollectorBehavior::honest(),
                     protocol::CollectorBehavior::misreporting(0.8)};
    cfg.seed = 321;
    sim::Scenario s(cfg);
    s.run();
    const auto& g = s.governor(0);
    table.row({std::to_string(rounds), std::to_string(s.summary().txs_submitted),
               std::to_string(g.screening_stats().unchecked),
               std::to_string(g.metrics().mistakes), fmt(g.metrics().realized_loss, 1),
               fmt(g.metrics().expected_loss, 1)});
    json.row("protocol_check", {{"rounds", bench::ju(rounds)},
                                {"txs", bench::ju(s.summary().txs_submitted)},
                                {"unchecked", bench::ju(g.screening_stats().unchecked)},
                                {"mistakes", bench::ju(g.metrics().mistakes)},
                                {"realized_loss", bench::jf(g.metrics().realized_loss, 1)},
                                {"expected_loss", bench::jf(g.metrics().expected_loss, 1)}});
  }
  bench::note("\nExpected shape: mistakes grow sublinearly in N as the\n"
              "misreporter's weight collapses; expected loss tracks realized.");
}

}  // namespace

int main() {
  std::printf("bench_combined_loss — E4 / Theorem 4: L <= S + O(sqrt((f+delta)N))\n");
  bench::JsonReport json("combined_loss", 321);
  simulator_sweep(json);
  full_protocol_check(json);
  json.write();
  return 0;
}
