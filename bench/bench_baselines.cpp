// Experiment E8: reputation-guided screening vs reputation-free baselines at
// equal checking budget f, across adversary mixes.
//
// Comparators (all over the identical seeded workload):
//   check-all  — validates everything (f = 0 anchor: zero loss, max cost),
//   uniform    — source drawn uniformly, same 1 - f*Pr coin,
//   majority   — unweighted vote, -1 majority unchecked w.p. f,
//   reputation — the paper (Algorithm 2 + 3).
//
// Expected shape: reputation's loss approaches check-all's (zero) while its
// validation count approaches uniform's; uniform and majority pay much more
// loss at the same f whenever adversaries are present.

#include <cstdio>

#include "baselines/policies.hpp"
#include "baselines/policy_simulator.hpp"
#include "bench_util.hpp"

namespace {

using namespace repchain;
using baselines::PolicyWorkloadConfig;
using baselines::SimCollector;
using repchain::bench::fmt;
using repchain::bench::Table;

struct Mix {
  const char* name;
  std::vector<SimCollector> collectors;
};

void compare(const Mix& mix, double f, bench::JsonReport& json) {
  PolicyWorkloadConfig w;
  w.transactions = 20000;
  w.p_valid = 0.6;
  w.collectors = mix.collectors;
  w.seed = 2024;

  reputation::ReputationParams params;
  params.f = f;

  baselines::CheckAllPolicy check_all;
  baselines::UniformPolicy uniform(f);
  baselines::MajorityVotePolicy majority(f);
  baselines::ReputationPolicy reputation(params, mix.collectors.size(), 1);

  Table table({"policy", "validations/tx", "loss", "mistakes", "S_min"});
  table.print_header();
  for (baselines::ScreeningPolicy* p :
       {static_cast<baselines::ScreeningPolicy*>(&check_all),
        static_cast<baselines::ScreeningPolicy*>(&uniform),
        static_cast<baselines::ScreeningPolicy*>(&majority),
        static_cast<baselines::ScreeningPolicy*>(&reputation)}) {
    const auto r = run_policy(*p, w);
    const double vpt = static_cast<double>(r.validations) / r.transactions;
    table.row({p->name(), fmt(vpt, 3), fmt(r.loss, 1), std::to_string(r.mistakes),
               fmt(r.s_min, 1)});
    json.row("comparisons", {{"mix", bench::js(mix.name)},
                             {"policy", bench::js(p->name())},
                             {"validations_per_tx", bench::jf(vpt, 3)},
                             {"loss", bench::jf(r.loss, 1)},
                             {"mistakes", bench::ju(r.mistakes)},
                             {"s_min", bench::jf(r.s_min, 1)}});
  }
}

}  // namespace

int main() {
  std::printf("bench_baselines — E8: reputation vs reputation-free screening\n");
  const double f = 0.7;
  bench::JsonReport json("baselines", 2024);
  json.field("f", bench::jf(f, 2));

  const Mix mixes[] = {
      {"all honest (accuracy 1.0)",
       {{1.0, 0, 0}, {1.0, 0, 0}, {1.0, 0, 0}, {1.0, 0, 0}}},
      {"one adversary among three honest",
       {{1.0, 0, 0}, {1.0, 0, 0}, {1.0, 0, 0}, {1.0, 1.0, 0}}},
      {"adversarial majority (3 of 4 flip)",
       {{1.0, 0, 0}, {1.0, 1.0, 0}, {1.0, 1.0, 0}, {1.0, 1.0, 0}}},
      {"noisy crowd (accuracy 0.75), one perfect",
       {{1.0, 0, 0}, {0.75, 0, 0}, {0.75, 0, 0}, {0.75, 0, 0}}},
      {"concealers (drop 0.6) plus one adversary",
       {{1.0, 0, 0.6}, {1.0, 0, 0.6}, {1.0, 0, 0}, {1.0, 1.0, 0}}},
  };

  for (const auto& mix : mixes) {
    bench::section(std::string("E8: f = 0.7, mix = ") + mix.name);
    compare(mix, f, json);
  }

  bench::note("\nKey row: under 'adversarial majority', unweighted majority vote\n"
              "is poisoned while reputation recovers by weighting the single\n"
              "honest collector up — the overlap structure the paper exploits.");
  json.write();
  return 0;
}
