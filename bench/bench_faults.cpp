// Robustness under injected network faults: sweep burst-loss rate x healed
// partition length at a fixed seed with reliable delivery on, and measure
// what the fault schedule costs the protocol — committed throughput, mean
// commit latency within the round, the unchecked fraction of the chain, the
// reliable channel's masking effort (retransmissions) and the liveness
// watchdog's stall count.
//
// Expected shape: loss up to ~20% is fully masked (same block count, a
// bounded retransmission overhead, commit latency flat); a single-governor
// partition costs nothing while it is not the leader and heals via the
// catch-up sync; unchecked fraction stays at the fault-free level across all
// loss rates because screening inputs arrive (late but intact) through the
// ack/retry channel.

#include <cstdio>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::fmt_u;
using repchain::bench::Table;

constexpr std::uint64_t kSeed = 7777;
constexpr std::size_t kRounds = 10;

sim::ScenarioConfig base_config() {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = kRounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = kSeed;
  return cfg;
}

struct Point {
  double loss = 0.0;
  std::size_t partition_rounds = 0;
  std::uint64_t blocks = 0;
  double tx_per_s = 0.0;
  double commit_ms = 0.0;  // mean commit instant relative to round start
  double unchecked_fraction = 0.0;
  std::uint64_t retransmits = 0;
  std::uint64_t loss_drops = 0;
  std::uint64_t partition_drops = 0;
  std::uint64_t stalled = 0;
  bool agreement = false;
  bool audit_ok = false;
};

Point measure(double loss, std::size_t partition_rounds) {
  sim::ScenarioConfig cfg = base_config();
  if (loss > 0.0) {
    sim::LossSpec spec;
    spec.from_round = 2;
    spec.until_round = kRounds + 1;
    spec.probability = loss;
    cfg.faults.losses = {spec};
  }
  if (partition_rounds > 0) {
    sim::PartitionSpec spec;
    spec.from_round = 2;
    spec.until_round = 2 + partition_rounds;  // healed afterwards
    spec.governors = {cfg.topology.governors - 1};
    cfg.faults.partitions = {spec};
  }

  sim::Scenario s(cfg);
  s.run();
  const auto sum = s.summary();

  Point p;
  p.loss = loss;
  p.partition_rounds = partition_rounds;
  p.blocks = sum.blocks;
  const double sim_seconds =
      static_cast<double>(kRounds) * static_cast<double>(s.timing().round_span) /
      static_cast<double>(kSecond);
  const std::uint64_t committed = sum.chain_valid_txs + sum.chain_unchecked_txs;
  p.tx_per_s = static_cast<double>(committed) / sim_seconds;
  p.unchecked_fraction =
      committed == 0 ? 0.0
                     : static_cast<double>(sum.chain_unchecked_txs) /
                           static_cast<double>(committed);

  double latency_sum = 0.0;
  std::size_t latency_n = 0;
  for (Round r = 1; r <= kRounds; ++r) {
    const auto at = s.observer().commit_at(r);
    if (!at) continue;
    const SimTime start = static_cast<SimTime>(r - 1) * s.timing().round_span;
    latency_sum += static_cast<double>(*at - start) /
                   static_cast<double>(kMillisecond);
    ++latency_n;
  }
  p.commit_ms = latency_n == 0 ? 0.0 : latency_sum / static_cast<double>(latency_n);

  for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
    if (const auto* ch = s.governor(g).channel()) {
      p.retransmits += ch->stats().retransmits;
    }
  }
  if (const auto* fs = s.fault_stats()) {
    p.loss_drops = fs->loss_drops;
    p.partition_drops = fs->partition_drops;
  }
  p.stalled = sum.stalled_events;
  p.agreement = sum.agreement;
  p.audit_ok = sum.chains_audit_ok;
  return p;
}

}  // namespace

int main() {
  bench::section("Fault robustness: loss rate x partition length (seed " +
                 std::to_string(kSeed) + ", " + std::to_string(kRounds) +
                 " rounds, reliable delivery)");

  bench::JsonReport json("faults", kSeed);
  json.field("rounds", bench::ju(kRounds));

  Table table({"loss", "part_rounds", "blocks", "tx/s", "commit_ms", "unchecked",
               "retransmit", "stalled", "ok"},
              12);
  table.print_header();

  const std::vector<double> losses = {0.0, 0.05, 0.10, 0.20};
  const std::vector<std::size_t> partitions = {0, 1, 3};
  // Each grid cell is an isolated scenario run: shard the whole grid over the
  // cores and emit rows in grid order (the report is identical to a serial
  // sweep, it just finishes sooner).
  std::vector<std::pair<double, std::size_t>> grid;
  for (const double loss : losses) {
    for (const std::size_t part : partitions) grid.emplace_back(loss, part);
  }
  const sim::ParallelSweep sweep(0);  // 0 = hardware concurrency
  const std::vector<Point> points = sweep.map<Point>(
      grid.size(),
      [&grid](std::size_t i) { return measure(grid[i].first, grid[i].second); });
  {
    for (const Point& p : points) {
      const bool ok = p.agreement && p.audit_ok;
      table.row({fmt(p.loss, 2), fmt_u(p.partition_rounds), fmt_u(p.blocks),
                 fmt(p.tx_per_s, 1), fmt(p.commit_ms, 2),
                 fmt(p.unchecked_fraction, 3), fmt_u(p.retransmits),
                 fmt_u(p.stalled), ok ? "yes" : "NO"});
      json.row("sweep", {{"loss", bench::jf(p.loss, 2)},
                         {"partition_rounds", bench::ju(p.partition_rounds)},
                         {"blocks", bench::ju(p.blocks)},
                         {"tx_per_s", bench::jf(p.tx_per_s, 2)},
                         {"commit_latency_ms", bench::jf(p.commit_ms, 3)},
                         {"unchecked_fraction", bench::jf(p.unchecked_fraction, 4)},
                         {"retransmits", bench::ju(p.retransmits)},
                         {"loss_drops", bench::ju(p.loss_drops)},
                         {"partition_drops", bench::ju(p.partition_drops)},
                         {"stalled_events", bench::ju(p.stalled)},
                         {"agreement", p.agreement ? "true" : "false"},
                         {"audit_ok", p.audit_ok ? "true" : "false"}});
    }
  }

  bench::note("");
  bench::note(
      "Loss is masked by ack/retry (retransmits grow with the rate, blocks and "
      "unchecked fraction do not); a one-governor partition is invisible to "
      "the majority and heals via catch-up sync; 'NO' in the last column "
      "would mean a divergent or audit-failing replica.");
  json.write();
  return 0;
}
