// Experiment E1 (Theorem 1): governor loss L_T vs the best collector's loss
// S_min in the learning-with-expert-advice game underlying the reputation
// mechanism. Prints, per (r, T): L_T, S_min, regret, the normalized regret
// regret/sqrt(T log r), and the paper's explicit bounds.
//
// Paper claim: with beta = 1 - 4*sqrt(log r / T),
//   L_T <= S_min + 16*sqrt(T log r)  = S_min + O(sqrt(T)).
// Expected shape: the normalized regret column stays bounded (well under 16)
// as T grows; the bound column always dominates the regret column.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "reputation/params.hpp"
#include "reputation/rwm.hpp"

namespace {

using namespace repchain;
using namespace repchain::reputation;
using repchain::bench::fmt;
using repchain::bench::Table;

/// Stochastic adversary: expert 0 is near-perfect (err 2%), the rest err at
/// 30-60%; 10% abstention everywhere.
void stochastic_advice(std::vector<Advice>& advice, Rng& rng) {
  const std::size_t r = advice.size();
  for (std::size_t i = 0; i < r; ++i) {
    if (rng.bernoulli(0.1)) {
      advice[i] = Advice::kAbstain;
      continue;
    }
    const double p_err = i == 0 ? 0.02 : 0.3 + 0.3 * static_cast<double>(i) / r;
    advice[i] = rng.bernoulli(p_err) ? Advice::kWrong : Advice::kCorrect;
  }
}

/// Adaptive adversary: the currently heaviest expert errs (worst case for
/// multiplicative weights).
void adaptive_advice(std::vector<Advice>& advice, const RwmGame& game) {
  std::size_t heaviest = 0;
  for (std::size_t i = 1; i < advice.size(); ++i) {
    if (game.relative_weight(i) > game.relative_weight(heaviest)) heaviest = i;
  }
  for (auto& a : advice) a = Advice::kCorrect;
  advice[heaviest] = Advice::kWrong;
}

struct RunResult {
  double loss;
  double s_min;
};

RunResult run(std::size_t r, std::size_t t_max, double beta, bool adaptive,
              std::uint64_t seed) {
  RwmGame game(r, beta);
  Rng rng(seed);
  std::vector<Advice> advice(r);
  for (std::size_t t = 0; t < t_max; ++t) {
    if (adaptive) {
      adaptive_advice(advice, game);
    } else {
      stochastic_advice(advice, rng);
    }
    (void)game.step(advice);
  }
  return {game.cumulative_loss(), game.min_expert_loss()};
}

void sweep(bool adaptive, bench::JsonReport& json) {
  bench::section(adaptive ? "E1a: adaptive adversary (heaviest expert errs)"
                          : "E1b: stochastic adversary (one near-perfect collector)");
  Table table({"r", "T", "beta", "L_T", "S_min", "regret", "reg_norm",
               "bound_16rt"});
  table.print_header();
  for (std::size_t r : {4u, 8u, 16u}) {
    for (std::size_t t : {100u, 300u, 1000u, 2400u, 4800u}) {
      const double beta = theorem_optimal_beta(r, t);
      // Average over seeds for the stochastic case.
      const int seeds = adaptive ? 1 : 5;
      double loss = 0.0, s_min = 0.0;
      for (int s = 0; s < seeds; ++s) {
        const auto res = run(r, t, beta, adaptive, 1000 + s);
        loss += res.loss;
        s_min += res.s_min;
      }
      loss /= seeds;
      s_min /= seeds;
      const double scale =
          std::sqrt(static_cast<double>(t) * std::log(static_cast<double>(r)));
      const double regret = loss - s_min;
      table.row({std::to_string(r), std::to_string(t), fmt(beta, 3), fmt(loss, 1),
                 fmt(s_min, 1), fmt(regret, 1), fmt(regret / scale, 3),
                 fmt(16.0 * scale, 1)});
      json.row(adaptive ? "adaptive_sweep" : "stochastic_sweep",
               {{"r", bench::ju(r)},
                {"t", bench::ju(t)},
                {"beta", bench::jf(beta, 3)},
                {"loss", bench::jf(loss, 1)},
                {"s_min", bench::jf(s_min, 1)},
                {"regret", bench::jf(regret, 1)},
                {"regret_normalized", bench::jf(regret / scale, 3)},
                {"bound", bench::jf(16.0 * scale, 1)}});
    }
  }
}

void beta_ablation() {
  bench::section("E1c ablation: fixed beta = 0.9 vs theorem-optimal beta");
  bench::note("Paper suggests beta = 0.9 in practice; Theorem 1 tunes "
              "beta = 1 - 4*sqrt(log r / T). Stochastic adversary, r = 8.");
  Table table({"T", "regret(0.9)", "regret(opt)", "opt beta"});
  table.print_header();
  for (std::size_t t : {100u, 300u, 1000u, 2400u, 4800u}) {
    double r_fixed = 0.0, r_opt = 0.0;
    const double beta_opt = theorem_optimal_beta(8, t);
    for (int s = 0; s < 5; ++s) {
      const auto fixed = run(8, t, 0.9, false, 2000 + s);
      const auto opt = run(8, t, beta_opt, false, 2000 + s);
      r_fixed += fixed.loss - fixed.s_min;
      r_opt += opt.loss - opt.s_min;
    }
    table.row({std::to_string(t), fmt(r_fixed / 5, 1), fmt(r_opt / 5, 1),
               fmt(beta_opt, 3)});
  }
}

void sqrt_scaling() {
  bench::section("E1d: regret growth is O(sqrt(T)) not O(T)");
  bench::note("Adaptive adversary (regret strictly positive there; under the\n"
              "stochastic one the aggregate eventually beats the best expert\n"
              "and regret goes negative). Quadrupling T: sqrt scaling predicts\n"
              "ratio ~2, linear would be 4. r = 8.");
  Table table({"T", "regret", "ratio vs T/4", "regret/sqrt(T)"});
  table.print_header();
  double prev = 0.0;
  for (std::size_t t : {300u, 1200u, 4800u, 19200u}) {
    const auto res = run(8, t, theorem_optimal_beta(8, t), true, 0);
    const double regret = res.loss - res.s_min;
    table.row({std::to_string(t), fmt(regret, 1),
               prev > 0 ? fmt(regret / prev, 2) : "-",
               fmt(regret / std::sqrt(static_cast<double>(t)), 3)});
    prev = regret;
  }
  bench::note("\nThe T = 19200 row sits outside Theorem 1's stated domain: for\n"
              "r = 8 the tuning beta = 1 - 4 sqrt(log r / T) <= 0.9 'holds when\n"
              "T <= 4800' (paper, end of proof). Beyond it beta saturates at 0.9\n"
              "and worst-case growth drifts back toward linear — the theorem's\n"
              "domain restriction is real, not an artifact.");
}

void drift() {
  bench::section("E1e extension: non-stationary experts (quality drift)");
  bench::note("Which collector is 'the good one' changes every 500 rounds; the\n"
              "multiplicative weights must re-converge. Regret is measured\n"
              "against the best FIXED expert (the theorem's comparator) and\n"
              "against the best PER-SEGMENT expert (tracking comparator).");
  Table table({"T", "L_T", "S_min fixed", "regret", "S_min track", "reg track"});
  table.print_header();
  const std::size_t r = 6;
  for (std::size_t t_max : {1000u, 2000u, 4000u}) {
    Rng rng(9090);
    RwmGame game(r, 0.9);
    std::vector<double> segment_losses;  // best-expert loss per segment
    std::vector<double> seg_expert(r, 0.0);
    std::vector<Advice> advice(r);
    for (std::size_t t = 0; t < t_max; ++t) {
      const std::size_t good = (t / 500) % r;  // the reliable expert rotates
      for (std::size_t i = 0; i < r; ++i) {
        const double p_err = i == good ? 0.02 : 0.45;
        advice[i] = rng.bernoulli(p_err) ? Advice::kWrong : Advice::kCorrect;
        if (advice[i] == Advice::kWrong) seg_expert[i] += 2.0;
      }
      (void)game.step(advice);
      if ((t + 1) % 500 == 0 || t + 1 == t_max) {
        segment_losses.push_back(
            *std::min_element(seg_expert.begin(), seg_expert.end()));
        std::fill(seg_expert.begin(), seg_expert.end(), 0.0);
      }
    }
    double s_track = 0.0;
    for (double l : segment_losses) s_track += l;
    table.row({std::to_string(t_max), fmt(game.cumulative_loss(), 1),
               fmt(game.min_expert_loss(), 1), fmt(game.regret(), 1), fmt(s_track, 1),
               fmt(game.cumulative_loss() - s_track, 1)});
  }
  bench::note("\nRegret vs the fixed comparator can go negative (no fixed expert\n"
              "is good everywhere); the tracking gap grows with each switch —\n"
              "the known limitation of plain multiplicative weights the paper\n"
              "inherits (a future-work hook: sleeping-experts variants).");
}

}  // namespace

int main() {
  std::printf("bench_regret — E1 / Theorem 1: L_T <= S_min + O(sqrt(T))\n");
  bench::JsonReport json("regret");
  sweep(/*adaptive=*/false, json);
  sweep(/*adaptive=*/true, json);
  beta_ablation();
  sqrt_scaling();
  drift();
  json.write();
  return 0;
}
