// Experiment E5 (§4.1 complexity claims):
//   * reaching consensus on an ordinary block costs O(b_limit * m) messages
//     (the leader's block reaches every governor);
//   * a stake-transform block costs O(m^2) (every governor's transfer is
//     broadcast to every governor, plus the 3-step sign-and-collect).
//
// We sweep the governor count m and print per-kind message counts from the
// network's accounting.
//
// Expected shape: block-proposal messages grow linearly in m (payload
// proportional to b_limit); stake messages grow quadratically in m.

#include <cstdio>
#include <deque>

#include "bench_util.hpp"
#include "baselines/pbft.hpp"
#include "baselines/raft.hpp"
#include "crypto/keygen.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

std::uint64_t kind_count(const net::NetworkStats& stats, net::MsgKind kind) {
  const auto it = stats.by_kind.find(kind);
  return it == stats.by_kind.end() ? 0 : it->second;
}

std::uint64_t kind_bytes(const net::NetworkStats& stats, net::MsgKind kind) {
  const auto it = stats.bytes_by_kind.find(kind);
  return it == stats.bytes_by_kind.end() ? 0 : it->second;
}

void block_complexity(bench::JsonReport& json) {
  bench::section("E5a: ordinary block — O(b_limit * m)");
  bench::note("Fixed workload (16 tx/round, 4 rounds), sweeping governors m.\n"
              "block msgs = m per round (leader broadcast); bytes ~ b_limit.");
  Table table({"m", "block msgs", "block bytes", "vrf msgs", "msgs/m"});
  table.print_header();
  for (std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {8, 4, m, 2};
    cfg.rounds = 4;
    cfg.txs_per_provider_per_round = 2;
    cfg.seed = 5;
    sim::Scenario s(cfg);
    s.run();
    const auto& stats = s.network().stats();
    const auto blocks = kind_count(stats, net::MsgKind::kBlockProposal);
    const auto vrf = kind_count(stats, net::MsgKind::kVrfAnnounce);
    table.row({std::to_string(m), std::to_string(blocks),
               std::to_string(kind_bytes(stats, net::MsgKind::kBlockProposal)),
               std::to_string(vrf),
               fmt(static_cast<double>(blocks) / static_cast<double>(m), 1)});
    json.row("block_complexity",
             {{"m", bench::ju(m)},
              {"block_msgs", bench::ju(blocks)},
              {"block_bytes", bench::ju(kind_bytes(stats, net::MsgKind::kBlockProposal))},
              {"vrf_msgs", bench::ju(vrf)}});
  }
  bench::note("msgs/m constant => linear in m, matching O(b_limit * m).");
}

void stake_complexity(bench::JsonReport& json) {
  bench::section("E5b: stake-transform block — O(m^2)");
  bench::note("Every governor submits one transfer in the round; counting\n"
              "stake-tx + 3-step consensus messages.");
  Table table({"m", "stake msgs", "state msgs", "total", "total/m^2"});
  table.print_header();
  for (std::size_t m : {2u, 4u, 8u, 16u, 32u}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {4, 4, m, 2};
    cfg.rounds = 1;
    cfg.txs_per_provider_per_round = 0;
    cfg.governor_stakes.assign(m, 4);
    cfg.seed = 6;
    sim::Scenario s(cfg);
    s.network().reset_stats();
    // Every governor transfers 1 unit to its neighbour, then one round runs
    // the 3-step consensus over the transfers.
    for (std::size_t g = 0; g < m; ++g) {
      s.governor(g).submit_stake_transfer(
          GovernorId(static_cast<std::uint32_t>((g + 1) % m)), 1);
    }
    s.run_round();
    const auto& stats = s.network().stats();
    const auto stake = kind_count(stats, net::MsgKind::kStakeTx);
    const auto state = kind_count(stats, net::MsgKind::kStateProposal) +
                       kind_count(stats, net::MsgKind::kStateSignature) +
                       kind_count(stats, net::MsgKind::kStateCommit);
    const auto total = stake + state;
    table.row({std::to_string(m), std::to_string(stake), std::to_string(state),
               std::to_string(total),
               fmt(static_cast<double>(total) / static_cast<double>(m * m), 2)});
    json.row("stake_complexity", {{"m", bench::ju(m)},
                                  {"stake_msgs", bench::ju(stake)},
                                  {"state_msgs", bench::ju(state)},
                                  {"total", bench::ju(total)}});
  }
  bench::note("total/m^2 approaching a constant => quadratic, matching O(m^2).");
}

void upload_fanout() {
  bench::section("E5c: collecting/uploading fan-out (context)");
  bench::note("Provider tx copies = r per tx; upload copies = m per labeled tx.");
  Table table({"m", "provider msgs", "upload msgs", "uploads/(txs*m)"});
  table.print_header();
  for (std::size_t m : {2u, 4u, 8u}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {8, 4, m, 2};
    cfg.rounds = 2;
    cfg.txs_per_provider_per_round = 2;
    cfg.seed = 7;
    sim::Scenario s(cfg);
    s.run();
    const auto& stats = s.network().stats();
    const double txs = static_cast<double>(s.summary().txs_submitted);
    const auto uploads = kind_count(stats, net::MsgKind::kCollectorUpload);
    table.row({std::to_string(m),
               std::to_string(kind_count(stats, net::MsgKind::kProviderTx)),
               std::to_string(uploads),
               fmt(static_cast<double>(uploads) / (txs * static_cast<double>(m)), 2)});
  }
}

void pbft_comparison(bench::JsonReport& json) {
  bench::section("E5d: block agreement — RepChain leader-trust vs PBFT baseline");
  bench::note("Messages to commit ONE block across m governors. RepChain trusts\n"
              "the VRF-elected leader (one atomic broadcast, m copies); classic\n"
              "PBFT pays three all-to-all phases, ~3m^2 (§2.2/§4.1 positioning).");
  Table table({"m", "repchain", "raft", "pbft", "pbft/repchain"});
  table.print_header();
  for (std::size_t m : {4u, 8u, 16u, 32u}) {
    // RepChain: count only the block-proposal broadcast.
    std::uint64_t repchain_msgs = m;  // one copy per governor, by construction

    // Raft (crash-fault baseline, §2.2 Corda-with-Raft): steady-state
    // messages to commit one entry, excluding election and heartbeats.
    std::uint64_t raft_msgs = 0;
    {
      net::EventQueue queue;
      Rng rng(321);
      net::SimNetwork net(queue, rng.derive(1), net::LatencyModel{1, 5});
      std::vector<NodeId> nodes;
      for (std::size_t i = 0; i < m; ++i) nodes.push_back(net.add_node());
      std::deque<baselines::RaftNode> raft;
      for (std::size_t i = 0; i < m; ++i) {
        raft.emplace_back(static_cast<std::uint32_t>(i), nodes[i], net, nodes,
                          rng.derive(50 + i));
        const std::size_t idx = raft.size() - 1;
        net.set_handler(nodes[i], [&raft, idx](const net::Message& msg) {
          raft[idx].on_message(msg);
        });
      }
      for (auto& r : raft) r.start();
      baselines::RaftNode* leader = nullptr;
      while (!leader && !queue.empty()) {
        queue.run(1);
        for (auto& r : raft) {
          if (r.role() == baselines::RaftNode::Role::kLeader) leader = &r;
        }
      }
      if (leader) {
        net.reset_stats();
        (void)leader->submit(Bytes(512));
        queue.run_until(queue.now() + 15 * kMillisecond);  // below heartbeat
        raft_msgs = net.stats().messages_sent;
      }
    }

    // PBFT: run a real cluster committing one payload.
    net::EventQueue queue;
    Rng rng(123);
    net::SimNetwork net(queue, rng.derive(1), net::LatencyModel{1, 5});
    identity::IdentityManager im(crypto::random_seed(rng));
    std::vector<NodeId> nodes;
    std::vector<crypto::SigningKey> keys;
    for (std::size_t i = 0; i < m; ++i) {
      keys.emplace_back(crypto::random_seed(rng));
      nodes.push_back(net.add_node());
      im.enroll(nodes.back(), identity::Role::kGovernor, keys.back().public_key());
    }
    std::deque<baselines::PbftReplica> replicas;
    for (std::size_t i = 0; i < m; ++i) {
      replicas.emplace_back(static_cast<std::uint32_t>(i), nodes[i],
                            std::move(keys[i]), net, im, nodes);
      const std::size_t idx = replicas.size() - 1;
      net.set_handler(nodes[i], [&replicas, idx](const net::Message& msg) {
        replicas[idx].on_message(msg);
      });
    }
    net.reset_stats();
    replicas[0].propose(Bytes(512));
    queue.run();
    const std::uint64_t pbft_msgs = net.stats().messages_sent;
    table.row({std::to_string(m), std::to_string(repchain_msgs),
               std::to_string(raft_msgs), std::to_string(pbft_msgs),
               fmt(static_cast<double>(pbft_msgs) / static_cast<double>(repchain_msgs),
                   1)});
    json.row("consensus_comparison", {{"m", bench::ju(m)},
                                      {"repchain_msgs", bench::ju(repchain_msgs)},
                                      {"raft_msgs", bench::ju(raft_msgs)},
                                      {"pbft_msgs", bench::ju(pbft_msgs)}});
  }
  bench::note("\nThe permissioned trust assumption (governors won't fork, §3.4.3)\n"
              "buys the factor-~3m reduction over PBFT (f < m/3 byzantine).\n"
              "Raft sits in between: ~2(m-1) messages per commit, tolerating\n"
              "floor((m-1)/2) crashes but no byzantine behaviour — the §2.2\n"
              "Corda-with-Raft point on the trust/cost spectrum.");
}

}  // namespace

int main() {
  std::printf("bench_communication — E5 / §4.1: O(b_limit*m) blocks, O(m^2) stake\n");
  bench::JsonReport json("communication", 5);
  block_complexity(json);
  stake_complexity(json);
  upload_fanout();
  pbft_comparison(json);
  json.write();
  return 0;
}
