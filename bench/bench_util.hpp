#pragma once

// Shared formatting helpers for the experiment benches: fixed-width tables
// with a header, printed to stdout so `for b in build/bench/*; do $b; done`
// yields the paper-style rows directly.

#include <cstdio>
#include <string>
#include <vector>

namespace repchain::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size() * static_cast<std::size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

}  // namespace repchain::bench
