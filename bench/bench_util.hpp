#pragma once

// Shared formatting helpers for the experiment benches: fixed-width tables
// with a header, printed to stdout so `for b in build/bench/*; do $b; done`
// yields the paper-style rows directly.

#include <cstdint>
#include <cstdio>
#include <string>
#include <utility>
#include <vector>

namespace repchain::bench {

class Table {
 public:
  explicit Table(std::vector<std::string> headers, int col_width = 14)
      : headers_(std::move(headers)), width_(col_width) {}

  void print_header() const {
    for (const auto& h : headers_) std::printf("%*s", width_, h.c_str());
    std::printf("\n");
    for (std::size_t i = 0; i < headers_.size() * static_cast<std::size_t>(width_); ++i) {
      std::printf("-");
    }
    std::printf("\n");
  }

  void row(const std::vector<std::string>& cells) const {
    for (const auto& c : cells) std::printf("%*s", width_, c.c_str());
    std::printf("\n");
  }

 private:
  std::vector<std::string> headers_;
  int width_;
};

inline std::string fmt(double v, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string fmt_u(std::uint64_t v) { return std::to_string(v); }

inline void section(const std::string& title) {
  std::printf("\n=== %s ===\n\n", title.c_str());
}

inline void note(const std::string& text) { std::printf("%s\n", text.c_str()); }

// --- Machine-readable reports ------------------------------------------------
//
// Every bench binary writes a flat BENCH_<name>.json next to its stdout
// table so dashboards/CI trend lines can diff runs without scraping text.
// Values are pre-rendered JSON literals; the j* helpers below have distinct
// names per type so call sites never hit integer/double overload surprises.

inline std::string ju(std::uint64_t v) { return std::to_string(v); }

inline std::string jf(double v, int precision = 6) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

inline std::string js(const std::string& v) {
  std::string out = "\"";
  for (char c : v) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out + "\"";
}

/// Build-stamped short commit hash (set by bench/CMakeLists.txt); "unknown"
/// outside a git checkout.
inline std::string git_sha() {
#ifdef REPCHAIN_GIT_SHA
  return REPCHAIN_GIT_SHA;
#else
  return "unknown";
#endif
}

/// Accumulates scalar fields and named series (arrays of flat objects), then
/// writes `BENCH_<name>.json` into the current working directory.
class JsonReport {
 public:
  /// `seed` is the bench's primary scenario seed (0 when the bench has no
  /// single canonical seed). Every report carries the seed and the build's
  /// git SHA so a dashboard can trace any number back to an exact run.
  explicit JsonReport(std::string name, std::uint64_t seed = 0)
      : name_(std::move(name)) {
    field("benchmark", js(name_));
    field("git_sha", js(git_sha()));
    field("seed", ju(seed));
  }

  /// Add one scalar field; `value` must already be a JSON literal (use
  /// ju/jf/js).
  JsonReport& field(const std::string& key, const std::string& value) {
    fields_.emplace_back(key, value);
    return *this;
  }

  /// Append one row to the named series array (created on first use). Each
  /// cell value must already be a JSON literal.
  JsonReport& row(const std::string& series,
                  const std::vector<std::pair<std::string, std::string>>& cells) {
    std::string obj = "{";
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) obj += ", ";
      obj += js(cells[i].first) + ": " + cells[i].second;
    }
    obj += "}";
    for (auto& [key, rows] : series_) {
      if (key == series) {
        rows.push_back(std::move(obj));
        return *this;
      }
    }
    series_.emplace_back(series, std::vector<std::string>{std::move(obj)});
    return *this;
  }

  /// Write BENCH_<name>.json (or an explicit path) and report it on stdout.
  void write(const std::string& path = "") const {
    const std::string file = path.empty() ? "BENCH_" + name_ + ".json" : path;
    std::FILE* out = std::fopen(file.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", file.c_str());
      return;
    }
    std::fprintf(out, "{\n");
    bool first = true;
    for (const auto& [key, value] : fields_) {
      std::fprintf(out, "%s  %s: %s", first ? "" : ",\n", js(key).c_str(),
                   value.c_str());
      first = false;
    }
    for (const auto& [key, rows] : series_) {
      std::fprintf(out, "%s  %s: [\n", first ? "" : ",\n", js(key).c_str());
      for (std::size_t i = 0; i < rows.size(); ++i) {
        std::fprintf(out, "    %s%s\n", rows[i].c_str(),
                     i + 1 < rows.size() ? "," : "");
      }
      std::fprintf(out, "  ]");
      first = false;
    }
    std::fprintf(out, "\n}\n");
    std::fclose(out);
    std::printf("wrote %s\n", file.c_str());
  }

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<std::pair<std::string, std::vector<std::string>>> series_;
};

}  // namespace repchain::bench
