// Sharded governance scale-out: the same population (24 providers, 12
// collectors, 12 governors) partitioned into 1, 2, and 4 committees, each
// running the full screening/argue/stake-consensus pipeline on its own
// chain. Committee-local screening divides the per-governor validation load
// by the shard count and the stake-consensus broadcast shrinks from one
// O(G^2) group to S groups of (G/S)^2, so committed-tx throughput per wall
// second should rise monotonically with the shard count while every
// committee keeps agreement and audit.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::fmt_u;
using repchain::bench::Table;

constexpr std::uint64_t kSeed = 77;
constexpr std::size_t kRounds = 10;

sim::ScenarioConfig sharded_config(std::size_t shards, std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.topology = {24, 12, 12, 2};
  cfg.rounds = kRounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.audit_probability = 0.3;
  cfg.shard_count = shards;
  cfg.anchor_interval = 2;
  cfg.seed = seed;
  return cfg;
}

struct Point {
  std::size_t shards = 0;
  std::uint64_t submitted = 0;
  std::uint64_t committed = 0;  // txs that landed in some committee's chain
  std::uint64_t blocks = 0;
  std::uint64_t validations = 0;
  std::uint64_t messages = 0;
  std::uint64_t anchors = 0;
  bool ok = false;  // every committee agrees, audits, and anchors verify
  double wall_s = 0.0;
};

Point measure(std::size_t shards, std::uint64_t seed) {
  sim::Scenario s(sharded_config(shards, seed));
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  const sim::ScenarioSummary sum = s.summary();
  Point p;
  p.shards = shards;
  p.submitted = sum.txs_submitted;
  p.committed = sum.chain_valid_txs + sum.chain_unchecked_txs + sum.chain_argued_txs;
  p.blocks = sum.blocks;
  p.validations = sum.validations_total;
  p.messages = sum.network.messages_sent;
  p.anchors = sum.anchors_recorded;
  p.ok = sum.agreement && sum.chains_audit_ok && sum.anchors_ok;
  p.wall_s = wall;
  return p;
}

}  // namespace

int main() {
  const std::vector<std::size_t> kShardCounts = {1, 2, 4};
  bench::JsonReport json("sharding", kSeed);
  json.field("rounds", bench::ju(kRounds))
      .field("providers", bench::ju(24))
      .field("collectors", bench::ju(12))
      .field("governors", bench::ju(12));

  // --- Correctness grid: shard counts x seeds, isolated runs over the pool.
  bench::section("Sharding S1: committee safety across seeds (24x12x12, r=2, " +
                 std::to_string(kRounds) + " rounds)");
  const std::vector<std::uint64_t> seeds = {kSeed, kSeed + 1, kSeed + 2, kSeed + 3};
  std::vector<std::pair<std::size_t, std::uint64_t>> grid;
  for (const std::size_t s : kShardCounts) {
    for (const std::uint64_t seed : seeds) grid.emplace_back(s, seed);
  }
  const sim::ParallelSweep sweep(0);  // 0 = hardware concurrency
  const std::vector<Point> safety = sweep.map<Point>(
      grid.size(),
      [&grid](std::size_t i) { return measure(grid[i].first, grid[i].second); });

  Table grid_table({"shards", "seed", "committed", "blocks", "anchors", "ok"}, 12);
  grid_table.print_header();
  bool all_ok = true;
  for (std::size_t i = 0; i < safety.size(); ++i) {
    const Point& p = safety[i];
    all_ok = all_ok && p.ok;
    grid_table.row({fmt_u(p.shards), fmt_u(grid[i].second), fmt_u(p.committed),
                    fmt_u(p.blocks), fmt_u(p.anchors), p.ok ? "yes" : "NO"});
  }
  json.field("safety_runs", bench::ju(safety.size()))
      .field("safety_all_ok", all_ok ? "true" : "false");

  // --- Throughput series: timed serially (one run owns the machine) so the
  // wall numbers compare across shard counts; min of 3 reps rejects noise.
  bench::section("Sharding S2: committed-tx throughput vs shard count");
  Table table({"shards", "committed", "blocks", "validations", "messages",
               "wall_s", "tx/s"},
              12);
  table.print_header();
  for (const std::size_t shards : kShardCounts) {
    Point best;
    for (int rep = 0; rep < 3; ++rep) {
      const Point p = measure(shards, kSeed);
      if (rep == 0 || p.wall_s < best.wall_s) best = p;
    }
    const double tx_per_s =
        best.wall_s > 0.0 ? static_cast<double>(best.committed) / best.wall_s : 0.0;
    table.row({fmt_u(best.shards), fmt_u(best.committed), fmt_u(best.blocks),
               fmt_u(best.validations), fmt_u(best.messages), fmt(best.wall_s, 3),
               fmt(tx_per_s, 1)});
    json.row("scaling", {{"shards", bench::ju(best.shards)},
                         {"submitted", bench::ju(best.submitted)},
                         {"committed", bench::ju(best.committed)},
                         {"blocks", bench::ju(best.blocks)},
                         {"validations", bench::ju(best.validations)},
                         {"messages", bench::ju(best.messages)},
                         {"anchors", bench::ju(best.anchors)},
                         {"wall_seconds", bench::jf(best.wall_s)},
                         {"committed_tx_per_wall_second", bench::jf(tx_per_s, 1)},
                         {"ok", best.ok ? "true" : "false"}});
  }

  bench::note("");
  bench::note(
      "Committee-local screening cuts each governor's validation load by the "
      "shard count (the 'validations' column holds the global total, its cost "
      "spread over S committees) and the stake-consensus broadcast shrinks "
      "from one 12-governor group to S smaller ones, so tx/s should rise "
      "monotonically from 1 to 4 shards; 'NO' in the safety grid would mean a "
      "diverging, audit-failing, or beacon-violating committee.");
  json.write();
  return 0;
}
