// Figure 1 (F1): the three-tier hierarchy with overlapping provider-collector
// links (r*l = s*n). Prints the structural invariants for representative
// configurations and times directory construction at scale.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_util.hpp"
#include "sim/topology.hpp"

namespace {

using namespace repchain;
using repchain::bench::Table;

void structure_table(bench::JsonReport& json) {
  bench::section("F1: hierarchy structure — r*l = s*n invariant");
  Table table({"l (providers)", "n (collectors)", "m (governors)", "r", "s",
               "links", "r*l==s*n"});
  table.print_header();
  struct Cfg {
    std::size_t l, n, m, r;
  };
  for (const Cfg c : {Cfg{8, 4, 3, 2}, Cfg{16, 8, 4, 3}, Cfg{100, 20, 5, 4},
                      Cfg{1000, 100, 7, 10}, Cfg{5000, 250, 9, 5}}) {
    sim::TopologyConfig t;
    t.providers = c.l;
    t.collectors = c.n;
    t.governors = c.m;
    t.r = c.r;
    t.validate();

    protocol::Directory d;
    for (std::uint32_t i = 0; i < c.l; ++i) d.add_provider(ProviderId(i), NodeId(i));
    for (std::uint32_t i = 0; i < c.n; ++i) {
      d.add_collector(CollectorId(i), NodeId(1'000'000 + i));
    }
    for (std::uint32_t i = 0; i < c.m; ++i) {
      d.add_governor(GovernorId(i), NodeId(2'000'000 + i));
    }
    build_links(t, d);

    std::size_t links = 0;
    bool balanced = true;
    for (std::uint32_t i = 0; i < c.l; ++i) {
      const auto& cs = d.collectors_of(ProviderId(i));
      links += cs.size();
      balanced = balanced && cs.size() == t.r;
    }
    for (std::uint32_t i = 0; i < c.n; ++i) {
      balanced = balanced && d.providers_of(CollectorId(i)).size() == t.s();
    }
    table.row({std::to_string(c.l), std::to_string(c.n), std::to_string(c.m),
               std::to_string(c.r), std::to_string(t.s()), std::to_string(links),
               balanced ? "yes" : "NO"});
    json.row("structures", {{"providers", bench::ju(c.l)},
                            {"collectors", bench::ju(c.n)},
                            {"governors", bench::ju(c.m)},
                            {"r", bench::ju(c.r)},
                            {"s", bench::ju(t.s())},
                            {"links", bench::ju(links)},
                            {"balanced", balanced ? "true" : "false"}});
  }
}

void bm_build_topology(benchmark::State& state) {
  const auto l = static_cast<std::size_t>(state.range(0));
  sim::TopologyConfig t;
  t.providers = l;
  t.collectors = l / 10;
  t.governors = 5;
  t.r = 5;
  for (auto _ : state) {
    protocol::Directory d;
    for (std::uint32_t i = 0; i < t.providers; ++i) {
      d.add_provider(ProviderId(i), NodeId(i));
    }
    for (std::uint32_t i = 0; i < t.collectors; ++i) {
      d.add_collector(CollectorId(i), NodeId(1'000'000 + i));
    }
    build_links(t, d);
    benchmark::DoNotOptimize(d);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_build_topology)->Arg(100)->Arg(1000)->Arg(10000)->Name("build_topology/l");

}  // namespace

int main(int argc, char** argv) {
  std::printf("bench_topology — Figure 1: the three-tier overlap structure\n");
  bench::JsonReport json("topology");
  structure_table(json);
  json.write();
  bench::section("F1b: directory construction scaling (google-benchmark)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
