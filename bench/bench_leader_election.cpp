// Experiment E9 (§3.4.3): the VRF-PoS election elects each governor with
// probability proportional to its stake, and is deterministic given the
// round's announcements.
//
// We run the real ElectionState (full VRF evaluation + verification) over
// many rounds for several stake distributions and compare win frequencies
// with stake shares (plus a chi-square statistic).
//
// Expected shape: frequency column ~ share column; chi-square comfortably
// below the 95% critical value for m-1 degrees of freedom.

#include <cmath>
#include <cstdio>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/keygen.hpp"
#include "protocol/leader_election.hpp"

namespace {

using namespace repchain;
using namespace repchain::protocol;
using repchain::bench::fmt;
using repchain::bench::Table;

void run_distribution(const char* name, const std::vector<std::uint64_t>& stakes,
                      Round rounds, bench::JsonReport& json) {
  bench::section(std::string("E9: stake distribution — ") + name);

  Rng rng(31337);
  identity::IdentityManager im(crypto::random_seed(rng));
  std::vector<crypto::SigningKey> keys;
  std::vector<NodeId> nodes;
  StakeLedger stake;
  for (std::uint32_t g = 0; g < stakes.size(); ++g) {
    keys.emplace_back(crypto::random_seed(rng));
    nodes.push_back(NodeId(g));
    im.enroll(nodes.back(), identity::Role::kGovernor, keys.back().public_key());
    stake.set(GovernorId(g), stakes[g]);
  }

  std::vector<std::uint64_t> wins(stakes.size(), 0);
  const std::set<GovernorId> expelled;
  for (Round r = 1; r <= rounds; ++r) {
    ElectionState st(r, stake, expelled);
    for (std::uint32_t g = 0; g < stakes.size(); ++g) {
      (void)st.add_announcement(
          make_announcement(r, GovernorId(g), stakes[g], keys[g]), im, nodes[g]);
    }
    const auto winner = st.winner();
    if (winner) ++wins[winner->value()];
  }

  Table table({"governor", "stake", "share", "wins", "frequency"});
  table.print_header();
  double chi2 = 0.0;
  for (std::size_t g = 0; g < stakes.size(); ++g) {
    const double share =
        static_cast<double>(stakes[g]) / static_cast<double>(stake.total());
    const double freq = static_cast<double>(wins[g]) / static_cast<double>(rounds);
    const double expected = share * static_cast<double>(rounds);
    if (expected > 0) {
      const double diff = static_cast<double>(wins[g]) - expected;
      chi2 += diff * diff / expected;
    }
    table.row({std::to_string(g), std::to_string(stakes[g]), fmt(share, 3),
               std::to_string(wins[g]), fmt(freq, 3)});
    json.row("distributions", {{"distribution", bench::js(name)},
                               {"governor", bench::ju(g)},
                               {"stake", bench::ju(stakes[g])},
                               {"share", bench::jf(share, 3)},
                               {"wins", bench::ju(wins[g])},
                               {"frequency", bench::jf(freq, 3)}});
  }
  std::printf("chi-square = %.2f over %zu dof (95%% critical ~ %s)\n", chi2,
              stakes.size() - 1,
              stakes.size() == 4   ? "7.81"
              : stakes.size() == 3 ? "5.99"
                                   : "11.07");
}

}  // namespace

int main() {
  std::printf("bench_leader_election — E9: P[win] proportional to stake\n");
  bench::JsonReport json("leader_election");
  run_distribution("uniform 1:1:1:1", {1, 1, 1, 1}, 2000, json);
  run_distribution("skewed 4:2:1:1", {4, 2, 1, 1}, 2000, json);
  run_distribution("dominant 8:1:1", {8, 1, 1}, 2000, json);
  run_distribution("six equal governors", {2, 2, 2, 2, 2, 2}, 1500, json);
  json.write();
  return 0;
}
