// Experiment E10 (§4.2 latency discussion): the argue bound U only delays
// reputation updates; the loss degrades gracefully with the reveal lag, and
// argues that arrive after U burials are rejected permanently.
//
// Part a sweeps the reveal lag through the policy simulator (lag plays the
// role of the V-step delayed update in the paper's discussion). Part b runs
// the full protocol with small U and verifies late argues are rejected.
//
// Expected shape: loss grows mildly and roughly additively in the lag (a
// one-time O(lag) penalty while weights catch up), not multiplicatively.

#include <cstdio>

#include "baselines/policies.hpp"
#include "baselines/policy_simulator.hpp"
#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

void lag_sweep(bench::JsonReport& json) {
  bench::section("E10a: loss vs reveal lag (policy simulator, N = 10000, f = 0.7)");
  Table table({"lag", "loss", "mistakes", "validations/tx"});
  table.print_header();
  for (std::size_t lag : {0u, 10u, 50u, 200u, 1000u}) {
    reputation::ReputationParams params;
    params.f = 0.7;
    baselines::ReputationPolicy policy(params, 4, 1);
    baselines::PolicyWorkloadConfig w;
    w.transactions = 10000;
    w.p_valid = 0.6;
    w.collectors = {{1.0, 0.0, 0.0}, {0.8, 0.0, 0.0}, {1.0, 1.0, 0.0}, {1.0, 0.6, 0.0}};
    w.reveal_lag = lag;
    w.seed = 606;
    const auto r = run_policy(policy, w);
    const double vpt = static_cast<double>(r.validations) / r.transactions;
    table.row({std::to_string(lag), fmt(r.loss, 1), std::to_string(r.mistakes),
               fmt(vpt, 3)});
    json.row("lag_sweep", {{"lag", bench::ju(lag)},
                           {"loss", bench::jf(r.loss, 1)},
                           {"mistakes", bench::ju(r.mistakes)},
                           {"validations_per_tx", bench::jf(vpt, 3)}});
  }
}

void u_bound_protocol(bench::JsonReport& json) {
  bench::section("E10b: argue latency bound U in the full protocol");
  bench::note("All collectors invert labels (every valid tx buried), passive\n"
              "audit off: only argues reveal truths. Small U forces some argues\n"
              "to arrive after the tx is buried by > U newer unchecked txs.");
  Table table({"U", "unchecked", "argued ok", "argued late", "expired"});
  table.print_header();
  for (std::size_t u : {1u, 3u, 10u, 100u}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {4, 4, 2, 2};
    cfg.rounds = 8;
    cfg.txs_per_provider_per_round = 4;
    cfg.p_valid = 1.0;
    cfg.governor.rep.f = 0.9;
    cfg.governor.rep.argue_latency_u = u;
    cfg.behaviors = {protocol::CollectorBehavior::adversarial()};
    cfg.audit_probability = 0.0;
    cfg.seed = 515;
    sim::Scenario s(cfg);
    s.run();
    const auto& g = s.governor(0);
    table.row({std::to_string(u), std::to_string(g.screening_stats().unchecked),
               std::to_string(g.metrics().argues_accepted),
               std::to_string(g.metrics().argues_rejected_late),
               std::to_string(g.argue_buffer().expired())});
    json.row("u_bound", {{"u", bench::ju(u)},
                         {"unchecked", bench::ju(g.screening_stats().unchecked)},
                         {"argues_accepted", bench::ju(g.metrics().argues_accepted)},
                         {"argues_rejected_late", bench::ju(g.metrics().argues_rejected_late)},
                         {"expired", bench::ju(g.argue_buffer().expired())}});
  }
  bench::note("\nExpected shape: as U shrinks, 'argued late' and 'expired' grow —\n"
              "those transactions are invalid permanently, the paper's rule.");
}

}  // namespace

int main() {
  std::printf("bench_argue_latency — E10: U-bounded argues, lag-tolerant learning\n");
  bench::JsonReport json("argue_latency", 606);
  lag_sweep(json);
  u_bound_protocol(json);
  json.write();
  return 0;
}
