// Experiment E-ADV: the adversary layer's provable-punishment claims, run
// in-protocol (not on the abstract game):
//
//   a) Equivocating leader (Theorem 2 flavor): a leader that signs two
//      conflicting blocks for one serial is detected from its own signatures
//      and expelled by every honest replica — completeness of punishment —
//      while a fully honest run under the same defenses produces zero
//      expulsions and zero evidence events — soundness (punished iff
//      misbehaved).
//   b) Forgery and double-spend (Lemma 1, Almost No Creation): forged
//      provider signatures and reused serials never enter any honest chain;
//      detection counters match what the attack actually emitted.
//   c) Misreporting collector (Theorem 1 / Lemma 2 comparator): with one
//      collector deliberately flipping labels at rate q, the governors'
//      screening loss L_T must stay inside the multiplicative-weights regret
//      bound L_T <= S_min + 16*sqrt(T log r); with the honest collectors
//      near-perfect, S_min ~ 0 and the bound is 16*sqrt(T log r). The
//      misreporter's w_misreport score must fall below every honest one.
//
// Writes BENCH_adversary.json next to the stdout tables.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::fmt_u;
using repchain::bench::Table;

// Every experiment row below is an isolated scenario run; each section
// shards its runs over the cores and emits rows in the original order, so
// the report matches a serial sweep exactly.
const sim::ParallelSweep& sweep() {
  static const sim::ParallelSweep pool(0);  // 0 = hardware concurrency
  return pool;
}

sim::ScenarioConfig base_config(std::uint64_t seed, std::size_t rounds) {
  sim::ScenarioConfig cfg;
  cfg.topology.providers = 6;
  cfg.topology.collectors = 4;
  cfg.topology.governors = 4;
  cfg.topology.r = 2;
  cfg.rounds = rounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.latency = net::LatencyModel{1 * kMillisecond, 2 * kMillisecond};
  cfg.reliable_delivery = true;
  cfg.seed = seed;
  return cfg;
}

/// Transactions screened into the reference chain (the in-protocol T of the
/// regret bound).
std::uint64_t screened_txs(const sim::ScenarioSummary& sum) {
  return sum.chain_valid_txs + sum.chain_unchecked_txs + sum.chain_argued_txs;
}

// --- a) equivocating leader --------------------------------------------------

void equivocating_leader(bench::JsonReport& json) {
  bench::section("E-ADV-a: equivocating leader — detect, expel, keep agreeing");
  bench::note("Governor 2 (stake 5 of 8, so it keeps winning elections) signs\n"
              "two conflicting blocks per led round inside [2, rounds-1).\n"
              "Expected: every equivocation detected, governor 2 expelled by\n"
              "all honest replicas, honest chains never fork.");
  Table table({"seed", "equiv_sent", "detected", "expellers", "honest_agree",
               "blocks", "evidence"});
  table.print_header();
  const std::size_t rounds = 10;
  const std::size_t byz_gov = 2;
  struct Row {
    std::uint64_t seed = 0, sent = 0, detected = 0, evidence = 0, blocks = 0;
    std::size_t expellers = 0;
    bool honest_agree = true;
  };
  const std::vector<Row> rows = sweep().map<Row>(4, [rounds, byz_gov](std::size_t i) {
    const std::uint64_t seed = 7101 + i;
    sim::ScenarioConfig cfg = base_config(seed, rounds);
    cfg.governor_stakes = {1, 1, 5, 1};
    adversary::EquivocatingLeaderSpec e;
    e.from_round = 2;
    e.until_round = rounds - 1;
    e.governor = byz_gov;
    cfg.adversary.equivocating_leaders = {e};
    sim::Scenario s(cfg);
    s.run();
    const auto sum = s.summary();

    Row row;
    row.seed = seed;
    row.sent = s.governor(byz_gov).metrics().byzantine_equivocations_sent;
    const protocol::Governor* ref = nullptr;
    for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
      if (g == byz_gov) continue;
      const auto& gov = s.governor(g);
      row.detected += gov.metrics().proposal_equivocations;
      if (gov.expelled().contains(GovernorId(byz_gov))) ++row.expellers;
      if (ref == nullptr) {
        ref = &gov;
      } else {
        row.honest_agree = row.honest_agree &&
                           ledger::ChainStore::same_prefix(ref->chain(), gov.chain());
      }
    }
    row.blocks = sum.blocks;
    row.evidence = sum.byzantine_evidence;
    return row;
  });
  for (const Row& row : rows) {
    table.row({fmt_u(row.seed), fmt_u(row.sent), fmt_u(row.detected),
               fmt_u(row.expellers), row.honest_agree ? "yes" : "NO",
               fmt_u(row.blocks), fmt_u(row.evidence)});
    json.row("equivocating_leader",
             {{"seed", bench::ju(row.seed)},
              {"equivocations_sent", bench::ju(row.sent)},
              {"detected", bench::ju(row.detected)},
              {"expellers", bench::ju(row.expellers)},
              {"honest_agreement", row.honest_agree ? "true" : "false"},
              {"blocks", bench::ju(row.blocks)},
              {"evidence_events", bench::ju(row.evidence)}});
  }
}

void punishment_soundness(bench::JsonReport& json) {
  bench::section("E-ADV-b: punishment soundness — honest runs under full defenses");
  bench::note("Same topology, no adversary scheduled, every Byzantine defense\n"
              "forced on. Theorem 2's other direction: nobody honest is ever\n"
              "punished. Expected: zero expulsions, zero evidence events.");
  Table table({"seed", "blocks", "expulsions", "evidence", "agreement"});
  table.print_header();
  struct Row {
    std::uint64_t seed = 0, blocks = 0, expulsions = 0, evidence = 0;
    bool agreement = false;
  };
  const std::vector<Row> rows = sweep().map<Row>(4, [](std::size_t i) {
    const std::uint64_t seed = 7201 + i;
    sim::ScenarioConfig cfg = base_config(seed, 10);
    cfg.governor.byzantine_defense = true;
    cfg.enable_label_gossip = true;
    sim::Scenario s(cfg);
    s.run();
    const auto sum = s.summary();
    Row row;
    row.seed = seed;
    row.blocks = sum.blocks;
    for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
      row.expulsions += s.governor(g).expelled().size();
    }
    row.evidence = sum.byzantine_evidence;
    row.agreement = sum.agreement;
    return row;
  });
  for (const Row& row : rows) {
    table.row({fmt_u(row.seed), fmt_u(row.blocks), fmt_u(row.expulsions),
               fmt_u(row.evidence), row.agreement ? "yes" : "NO"});
    json.row("honest_under_defense",
             {{"seed", bench::ju(row.seed)},
              {"blocks", bench::ju(row.blocks)},
              {"expulsions", bench::ju(row.expulsions)},
              {"evidence_events", bench::ju(row.evidence)},
              {"agreement", row.agreement ? "true" : "false"}});
  }
}

// --- b) forgery / double-spend ----------------------------------------------

/// Count transactions in the reference chain that reuse a (provider, seq)
/// pair or come from the forged-sequence space.
struct ChainAudit {
  std::uint64_t forged_in_chain = 0;
  std::uint64_t twins_in_chain = 0;
};

ChainAudit audit_chain(const ledger::ChainStore& chain) {
  ChainAudit a;
  std::map<std::pair<std::uint32_t, std::uint64_t>, std::uint64_t> seen;
  for (const auto& block : chain.blocks()) {
    for (const auto& rec : block.txs) {
      if (rec.tx.seq >= 1'000'000'000) ++a.forged_in_chain;  // forge_seq_ space
      ++seen[{rec.tx.provider.value(), rec.tx.seq}];
    }
  }
  for (const auto& [key, count] : seen) {
    if (count > 1) a.twins_in_chain += count - 1;
  }
  return a;
}

void creation_attacks(bench::JsonReport& json) {
  bench::section("E-ADV-c: forgery and double-spend — Almost No Creation");
  bench::note("A collector forging uploads at `forge`, or a provider reusing\n"
              "serials at `dspend`, against the signature check and the serial\n"
              "guard. Expected: detections track the attack counters; nothing\n"
              "forged or duplicated ever enters the chain.");
  Table table({"attack", "rate", "injected", "detected", "in_chain", "blocks"});
  table.print_header();
  const std::size_t rounds = 10;
  struct Row {
    double rate = 0.0;
    std::uint64_t injected = 0, detected = 0, in_chain = 0, blocks = 0;
  };
  const std::vector<double> forge_rates = {0.1, 0.3, 0.5};
  const std::vector<Row> forge_rows =
      sweep().map<Row>(forge_rates.size(), [rounds, &forge_rates](std::size_t i) {
        const double rate = forge_rates[i];
        sim::ScenarioConfig cfg =
            base_config(8301 + static_cast<std::uint64_t>(rate * 10), rounds);
        adversary::ByzantineCollectorSpec c;
        c.from_round = 1;
        c.until_round = rounds + 1;
        c.collector = 1;
        c.forge_probability = rate;
        cfg.adversary.byzantine_collectors = {c};
        sim::Scenario s(cfg);
        s.run();
        Row row;
        row.rate = rate;
        row.injected = s.collectors()[1].stats().forged;
        for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
          row.detected += s.governor(g).metrics().forgeries_detected;
        }
        row.in_chain = audit_chain(s.governor(0).chain()).forged_in_chain;
        row.blocks = s.summary().blocks;
        return row;
      });
  for (const Row& row : forge_rows) {
    table.row({"forge", fmt(row.rate, 1), fmt_u(row.injected), fmt_u(row.detected),
               fmt_u(row.in_chain), fmt_u(row.blocks)});
    json.row("forgery", {{"rate", bench::jf(row.rate, 2)},
                         {"injected", bench::ju(row.injected)},
                         {"detected", bench::ju(row.detected)},
                         {"in_chain", bench::ju(row.in_chain)},
                         {"blocks", bench::ju(row.blocks)}});
  }
  const std::vector<double> dspend_rates = {0.2, 0.5, 0.8};
  const std::vector<Row> dspend_rows =
      sweep().map<Row>(dspend_rates.size(), [rounds, &dspend_rates](std::size_t i) {
        const double rate = dspend_rates[i];
        sim::ScenarioConfig cfg =
            base_config(8401 + static_cast<std::uint64_t>(rate * 10), rounds);
        adversary::DoubleSpendSpec d;
        d.from_round = 1;
        d.until_round = rounds + 1;
        d.provider = 2;
        d.probability = rate;
        cfg.adversary.double_spenders = {d};
        sim::Scenario s(cfg);
        s.run();
        Row row;
        row.rate = rate;
        row.injected = s.providers()[2].double_spends_submitted();
        for (std::size_t g = 0; g < cfg.topology.governors; ++g) {
          row.detected += s.governor(g).metrics().double_spends_detected;
        }
        row.in_chain = audit_chain(s.governor(0).chain()).twins_in_chain;
        row.blocks = s.summary().blocks;
        return row;
      });
  for (const Row& row : dspend_rows) {
    table.row({"dspend", fmt(row.rate, 1), fmt_u(row.injected), fmt_u(row.detected),
               fmt_u(row.in_chain), fmt_u(row.blocks)});
    json.row("double_spend", {{"rate", bench::jf(row.rate, 2)},
                              {"injected", bench::ju(row.injected)},
                              {"detected", bench::ju(row.detected)},
                              {"in_chain", bench::ju(row.in_chain)},
                              {"blocks", bench::ju(row.blocks)}});
  }
}

// --- c) misreporting collector vs the regret bound ---------------------------

void misreport_bound(bench::JsonReport& json) {
  bench::section("E-ADV-d: misreporting collector vs Theorem 1's regret bound");
  bench::note("Collector 0 flips labels at rate q for the whole run (honest\n"
              "peers are perfect, so S_min ~ 0). The governors' screening loss\n"
              "L_T must stay inside L_T <= S_min + 16*sqrt(T log r), and the\n"
              "misreporter's w_misreport score (+1 per correct checked label,\n"
              "-1 per wrong one) must fall below every honest collector's.");
  Table table({"q", "T", "loss_L", "bound", "ratio", "byz_score", "min_honest"});
  table.print_header();
  const std::size_t rounds = 12;
  struct Row {
    double q = 0.0, loss = 0.0, bound = 0.0;
    std::uint64_t t = 0;
    std::int64_t byz_score = 0, min_honest = 0;
  };
  const std::vector<double> qs = {0.0, 0.1, 0.2, 0.3, 0.5};
  const std::vector<Row> rows =
      sweep().map<Row>(qs.size(), [rounds, &qs](std::size_t i) {
        const double q = qs[i];
        sim::ScenarioConfig cfg =
            base_config(8501 + static_cast<std::uint64_t>(q * 10), rounds);
        adversary::ByzantineCollectorSpec c;
        c.from_round = 1;
        c.until_round = rounds + 1;
        c.collector = 0;
        c.flip_probability = q;
        cfg.adversary.byzantine_collectors = {c};
        sim::Scenario s(cfg);
        s.run();
        const auto sum = s.summary();
        Row row;
        row.q = q;
        row.t = screened_txs(sum);
        row.bound =
            16.0 * std::sqrt(static_cast<double>(row.t) *
                             std::log(static_cast<double>(cfg.topology.collectors)));
        row.loss = sum.mean_governor_expected_loss;
        row.byz_score = s.governor(0).reputation().misreport(CollectorId(0));
        row.min_honest = std::numeric_limits<std::int64_t>::max();
        for (std::uint32_t k = 1; k < cfg.topology.collectors; ++k) {
          row.min_honest = std::min(
              row.min_honest, s.governor(0).reputation().misreport(CollectorId(k)));
        }
        return row;
      });
  for (const Row& row : rows) {
    table.row({fmt(row.q, 1), fmt_u(row.t), fmt(row.loss, 1), fmt(row.bound, 1),
               fmt(row.bound > 0 ? row.loss / row.bound : 0.0, 3),
               std::to_string(row.byz_score), std::to_string(row.min_honest)});
    json.row("misreport",
             {{"q", bench::jf(row.q, 2)},
              {"t", bench::ju(row.t)},
              {"loss", bench::jf(row.loss, 2)},
              {"bound", bench::jf(row.bound, 2)},
              {"ratio", bench::jf(row.bound > 0 ? row.loss / row.bound : 0.0, 4)},
              {"byz_misreport_score", std::to_string(row.byz_score)},
              {"min_honest_score", std::to_string(row.min_honest)}});
  }
  bench::note("\nq = 0.0 is the control: defenses on, nobody deviating. Loss\n"
              "grows with q but the ratio column must stay well under 1 — the\n"
              "reputation weights marginalize the misreporter before it can\n"
              "push screening anywhere near the worst-case bound.");
}

}  // namespace

int main() {
  std::printf("bench_adversary — E-ADV: in-protocol Byzantine attacks vs their "
              "paired defenses\n");
  bench::JsonReport json("adversary", 7101);
  equivocating_leader(json);
  punishment_soundness(json);
  creation_attacks(json);
  misreport_bound(json);
  json.write();
  return 0;
}
