// Crypto substrate microbenchmarks (plumbing cost context for every other
// experiment): SHA-256/512 throughput, Ed25519 keygen/sign/verify, VRF
// evaluate/verify, Merkle tree construction.

#include <benchmark/benchmark.h>

#include <chrono>
#include <span>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/batch_verify.hpp"
#include "crypto/keygen.hpp"
#include "crypto/merkle.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"
#include "crypto/vrf.hpp"

namespace {

using namespace repchain;
using namespace repchain::crypto;

void bm_sha256(benchmark::State& state) {
  Rng rng(1);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sha256)->Arg(64)->Arg(1024)->Arg(65536)->Name("sha256/bytes");

void bm_sha512(benchmark::State& state) {
  Rng rng(2);
  const Bytes data = rng.bytes(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha512::hash(data));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_sha512)->Arg(64)->Arg(1024)->Arg(65536)->Name("sha512/bytes");

void bm_keygen(benchmark::State& state) {
  Rng rng(3);
  for (auto _ : state) {
    const SigningKey key(random_seed(rng));
    benchmark::DoNotOptimize(key.public_key());
  }
}
BENCHMARK(bm_keygen)->Name("ed25519_keygen");

void bm_sign(benchmark::State& state) {
  Rng rng(4);
  const SigningKey key(random_seed(rng));
  const Bytes msg = rng.bytes(128);
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.sign(msg));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_sign)->Name("ed25519_sign");

void bm_verify(benchmark::State& state) {
  Rng rng(5);
  const SigningKey key(random_seed(rng));
  const Bytes msg = rng.bytes(128);
  const Signature sig = key.sign(msg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify(key.public_key(), msg, sig));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_verify)->Name("ed25519_verify");

void bm_double_scalar(benchmark::State& state) {
  Rng rng(9);
  const SigningKey key(random_seed(rng));
  ByteArray<64> wa{}, wb{};
  Bytes ra = rng.bytes(64), rb = rng.bytes(64);
  std::copy(ra.begin(), ra.end(), wa.begin());
  std::copy(rb.begin(), rb.end(), wb.begin());
  const Scalar a = sc_from_bytes_wide(wa);
  const Scalar b = sc_from_bytes_wide(wb);
  const auto p = point_decompress(key.public_key().bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(point_double_scalar_mul(a, *p, b));
  }
}
BENCHMARK(bm_double_scalar)->Name("point_double_scalar_mul(strauss)");

void bm_two_ladders(benchmark::State& state) {
  Rng rng(10);
  const SigningKey key(random_seed(rng));
  ByteArray<64> wa{}, wb{};
  Bytes ra = rng.bytes(64), rb = rng.bytes(64);
  std::copy(ra.begin(), ra.end(), wa.begin());
  std::copy(rb.begin(), rb.end(), wb.begin());
  const Scalar a = sc_from_bytes_wide(wa);
  const Scalar b = sc_from_bytes_wide(wb);
  const auto p = point_decompress(key.public_key().bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(point_add(point_scalar_mul(*p, a), point_base_mul(b)));
  }
}
BENCHMARK(bm_two_ladders)->Name("point_two_independent_ladders");

void bm_vrf_evaluate(benchmark::State& state) {
  Rng rng(6);
  const SigningKey key(random_seed(rng));
  const Bytes alpha = rng.bytes(32);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf_evaluate(key, alpha));
  }
}
BENCHMARK(bm_vrf_evaluate)->Name("vrf_evaluate");

void bm_vrf_verify(benchmark::State& state) {
  Rng rng(7);
  const SigningKey key(random_seed(rng));
  const Bytes alpha = rng.bytes(32);
  const VrfResult r = vrf_evaluate(key, alpha);
  for (auto _ : state) {
    benchmark::DoNotOptimize(vrf_verify(key.public_key(), alpha, r.proof));
  }
}
BENCHMARK(bm_vrf_verify)->Name("vrf_verify");

void bm_batch_verify(benchmark::State& state) {
  Rng rng(11);
  std::vector<BatchItem> items;
  for (int i = 0; i < state.range(0); ++i) {
    const SigningKey key(random_seed(rng));
    BatchItem item;
    item.pub = key.public_key();
    item.message = rng.bytes(64);
    item.sig = key.sign(item.message);
    items.push_back(std::move(item));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(verify_batch(items, rng));
  }
  // items/sec = amortized per-signature verification throughput.
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_batch_verify)->Arg(4)->Arg(16)->Arg(64)->Name("batch_verify/sigs");

void bm_merkle_build(benchmark::State& state) {
  Rng rng(8);
  std::vector<Bytes> leaves;
  for (int i = 0; i < state.range(0); ++i) leaves.push_back(rng.bytes(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MerkleTree(leaves).root());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(bm_merkle_build)->Arg(16)->Arg(256)->Arg(4096)->Name("merkle_build/leaves");

// Hand-timed headline numbers for BENCH_crypto.json: coarse single-shot
// throughput per primitive, enough for trend lines. The google-benchmark
// pass below remains the statistically careful view on stdout.
void write_json_summary() {
  using clock = std::chrono::steady_clock;
  const auto ops_per_sec = [](int iters, auto&& fn) {
    const auto t0 = clock::now();
    for (int i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    return s > 0.0 ? static_cast<double>(iters) / s : 0.0;
  };

  Rng rng(99);
  const SigningKey key(random_seed(rng));
  const Bytes msg = rng.bytes(128);
  const Signature sig = key.sign(msg);
  const Bytes big = rng.bytes(65536);
  const Bytes alpha = rng.bytes(32);
  const VrfResult vrf = vrf_evaluate(key, alpha);

  repchain::bench::JsonReport json("crypto");
  const auto add = [&](const char* op, int iters, auto&& fn) {
    json.row("primitives", {{"op", repchain::bench::js(op)},
                            {"ops_per_second",
                             repchain::bench::jf(ops_per_sec(iters, fn), 1)}});
  };
  add("sha256_64KiB", 200,
      [&] { benchmark::DoNotOptimize(Sha256::hash(big)); });
  add("ed25519_sign", 500, [&] { benchmark::DoNotOptimize(key.sign(msg)); });
  add("ed25519_verify", 500,
      [&] { benchmark::DoNotOptimize(verify(key.public_key(), msg, sig)); });
  add("vrf_evaluate", 200,
      [&] { benchmark::DoNotOptimize(vrf_evaluate(key, alpha)); });
  add("vrf_verify", 200, [&] {
    benchmark::DoNotOptimize(vrf_verify(key.public_key(), alpha, vrf.proof));
  });

  // Batch-vs-single verification: the hot-path intake trades N single
  // verifies for one randomized batch equation, so the headline here is
  // amortized signatures/second and the speedup factor over the
  // one-at-a-time path at the same batch size.
  std::vector<BatchItem> items;
  Rng batch_rng(101);
  for (int i = 0; i < 64; ++i) {
    const SigningKey k(random_seed(batch_rng));
    BatchItem item;
    item.pub = k.public_key();
    item.message = batch_rng.bytes(64);
    item.sig = k.sign(item.message);
    items.push_back(std::move(item));
  }
  const double single_per_sec = ops_per_sec(256, [&] {
    const auto& it = items[0];
    benchmark::DoNotOptimize(verify(it.pub, it.message, it.sig));
  });
  for (const std::size_t n : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
    const std::span<const BatchItem> chunk(items.data(), n);
    const int reps = static_cast<int>(256 / n) + 1;
    const double batches_per_sec = ops_per_sec(reps, [&] {
      benchmark::DoNotOptimize(verify_batch(chunk, batch_rng));
    });
    const double items_per_sec = batches_per_sec * static_cast<double>(n);
    json.row("batch_verification",
             {{"batch_size", repchain::bench::ju(n)},
              {"items_per_second", repchain::bench::jf(items_per_sec, 1)},
              {"single_items_per_second", repchain::bench::jf(single_per_sec, 1)},
              {"speedup_vs_single",
               repchain::bench::jf(
                   single_per_sec > 0.0 ? items_per_sec / single_per_sec : 0.0, 3)}});
  }
  json.write();
}

}  // namespace

int main(int argc, char** argv) {
  write_json_summary();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
