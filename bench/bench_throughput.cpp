// Experiment E7 (§1, §3.4.1): the efficiency/correctness trade of f. Larger
// f => fewer validations (faster protocol), more unchecked transactions
// (more governor mistakes). Includes google-benchmark timings of the
// screening hot path and a sweep table with the check-all baseline as the
// f -> 0 anchor.
//
// Expected shape: validations per transaction fall monotonically in f while
// loss rises; the reputation mechanism keeps the loss increase far below
// the f-proportional worst case once weights converge.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>
#include <vector>

#include "baselines/policies.hpp"
#include "baselines/policy_simulator.hpp"
#include "bench_util.hpp"
#include "runtime/poll_loop.hpp"
#include "runtime/tcp_transport.hpp"
#include "sim/parallel_sweep.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

baselines::PolicyWorkloadConfig workload(std::size_t n) {
  baselines::PolicyWorkloadConfig w;
  w.transactions = n;
  w.p_valid = 0.5;
  w.collectors = {{1.0, 0.0, 0.0}, {0.85, 0.0, 0.0}, {0.7, 0.0, 0.1}, {1.0, 1.0, 0.0}};
  w.seed = 11;
  return w;
}

void f_sweep_table() {
  bench::section("E7a: validations and loss vs f (policy simulator, N = 20000)");
  Table table({"policy", "f", "validations/tx", "loss", "mistakes"});
  table.print_header();
  {
    baselines::CheckAllPolicy all;
    const auto r = run_policy(all, workload(20000));
    table.row({"check-all", "0.0",
               fmt(static_cast<double>(r.validations) / r.transactions, 3),
               fmt(r.loss, 1), std::to_string(r.mistakes)});
  }
  for (double f : {0.2, 0.4, 0.6, 0.8, 0.95}) {
    reputation::ReputationParams params;
    params.f = f;
    baselines::ReputationPolicy policy(params, 4, 1);
    const auto r = run_policy(policy, workload(20000));
    table.row({"reputation", fmt(f, 2),
               fmt(static_cast<double>(r.validations) / r.transactions, 3),
               fmt(r.loss, 1), std::to_string(r.mistakes)});
  }
}

void f_sweep_protocol() {
  bench::section("E7b: full-protocol validations vs f (8x4x3 topology, 10 rounds)");
  Table table({"f", "oracle validations", "unchecked", "gov-0 mistakes"});
  table.print_header();
  for (double f : {0.2, 0.5, 0.8}) {
    sim::ScenarioConfig cfg;
    cfg.topology = {8, 4, 3, 2};
    cfg.rounds = 10;
    cfg.txs_per_provider_per_round = 3;
    cfg.p_valid = 0.5;
    cfg.governor.rep.f = f;
    cfg.behaviors = {protocol::CollectorBehavior::honest(),
                     protocol::CollectorBehavior::noisy(0.8)};
    cfg.seed = 12;
    sim::Scenario s(cfg);
    s.run();
    table.row({fmt(f, 1), std::to_string(s.summary().validations_total),
               std::to_string(s.governor(0).screening_stats().unchecked),
               std::to_string(s.governor(0).metrics().mistakes)});
  }
}

// Machine-readable summary for dashboards/CI trend lines: one full-protocol
// run, timed wall-clock, dumped as flat JSON. The file name matches the
// BENCH_*.json gitignore pattern.
void write_json_summary(bench::JsonReport& json) {
  sim::ScenarioConfig cfg;
  cfg.topology = {8, 4, 3, 2};
  cfg.rounds = 10;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.5;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.8)};
  cfg.seed = 12;
  sim::Scenario s(cfg);
  const auto t0 = std::chrono::steady_clock::now();
  s.run();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto sum = s.summary();
  const double sim_s =
      static_cast<double>(s.queue().now()) / (1000.0 * kMillisecond);
  json.field("providers", bench::ju(cfg.topology.providers))
      .field("collectors", bench::ju(cfg.topology.collectors))
      .field("governors", bench::ju(cfg.topology.governors))
      .field("rounds", bench::ju(cfg.rounds))
      .field("txs_submitted", bench::ju(sum.txs_submitted))
      .field("chain_valid_txs", bench::ju(sum.chain_valid_txs))
      .field("validations_total", bench::ju(sum.validations_total))
      .field("messages_sent", bench::ju(sum.network.messages_sent))
      .field("bytes_sent", bench::ju(sum.network.bytes_sent))
      .field("sim_seconds", bench::jf(sim_s))
      .field("txs_per_sim_second",
             bench::jf(static_cast<double>(sum.txs_submitted) / sim_s, 3))
      .field("wall_seconds", bench::jf(wall_s))
      .field("txs_per_wall_second",
             bench::jf(static_cast<double>(sum.txs_submitted) / wall_s, 1));
}

// --- E7d: multi-core seed sweep (ParallelSweep) -------------------------------

/// One sweep shard: a full fault-free protocol run at `seed`.
sim::ScenarioSummary sweep_shard(std::uint64_t seed) {
  sim::ScenarioConfig cfg;
  cfg.topology = {8, 4, 3, 2};
  cfg.rounds = 10;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.5;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.8)};
  cfg.seed = seed;
  sim::Scenario s(cfg);
  s.run();
  return s.summary();
}

/// The per-seed facts the equivalence check compares (a summary digest; any
/// divergence between serial and sharded execution shows up here first).
bool same_outcome(const sim::ScenarioSummary& a, const sim::ScenarioSummary& b) {
  return a.txs_submitted == b.txs_submitted && a.blocks == b.blocks &&
         a.chain_valid_txs == b.chain_valid_txs &&
         a.chain_unchecked_txs == b.chain_unchecked_txs &&
         a.validations_total == b.validations_total &&
         a.network.messages_sent == b.network.messages_sent &&
         a.network.bytes_sent == b.network.bytes_sent &&
         a.mean_governor_expected_loss == b.mean_governor_expected_loss;
}

void parallel_sweep_speedup(bench::JsonReport& json) {
  constexpr std::size_t kSweepSeeds = 8;
  constexpr std::uint64_t kSweepBase = 500;
  const std::size_t jobs =
      std::min<std::size_t>(kSweepSeeds, sim::ParallelSweep::resolve_jobs(0));
  bench::section("E7d: 8-way seed sweep, serial vs " + std::to_string(jobs) +
                 " worker threads (ParallelSweep)");

  const auto run_sweep = [](std::size_t job_count) {
    const sim::ParallelSweep sweep(job_count);
    const auto t0 = std::chrono::steady_clock::now();
    std::vector<sim::ScenarioSummary> sums = sweep.map<sim::ScenarioSummary>(
        kSweepSeeds, [](std::size_t i) { return sweep_shard(kSweepBase + i); });
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return std::pair<std::vector<sim::ScenarioSummary>, double>(std::move(sums), wall);
  };

  const auto [serial, serial_s] = run_sweep(1);
  const auto [parallel, parallel_s] = run_sweep(jobs);
  bool identical = true;
  for (std::size_t i = 0; i < kSweepSeeds; ++i) {
    identical = identical && same_outcome(serial[i], parallel[i]);
  }
  const double speedup = parallel_s > 0.0 ? serial_s / parallel_s : 0.0;

  Table table({"jobs", "wall_s", "speedup", "identical"});
  table.print_header();
  table.row({"1", fmt(serial_s, 2), "1.00", "yes"});
  table.row({std::to_string(jobs), fmt(parallel_s, 2), fmt(speedup, 2),
             identical ? "yes" : "NO"});
  bench::note("Each shard is an isolated deterministic instance; the merged\n"
              "summaries must match the serial sweep exactly — parallelism\n"
              "buys wall-clock only, never different results.");

  json.field("sweep_seeds", bench::ju(kSweepSeeds))
      .field("sweep_jobs", bench::ju(jobs))
      .field("sweep_serial_seconds", bench::jf(serial_s))
      .field("sweep_parallel_seconds", bench::jf(parallel_s))
      .field("sweep_speedup", bench::jf(speedup, 2))
      .field("sweep_outputs_identical", identical ? "true" : "false");
}

// --- E7e: loopback socket throughput (TcpTransport) ---------------------------

/// Real-socket counterpart of the message-count rows above: two TcpTransport
/// endpoints on one PollLoop, a loopback TCP connection between them, and a
/// pipelined stream of framed messages. Measures the full wire path — frame
/// encode, non-blocking send with partial-write queueing, FrameReader
/// reassembly, dispatch — and emits socket_* fields for trend lines.
void socket_loopback(bench::JsonReport& json) {
  constexpr std::size_t kMessages = 20'000;
  constexpr std::size_t kPayload = 256;
  constexpr std::size_t kBatch = 64;  // keep the outbuf bounded while pumping

  bench::section("E7e: loopback socket throughput (" +
                 std::to_string(kMessages) + " msgs x " +
                 std::to_string(kPayload) + " B)");

  runtime::PollLoop loop;
  const crypto::Hash256 genesis = crypto::Sha256::hash(Bytes{7});
  runtime::TcpTransport sender(loop, genesis);
  runtime::TcpTransport receiver(loop, genesis);

  std::size_t received = 0;
  sender.host(NodeId(1));
  receiver.host(NodeId(2), [&](const runtime::Message&) { ++received; });
  sender.connect(receiver.listen(0));
  loop.run_until(loop.now() + 2'000'000,
                 [&] { return sender.reaches(NodeId(2)); });

  Rng rng(99);
  const Bytes payload = rng.bytes(kPayload);
  const auto t0 = std::chrono::steady_clock::now();
  std::size_t sent = 0;
  while (sent < kMessages) {
    for (std::size_t i = 0; i < kBatch && sent < kMessages; ++i, ++sent) {
      sender.send(NodeId(1), NodeId(2), runtime::MsgKind::kTest, payload);
    }
    loop.run_until(loop.now() + 1'000'000,
                   [&] { return received + 4 * kBatch >= sent; });
  }
  loop.run_until(loop.now() + 10'000'000, [&] { return received == kMessages; });
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  const auto& stats = sender.stats();
  const double mib = static_cast<double>(stats.bytes_sent) / (1024.0 * 1024.0);
  Table table({"messages", "payload_B", "wall_s", "msgs/s", "MiB/s"});
  table.print_header();
  table.row({std::to_string(received), std::to_string(kPayload), fmt(wall_s, 3),
             fmt(static_cast<double>(received) / wall_s, 0), fmt(mib / wall_s, 1)});
  bench::note("Single-threaded: one PollLoop drives both endpoints, so this is\n"
              "a protocol-stack cost, not a parallel-socket ceiling.");

  json.field("socket_messages", bench::ju(received))
      .field("socket_payload_bytes", bench::ju(kPayload))
      .field("socket_frame_bytes_sent", bench::ju(stats.bytes_sent))
      .field("socket_wall_seconds", bench::jf(wall_s))
      .field("socket_msgs_per_second",
             bench::jf(static_cast<double>(received) / wall_s, 1))
      .field("socket_mib_per_second", bench::jf(mib / wall_s, 2));
}

// --- google-benchmark timings of the screening hot path ------------------------

void bm_screen(benchmark::State& state) {
  const double f = static_cast<double>(state.range(0)) / 100.0;
  reputation::ReputationParams params;
  params.f = f <= 0.0 ? 0.01 : f;
  reputation::ReputationTable table(params);
  for (std::uint32_t c = 0; c < 4; ++c) table.link(CollectorId(c), ProviderId(0));
  ledger::ValidationOracle oracle(0);
  Rng rng(1);
  protocol::ScreeningEngine engine(table, oracle, rng);

  crypto::SigningKey key{crypto::PrivateSeed{}};
  std::vector<ledger::Transaction> txs;
  std::vector<std::vector<reputation::Report>> reports;
  Rng wl(2);
  for (int i = 0; i < 512; ++i) {
    txs.push_back(ledger::make_transaction(ProviderId(0), i, i, wl.bytes(16), key));
    oracle.register_tx(txs.back().id(), wl.bernoulli(0.5));
    std::vector<reputation::Report> rep;
    for (std::uint32_t c = 0; c < 4; ++c) {
      rep.push_back({CollectorId(c), wl.bernoulli(0.8) ? ledger::Label::kValid
                                                       : ledger::Label::kInvalid});
    }
    reports.push_back(std::move(rep));
  }
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.screen(txs[i & 511], reports[i & 511]));
    ++i;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(bm_screen)->Arg(20)->Arg(50)->Arg(80)->Name("screening_engine/f_pct");

void bm_full_round(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    sim::ScenarioConfig cfg;
    cfg.topology = {8, 4, 3, 2};
    cfg.rounds = 1;
    cfg.txs_per_provider_per_round = 2;
    cfg.seed = 77;
    sim::Scenario s(cfg);
    state.ResumeTiming();
    s.run_round();
  }
}
BENCHMARK(bm_full_round)->Unit(benchmark::kMillisecond)->Name("full_protocol_round");

}  // namespace

int main(int argc, char** argv) {
  std::printf("bench_throughput — E7: efficiency/correctness trade of f\n");
  f_sweep_table();
  f_sweep_protocol();
  bench::JsonReport json("throughput", 12);
  write_json_summary(json);
  parallel_sweep_speedup(json);
  socket_loopback(json);
  json.write();
  bench::section("E7c: screening hot-path timings (google-benchmark)");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
