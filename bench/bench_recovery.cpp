// Recovery-path costs of the storage subsystem: how the durable footprint
// (WAL vs snapshot bytes) and the crash-restart cost grow with chain height
// and snapshot cadence. For each point we run a full fixed-seed scenario
// with durable governors, then kill governor 0 after the last round and
// time its rebuild — recover_from_store (snapshot restore + WAL tail
// replay + chain audit) plus the peer catch-up sync — in wall-clock and in
// simulated rejoin latency.
//
// Expected shape: with snapshot_interval = 1 the snapshot dominates and
// recovery wall time stays flat in height; with snapshots off the WAL grows
// linearly and replay time with it. Rejoin latency is a few network RTTs
// regardless (the restarted replica is only syncing, not re-executing).

#include <chrono>
#include <cstdio>
#include <filesystem>

#include "bench_util.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

sim::ScenarioConfig base_config(std::size_t rounds, std::size_t snapshot_interval) {
  sim::ScenarioConfig cfg;
  cfg.topology = {8, 4, 3, 2};
  cfg.rounds = rounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.85)};
  cfg.durable_governors = true;
  cfg.governor.snapshot_interval = snapshot_interval;
  cfg.seed = 31;
  return cfg;
}

struct Point {
  std::size_t rounds = 0;
  std::size_t snapshot_interval = 0;
  std::uint64_t height = 0;
  std::size_t wal_bytes = 0;
  std::size_t snapshot_bytes = 0;
  double recover_ms = 0.0;     // wall-clock: recover_from_store + sync_chain
  double rejoin_sim_ms = 0.0;  // simulated time until the sync settles
  std::uint64_t blocks_synced = 0;
};

/// Run the scenario to completion, then crash + restart governor 0 and
/// measure the recovery. `dir` empty => in-memory store backend.
Point measure(std::size_t rounds, std::size_t snapshot_interval,
              const std::filesystem::path& dir) {
  sim::ScenarioConfig cfg = base_config(rounds, snapshot_interval);
  cfg.storage_dir = dir;
  sim::Scenario s(cfg);
  s.run();

  Point p;
  p.rounds = rounds;
  p.snapshot_interval = snapshot_interval;
  p.wal_bytes = s.governor_store(0)->wal_bytes();
  p.snapshot_bytes = s.governor_store(0)->snapshot_bytes();

  s.crash_governor(0);
  const auto t0 = std::chrono::steady_clock::now();
  s.restart_governor(0);
  p.recover_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  const SimTime sim0 = s.queue().now();
  s.queue().run();  // let the catch-up sync settle
  p.rejoin_sim_ms =
      static_cast<double>(s.queue().now() - sim0) / static_cast<double>(kMillisecond);
  p.height = s.governor(0).chain().height();
  p.blocks_synced = s.governor(0).metrics().blocks_synced;
  return p;
}

void sweep(bench::JsonReport& json) {
  bench::section("recovery cost vs chain height and snapshot cadence (in-memory store)");
  Table table({"rounds", "snap_every", "height", "wal_B", "snap_B", "recover_ms",
               "rejoin_sim_ms"});
  table.print_header();
  for (std::size_t interval : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    for (std::size_t rounds : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                               std::size_t{32}}) {
      const Point p = measure(rounds, interval, {});
      table.row({std::to_string(p.rounds),
                 interval == 0 ? "never" : std::to_string(interval),
                 std::to_string(p.height), std::to_string(p.wal_bytes),
                 std::to_string(p.snapshot_bytes), fmt(p.recover_ms, 3),
                 fmt(p.rejoin_sim_ms, 1)});
      json.row("height_sweep",
               {{"rounds", bench::ju(p.rounds)},
                {"snapshot_interval", bench::ju(p.snapshot_interval)},
                {"height", bench::ju(p.height)},
                {"wal_bytes", bench::ju(p.wal_bytes)},
                {"snapshot_bytes", bench::ju(p.snapshot_bytes)},
                {"recover_wall_ms", bench::jf(p.recover_ms, 4)},
                {"rejoin_sim_ms", bench::jf(p.rejoin_sim_ms, 2)},
                {"blocks_synced", bench::ju(p.blocks_synced)}});
    }
  }
}

void file_backed(bench::JsonReport& json) {
  bench::section("file-backed store (fsync + rename on the real filesystem)");
  const auto dir = std::filesystem::temp_directory_path() / "repchain_bench_recovery";
  Table table({"rounds", "snap_every", "wal_B", "snap_B", "recover_ms"});
  table.print_header();
  for (std::size_t rounds : {std::size_t{8}, std::size_t{32}}) {
    std::filesystem::remove_all(dir);
    const Point p = measure(rounds, 4, dir);
    table.row({std::to_string(p.rounds), "4", std::to_string(p.wal_bytes),
               std::to_string(p.snapshot_bytes), fmt(p.recover_ms, 3)});
    json.row("file_backed",
             {{"rounds", bench::ju(p.rounds)},
              {"snapshot_interval", bench::ju(p.snapshot_interval)},
              {"height", bench::ju(p.height)},
              {"wal_bytes", bench::ju(p.wal_bytes)},
              {"snapshot_bytes", bench::ju(p.snapshot_bytes)},
              {"recover_wall_ms", bench::jf(p.recover_ms, 4)}});
  }
  std::filesystem::remove_all(dir);
}

}  // namespace

int main() {
  std::printf("bench_recovery — durable footprint and crash-restart cost\n");
  bench::JsonReport json("recovery", 31);
  sweep(json);
  file_backed(json);
  json.write();
  return 0;
}
