// Recovery-path costs of the storage subsystem: how the durable footprint
// (WAL vs snapshot bytes) and the crash-restart cost grow with chain height
// and snapshot cadence. For each point we run a full fixed-seed scenario
// with durable governors, then kill governor 0 after the last round and
// time its rebuild — recover_from_store (snapshot restore + WAL tail
// replay + chain audit) plus the peer catch-up sync — in wall-clock and in
// simulated rejoin latency.
//
// Expected shape: with snapshot_interval = 1 the snapshot dominates and
// recovery wall time stays flat in height; with snapshots off the WAL grows
// linearly and replay time with it. Rejoin latency is a few network RTTs
// regardless (the restarted replica is only syncing, not re-executing).

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "bench_util.hpp"
#include "cluster/driver.hpp"
#include "cluster/free_run.hpp"
#include "cluster/supervisor.hpp"
#include "sim/harness/spec_codec.hpp"
#include "sim/scenario.hpp"

namespace {

using namespace repchain;
using repchain::bench::fmt;
using repchain::bench::Table;

sim::ScenarioConfig base_config(std::size_t rounds, std::size_t snapshot_interval) {
  sim::ScenarioConfig cfg;
  cfg.topology = {8, 4, 3, 2};
  cfg.rounds = rounds;
  cfg.txs_per_provider_per_round = 3;
  cfg.p_valid = 0.8;
  cfg.behaviors = {protocol::CollectorBehavior::honest(),
                   protocol::CollectorBehavior::noisy(0.85)};
  cfg.durable_governors = true;
  cfg.governor.snapshot_interval = snapshot_interval;
  cfg.seed = 31;
  return cfg;
}

struct Point {
  std::size_t rounds = 0;
  std::size_t snapshot_interval = 0;
  std::uint64_t height = 0;
  std::size_t wal_bytes = 0;
  std::size_t snapshot_bytes = 0;
  double recover_ms = 0.0;     // wall-clock: recover_from_store + sync_chain
  double rejoin_sim_ms = 0.0;  // simulated time until the sync settles
  std::uint64_t blocks_synced = 0;
};

/// Run the scenario to completion, then crash + restart governor 0 and
/// measure the recovery. `dir` empty => in-memory store backend.
Point measure(std::size_t rounds, std::size_t snapshot_interval,
              const std::filesystem::path& dir) {
  sim::ScenarioConfig cfg = base_config(rounds, snapshot_interval);
  cfg.storage_dir = dir;
  sim::Scenario s(cfg);
  s.run();

  Point p;
  p.rounds = rounds;
  p.snapshot_interval = snapshot_interval;
  p.wal_bytes = s.governor_store(0)->wal_bytes();
  p.snapshot_bytes = s.governor_store(0)->snapshot_bytes();

  s.crash_governor(0);
  const auto t0 = std::chrono::steady_clock::now();
  s.restart_governor(0);
  p.recover_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  const SimTime sim0 = s.queue().now();
  s.queue().run();  // let the catch-up sync settle
  p.rejoin_sim_ms =
      static_cast<double>(s.queue().now() - sim0) / static_cast<double>(kMillisecond);
  p.height = s.governor(0).chain().height();
  p.blocks_synced = s.governor(0).metrics().blocks_synced;
  return p;
}

void sweep(bench::JsonReport& json) {
  bench::section("recovery cost vs chain height and snapshot cadence (in-memory store)");
  Table table({"rounds", "snap_every", "height", "wal_B", "snap_B", "recover_ms",
               "rejoin_sim_ms"});
  table.print_header();
  for (std::size_t interval : {std::size_t{0}, std::size_t{1}, std::size_t{8}}) {
    for (std::size_t rounds : {std::size_t{4}, std::size_t{8}, std::size_t{16},
                               std::size_t{32}}) {
      const Point p = measure(rounds, interval, {});
      table.row({std::to_string(p.rounds),
                 interval == 0 ? "never" : std::to_string(interval),
                 std::to_string(p.height), std::to_string(p.wal_bytes),
                 std::to_string(p.snapshot_bytes), fmt(p.recover_ms, 3),
                 fmt(p.rejoin_sim_ms, 1)});
      json.row("height_sweep",
               {{"rounds", bench::ju(p.rounds)},
                {"snapshot_interval", bench::ju(p.snapshot_interval)},
                {"height", bench::ju(p.height)},
                {"wal_bytes", bench::ju(p.wal_bytes)},
                {"snapshot_bytes", bench::ju(p.snapshot_bytes)},
                {"recover_wall_ms", bench::jf(p.recover_ms, 4)},
                {"rejoin_sim_ms", bench::jf(p.rejoin_sim_ms, 2)},
                {"blocks_synced", bench::ju(p.blocks_synced)}});
    }
  }
}

void file_backed(bench::JsonReport& json) {
  bench::section("file-backed store (fsync + rename on the real filesystem)");
  const auto dir = std::filesystem::temp_directory_path() / "repchain_bench_recovery";
  Table table({"rounds", "snap_every", "wal_B", "snap_B", "recover_ms"});
  table.print_header();
  for (std::size_t rounds : {std::size_t{8}, std::size_t{32}}) {
    std::filesystem::remove_all(dir);
    const Point p = measure(rounds, 4, dir);
    table.row({std::to_string(p.rounds), "4", std::to_string(p.wal_bytes),
               std::to_string(p.snapshot_bytes), fmt(p.recover_ms, 3)});
    json.row("file_backed",
             {{"rounds", bench::ju(p.rounds)},
              {"snapshot_interval", bench::ju(p.snapshot_interval)},
              {"height", bench::ju(p.height)},
              {"wal_bytes", bench::ju(p.wal_bytes)},
              {"snapshot_bytes", bench::ju(p.snapshot_bytes)},
              {"recover_wall_ms", bench::jf(p.recover_ms, 4)}});
  }
  std::filesystem::remove_all(dir);
}

// --- live-cluster restart --------------------------------------------------

/// Directory of this binary, for locating the sibling tools/node build.
std::filesystem::path self_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  return std::filesystem::path(buf).parent_path();
}

int listen_ephemeral(std::uint16_t& port_out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw NetError(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 16) < 0) {
    throw NetError(std::string("bind/listen: ") + std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
  port_out = ntohs(addr.sin_port);
  return fd;
}

/// Live-cluster restart cost: one process per governor over loopback TCP,
/// SIGKILL mid-run, respawn from the persisted state directory, and the
/// convergence machinery's own timeline (kill instant, rejoin instant,
/// converged round) as the measurement.
void cluster_restart(bench::JsonReport& json) {
  bench::section("live-cluster SIGKILL + restart (loopback processes)");
  const std::filesystem::path node_bin = self_dir() / ".." / "tools" / "node";
  if (!std::filesystem::exists(node_bin)) {
    std::printf("  tools/node not built — skipping the cluster section\n");
    return;
  }

  Table table({"rounds", "kill@", "restart@", "rejoin_ms", "conv_rounds",
               "attempts", "wall_ms"});
  table.print_header();
  for (std::size_t rounds : {std::size_t{6}, std::size_t{10}}) {
    sim::ScenarioConfig cfg = base_config(rounds, 2);
    cfg.durable_governors = false;  // the node processes persist themselves
    sim::normalize_config(cfg);
    const std::size_t governors = cfg.topology.governors;

    const auto scratch =
        std::filesystem::temp_directory_path() /
        ("repchain_bench_cluster_" + std::to_string(::getpid()) + "_" +
         std::to_string(rounds));
    std::filesystem::remove_all(scratch);
    std::filesystem::create_directories(scratch);
    const auto blob_path = scratch / "config.blob";
    {
      const Bytes blob = sim::encode_config(cfg);
      std::ofstream out(blob_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }

    std::uint16_t port = 0;
    const int listen_fd = listen_ephemeral(port);
    cluster::ProcessSupervisor::Options sopts;
    sopts.node_bin = node_bin.string();
    sopts.config_blob = blob_path.string();
    sopts.port = port;
    sopts.state_root = (scratch / "state").string();
    cluster::ProcessSupervisor sup(sopts, governors);
    for (std::size_t i = 0; i < governors; ++i) sup.spawn(i);

    std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
    const wire::Welcome local = cluster::driver_welcome(sim::config_genesis(cfg));
    for (std::size_t admitted = 0; admitted < governors; ++admitted) {
      wire::Welcome remote;
      auto conn = cluster::admit_node(listen_fd, local, sim::config_genesis(cfg),
                                      governors, 15'000, &remote);
      conns[remote.node_index] = std::move(conn);
    }

    const cluster::CrashPlan plan{0, 2, rounds / 2 + 1};
    cluster::ClusterRun run(cfg, std::move(conns));
    run.set_supervision(
        plan, [&sup](std::size_t i) { sup.kill(i); },
        [&](std::size_t i, std::uint32_t incarnation) {
          sup.spawn(i, incarnation);
          return cluster::admit_node(listen_fd, local, sim::config_genesis(cfg),
                                     governors, 15'000);
        });
    const auto t0 = std::chrono::steady_clock::now();
    const cluster::ConvergenceReport r = run.run_converge();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    ::close(listen_fd);
    for (std::size_t i = 0; i < governors; ++i) (void)sup.wait_exit(i);
    std::filesystem::remove_all(scratch);

    const double rejoin_ms = static_cast<double>(r.rejoined_at - r.killed_at) /
                             static_cast<double>(kMillisecond);
    const std::uint64_t rounds_to_converge =
        r.converged ? r.converged_round - plan.restart_round + 1 : 0;
    table.row({std::to_string(rounds), std::to_string(plan.kill_round),
               std::to_string(plan.restart_round), fmt(rejoin_ms, 1),
               std::to_string(rounds_to_converge),
               std::to_string(r.restart_attempts), fmt(wall_ms, 1)});
    json.row("cluster_restart",
             {{"rounds", bench::ju(rounds)},
              {"kill_round", bench::ju(plan.kill_round)},
              {"restart_round", bench::ju(plan.restart_round)},
              {"converged", r.converged ? "true" : "false"},
              {"rejoin_sim_ms", bench::jf(rejoin_ms, 2)},
              {"rounds_to_converge", bench::ju(rounds_to_converge)},
              {"restart_attempts", bench::ju(r.restart_attempts)},
              {"converge_wall_ms", bench::jf(wall_ms, 2)},
              {"head_serial", bench::ju(r.head_serial)},
              {"committed_txs", bench::ju(r.committed_txs)}});
  }
}

/// Free-running multi-crash cost: nodes self-drive rounds on real clocks
/// over the peer mesh while overlapping victims die and return. The single
/// crash keeps quorum; the double crash drops the 3-governor committee to a
/// lone survivor, so the series also prices the quorum-loss stall window
/// (watchdog span) against the post-respawn recovery rounds.
void free_run_multi_crash(bench::JsonReport& json) {
  bench::section("free-running cluster, overlapping crash schedules");
  const std::filesystem::path node_bin = self_dir() / ".." / "tools" / "node";
  if (!std::filesystem::exists(node_bin)) {
    std::printf("  tools/node not built — skipping the free-run section\n");
    return;
  }

  struct Series {
    const char* name;
    std::vector<cluster::CrashPlan> plans;
  };
  const std::vector<Series> series = {
      {"single_crash", {cluster::CrashPlan{1, 2, 4}}},
      // Victims 1 and 2 overlap in round 2: 1 of 3 alive < quorum 2.
      {"quorum_breaking", {cluster::CrashPlan{1, 2, 4},
                           cluster::CrashPlan{2, 2, 3}}},
  };

  Table table({"schedule", "min_live", "quorum_lost", "stalls", "stall_ms",
               "recover_rounds", "attempts", "wall_ms"});
  table.print_header();
  std::uint16_t peer_base = 23100;
  for (const Series& sr : series) {
    sim::ScenarioConfig cfg = cluster::free_run_config(base_config(6, 2));
    cfg.durable_governors = false;  // the node processes persist themselves
    sim::normalize_config(cfg);
    const std::size_t governors = cfg.topology.governors;
    cluster::validate_crash_plans(sr.plans, governors, cfg.rounds);
    const std::size_t min_live =
        cluster::min_live_governors(sr.plans, governors, cfg.rounds);

    const auto scratch =
        std::filesystem::temp_directory_path() /
        ("repchain_bench_free_" + std::to_string(::getpid()) + "_" + sr.name);
    std::filesystem::remove_all(scratch);
    std::filesystem::create_directories(scratch);
    const auto blob_path = scratch / "config.blob";
    {
      const Bytes blob = sim::encode_config(cfg);
      std::ofstream out(blob_path, std::ios::binary);
      out.write(reinterpret_cast<const char*>(blob.data()),
                static_cast<std::streamsize>(blob.size()));
    }

    std::uint16_t port = 0;
    const int listen_fd = listen_ephemeral(port);
    cluster::ProcessSupervisor::Options sopts;
    sopts.node_bin = node_bin.string();
    sopts.config_blob = blob_path.string();
    sopts.port = port;
    sopts.state_root = (scratch / "state").string();
    sopts.log_dir = (scratch / "logs").string();
    sopts.extra_args = {"--free-run", "--peer-base=" + std::to_string(peer_base)};
    cluster::ProcessSupervisor sup(sopts, governors);
    for (std::size_t i = 0; i < governors; ++i) sup.spawn(i);

    std::vector<std::unique_ptr<cluster::SyncConn>> conns(governors);
    const wire::Welcome local = cluster::driver_welcome(sim::config_genesis(cfg));
    for (std::size_t admitted = 0; admitted < governors; ++admitted) {
      wire::Welcome remote;
      auto conn = cluster::admit_node(listen_fd, local, sim::config_genesis(cfg),
                                      governors, 15'000, &remote);
      conns[remote.node_index] = std::move(conn);
    }

    cluster::FreeRunDriver::Options fopts;
    fopts.peer_base = peer_base;
    cluster::FreeRunDriver driver(cfg, std::move(conns), fopts);
    driver.set_supervision(
        sr.plans, [&sup](std::size_t i) { sup.kill(i); },
        [&](std::size_t i, std::uint32_t incarnation) {
          sup.spawn(i, incarnation);
          return cluster::admit_node(listen_fd, local, sim::config_genesis(cfg),
                                     governors, 15'000);
        });
    const auto t0 = std::chrono::steady_clock::now();
    const cluster::FreeRunReport r = driver.run();
    const double wall_ms =
        std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
            .count();
    ::close(listen_fd);
    for (std::size_t i = 0; i < governors; ++i) (void)sup.wait_exit(i);
    std::filesystem::remove_all(scratch);
    peer_base = static_cast<std::uint16_t>(peer_base + 64);

    const cluster::DegradationReport& d = r.degradation;
    const double stall_ms =
        d.stalled_events == 0
            ? 0.0
            : static_cast<double>(d.stall_last - d.stall_first) /
                  static_cast<double>(kMillisecond);
    table.row({sr.name, std::to_string(d.min_live),
               d.quorum_lost ? "yes" : "no", std::to_string(d.stalled_events),
               fmt(stall_ms, 1), std::to_string(d.rounds_to_recover),
               std::to_string(r.restart_attempts), fmt(wall_ms, 1)});
    json.row("free_run_multi_crash",
             {{"schedule", bench::js(sr.name)},
              {"victims", bench::ju(sr.plans.size())},
              {"predicted_min_live", bench::ju(min_live)},
              {"observed_min_live", bench::ju(d.min_live)},
              {"quorum_lost", d.quorum_lost ? "true" : "false"},
              {"contract_ok", r.ok() ? "true" : "false"},
              {"stalled_events", bench::ju(d.stalled_events)},
              {"stall_span_ms", bench::jf(stall_ms, 2)},
              {"rounds_to_recover", bench::ju(d.rounds_to_recover)},
              {"restart_attempts", bench::ju(r.restart_attempts)},
              {"rounds_run", bench::ju(r.rounds_run)},
              {"head_serial", bench::ju(r.head_serial)},
              {"committed_txs", bench::ju(r.committed_txs)},
              {"wall_ms", bench::jf(wall_ms, 2)}});
  }
}

}  // namespace

int main() {
  std::printf("bench_recovery — durable footprint and crash-restart cost\n");
  bench::JsonReport json("recovery", 31);
  sweep(json);
  file_backed(json);
  cluster_restart(json);
  free_run_multi_crash(json);
  json.write();
  return 0;
}
